"""Simulation invariant checking — auditing realised schedules.

Section III-G's scheduler works only if *"each queue is aware of how
many jobs are outstanding and when all its jobs will be finished"* —
i.e. if the :math:`T_Q` books agree with what the discrete-event layer
actually does.  This module replays a :class:`~repro.sim.metrics.
SystemReport`'s per-server timelines against the queues'
:class:`~repro.core.partitions.Submission` records and checks four
invariant families:

``dependency``
    No job starts before the stage it depends on: a translated GPU
    query's processing never precedes its realised translation finish,
    and nothing starts before it was submitted (or before t=0).
``discipline``
    Every server honours FIFO order (a job that arrived strictly
    earlier never starts strictly later) and its capacity (never more
    than ``capacity`` jobs concurrently in service).
``conservation``
    Jobs are neither lost nor invented: per queue,
    submitted = completed + in-flight; every completed query record has
    a matching timeline entry; every translation submission pairs with
    exactly one pipeline-constrained processing submission.
``drift``
    When realised service times equal the estimates exactly
    (``noise_sigma=0``, ``noise_bias=1``) and every station has
    capacity 1, the realised schedule never finishes *later* than the
    scheduler's books: each server's last realised completion is
    bounded by its queue's final :math:`T_Q` (the booked schedule is
    feasible, and FIFO is work-conserving).  This is precisely the
    invariant the historical translated-query :math:`T_Q` under-count
    broke — the GPU queue believed it would drain at
    :math:`t_{gpu}` while the realised job could not even start before
    the translation finished.

A fifth family, ``trace``, audits a :class:`~repro.sim.obs.
TraceCollector`'s lifecycle events against the same books
(:func:`validate_trace`): every completed query's event stream must be
well-ordered (arrival -> estimated -> decision -> [translation] ->
service -> feedback), every ``decision`` event must match a
:class:`~repro.core.partitions.Submission` on its target queue (and
vice versa), and the rejected-event count must equal the report's.

A sixth family, ``metrics``, reconciles a live :class:`~repro.metrics.
registry.MetricsSnapshot` against the report books
(:func:`validate_metrics`): at drain, the exported counters, gauges and
latency histograms must agree *exactly* with what the run recorded —
the observability plane is itself under invariant test.

A seventh family, ``rollup``, audits the :mod:`repro.olap.rollup`
cache tier (:func:`validate_rollup`): cache-served queries live in
:attr:`~repro.sim.metrics.SystemReport.cache_hits` and *only* there —
they must never appear in the scheduler's submission books, the
servers' timelines, or the completion records (a query answered before
the scheduler was consulted by definition left no trace in the
:math:`T_Q` machinery).  With a collector, every hit's event stream is
exactly ``arrival -> cache-hit``; with a snapshot,
``repro_rollup_hits_total`` (and the hit-latency histogram count) must
equal the report's hit count and ``repro_rollup_misses_total`` the
scheduler-offered count.  The books-disjointness core of the family
also runs inside :func:`validate_report` whenever a report carries
cache hits, so the conftest audit covers every simulated run.

An eighth family, ``fleet``, audits a multi-process serving fleet's
merged books (:func:`validate_fleet`): the front door's per-shard
routing counts must equal what each shard's engine actually received,
the merged registry snapshot must be the *exact* sum of the per-shard
snapshots (fleet submitted = Σ shard submitted, per-target completions
reconcile label-for-label, merged latency histograms count-exact
against the shard records), and every live shard's own local audit must
have passed.  The checks are duck-typed against
:class:`repro.fleet.fleet.FleetReport`'s shape so this module never
imports :mod:`repro.fleet` (sim stays process-topology-agnostic).

A ninth family, ``adapt``, audits an adaptive run's model-swap and
reconfiguration history (:func:`validate_adapt`): epoch versions chain
consecutively from the init install, every refit epoch satisfies the
``RecalGuards`` envelope it ran under (min-samples, min-R², per-
coefficient max-step), the per-epoch decision books sum exactly to the
decisions served (no estimate crossed a torn model swap), and every
controller action respects its ``ControllerLimits`` (cooldown spacing,
action/trigger pairing, hard knob ranges, ``max_reconfigs``).  Duck-
typed against :class:`repro.adapt.plane.AdaptReport` so this module
never imports :mod:`repro.adapt`.

A tenth family, ``spans``, audits a distributed span trace
(:func:`validate_spans`): every trace has exactly one root, span ids
are unique per trace, no span ends before it starts, every non-root
span's parent exists in the same trace, and a same-process child lies
inside its parent's bounds (cross-process parents are exempt — the two
sides run on unaligned monotonic clocks).  With the run's sampling
context (``seed`` / ``sample_rate`` / ``submitted`` ids), the set of
traced ids must equal the head-sampling formula's output *exactly* —
the checker re-derives ``blake2b`` trace ids and sampling decisions
independently of :mod:`repro.obs`, which this module deliberately does
not import.  With a :class:`~repro.sim.metrics.SystemReport`, roots
reconcile with the completion records and every ``pool.service`` span
matches a server-timeline entry; with a :class:`~repro.sim.obs.
TraceCollector`, roots bracket the query's lifecycle events.  Traces
whose root completed over the wire must carry shard-side spans unless
the root was re-stamped ``partial`` (a crashed shard's severed tree is
flagged, never silently truncated).

:func:`seed_violation` (and :func:`seed_metrics_violation` /
:func:`seed_fleet_violation` / :func:`seed_adapt_violation` /
:func:`seed_spans_violation` for snapshots, fleet reports, adapt
reports and span sets) deliberately corrupts a report so tests can
prove the checkers fail loudly, not vacuously.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.errors import InvariantViolation
from repro.sim.metrics import SystemReport

if TYPE_CHECKING:
    from repro.metrics.registry import MetricsSnapshot
    from repro.sim.obs import TraceCollector

__all__ = [
    "Violation",
    "ValidationResult",
    "validate_report",
    "validate_trace",
    "validate_metrics",
    "validate_rollup",
    "validate_fleet",
    "validate_adapt",
    "validate_spans",
    "assert_valid",
    "assert_trace_valid",
    "assert_metrics_valid",
    "assert_rollup_valid",
    "assert_fleet_valid",
    "assert_adapt_valid",
    "assert_spans_valid",
    "seed_violation",
    "seed_metrics_violation",
    "seed_fleet_violation",
    "seed_adapt_violation",
    "seed_spans_violation",
    "SEEDABLE_VIOLATIONS",
    "SEEDABLE_METRICS_VIOLATIONS",
    "SEEDABLE_FLEET_VIOLATIONS",
    "SEEDABLE_ADAPT_VIOLATIONS",
    "SEEDABLE_SPANS_VIOLATIONS",
]

#: timeline entry: (query_id, start, finish)
Entry = tuple[int, float, float]


@dataclass(frozen=True)
class Violation:
    """One broken invariant, with enough context to debug it."""

    invariant: str  # "dependency" | "discipline" | "conservation" | "drift"
    queue: str
    message: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.queue}: {self.message}"


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of one audit: which families ran, what they found."""

    violations: tuple[Violation, ...]
    checked: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        if self.ok:
            return f"ok ({', '.join(self.checked)} checked)"
        lines = [f"{len(self.violations)} invariant violation(s):"]
        lines += [f"  {v}" for v in self.violations]
        return "\n".join(lines)


def _index(timeline: tuple[Entry, ...]) -> dict[int, tuple[float, float]]:
    """query_id -> (start, finish) for one server's timeline."""
    return {qid: (start, finish) for qid, start, finish in timeline}


def _check_dependency(report: SystemReport, trans: str, tol: float) -> list[Violation]:
    out: list[Violation] = []
    trans_index = _index(report.timelines.get(trans, ()))
    records = {r.query_id: r for r in report.records}
    for name, timeline in report.timelines.items():
        for qid, start, finish in timeline:
            if finish < start - tol:
                out.append(
                    Violation(
                        "dependency",
                        name,
                        f"query {qid} finishes at {finish} before its own "
                        f"start {start}",
                    )
                )
            record = records.get(qid)
            if record is not None and start < record.submit_time - tol:
                out.append(
                    Violation(
                        "dependency",
                        name,
                        f"query {qid} starts at {start} before its submission "
                        f"at {record.submit_time}",
                    )
                )
    target_indices = {
        name: _index(tl) for name, tl in report.timelines.items()
    }
    for record in report.records:
        if not record.translated:
            continue
        translated = trans_index.get(record.query_id)
        translated_at = translated[1] if translated is not None else None
        entry = target_indices.get(record.target, {}).get(record.query_id)
        start = entry[0] if entry is not None else None
        if translated_at is None:
            out.append(
                Violation(
                    "dependency",
                    trans,
                    f"translated query {record.query_id} completed on "
                    f"{record.target} but never appears on the translation "
                    "timeline",
                )
            )
        elif start is not None and start < translated_at - tol:
            out.append(
                Violation(
                    "dependency",
                    record.target,
                    f"query {record.query_id} starts at {start} before its "
                    f"translation finishes at {translated_at}",
                )
            )
    return out


def _arrival_times(
    report: SystemReport, name: str, trans: str
) -> dict[int, float]:
    """When each job on server ``name`` became available to start.

    Translation jobs and untranslated processing jobs arrive when the
    scheduler submitted them; a translated query's processing job
    arrives at its realised translation finish.
    """
    arrivals: dict[int, float] = {}
    trans_index = _index(report.timelines.get(trans, ()))
    for sub in report.submissions.get(name, ()):
        if name != trans and sub.earliest_start is not None:
            realised = trans_index.get(sub.query_id)
            if realised is None:
                continue  # translation still in flight — job never started
            arrivals[sub.query_id] = realised[1]
        else:
            arrivals[sub.query_id] = sub.submit_time
    return arrivals


def _check_discipline(report: SystemReport, trans: str, tol: float) -> list[Violation]:
    out: list[Violation] = []
    for name, timeline in report.timelines.items():
        capacity = report.capacities.get(name, 1)

        # capacity: sweep the in-service interval count; a finish frees
        # its unit before a start at the same instant claims one
        events = sorted(
            [(start, 1, qid) for qid, start, _ in timeline]
            + [(finish, -1, qid) for qid, _, finish in timeline],
            key=lambda e: (e[0], e[1]),
        )
        in_service = 0
        for time, delta, qid in events:
            in_service += delta
            if in_service > capacity:
                out.append(
                    Violation(
                        "discipline",
                        name,
                        f"{in_service} jobs in service at t={time} exceeds "
                        f"capacity {capacity} (query {qid})",
                    )
                )
                break

        # FIFO: scan in realised start order; a job that arrived
        # strictly earlier than a previously-started job must not start
        # strictly later
        arrivals = _arrival_times(report, name, trans)
        started = sorted(
            (start, arrivals[qid], qid)
            for qid, start, _ in timeline
            if qid in arrivals
        )
        max_arrival = float("-inf")
        max_arrival_qid = None
        prev_start = float("-inf")
        for start, arrival, qid in started:
            if start > prev_start + tol and arrival < max_arrival - tol:
                out.append(
                    Violation(
                        "discipline",
                        name,
                        f"FIFO violated: query {qid} arrived at {arrival} but "
                        f"starts at {start}, after query {max_arrival_qid} "
                        f"which arrived later ({max_arrival})",
                    )
                )
                break
            if arrival > max_arrival:
                max_arrival = arrival
                max_arrival_qid = qid
            prev_start = max(prev_start, start)
    return out


def _check_conservation(report: SystemReport, trans: str) -> list[Violation]:
    out: list[Violation] = []
    for name, subs in report.submissions.items():
        completed = len(report.timelines.get(name, ()))
        in_flight = report.outstanding.get(name, 0)
        if len(subs) != completed + in_flight:
            out.append(
                Violation(
                    "conservation",
                    name,
                    f"{len(subs)} submitted != {completed} completed + "
                    f"{in_flight} in flight",
                )
            )

    # records and processing timelines must match one-to-one: every
    # completed record appears on its target's timeline with the same
    # finish time, and every service interval on a processing server
    # produced a record (translation serves a pipeline *stage*, not a
    # whole query, so its timeline has no records of its own)
    indices = {name: _index(tl) for name, tl in report.timelines.items()}
    recorded: dict[str, dict[int, float]] = {}
    for record in report.records:
        recorded.setdefault(record.target, {})[record.query_id] = record.finish_time
        entry = indices.get(record.target, {}).get(record.query_id)
        finish = entry[1] if entry is not None else None
        if finish is None or finish != record.finish_time:
            out.append(
                Violation(
                    "conservation",
                    record.target,
                    f"record for query {record.query_id} (finish "
                    f"{record.finish_time}) has no matching timeline entry",
                )
            )
    for name, timeline in report.timelines.items():
        if name == trans:
            continue
        for qid, _, finish in timeline:
            if recorded.get(name, {}).get(qid) != finish:
                out.append(
                    Violation(
                        "conservation",
                        name,
                        f"query {qid} served on {name} (finish {finish}) but "
                        "the run has no completion record for it — the job "
                        "was lost",
                    )
                )

    # each translation submission pairs with exactly one
    # pipeline-constrained processing submission
    if trans in report.submissions:
        pipelined = sum(
            1
            for name, subs in report.submissions.items()
            if name != trans
            for sub in subs
            if sub.earliest_start is not None
        )
        n_trans = len(report.submissions[trans])
        if pipelined != n_trans:
            out.append(
                Violation(
                    "conservation",
                    trans,
                    f"{n_trans} translation submissions but {pipelined} "
                    "pipeline-constrained processing submissions",
                )
            )
    return out


def _check_drift(report: SystemReport, tol: float) -> list[Violation]:
    out: list[Violation] = []
    for record in report.records:
        if abs(record.measured_time - record.estimated_time) > tol:
            out.append(
                Violation(
                    "drift",
                    record.target,
                    f"deterministic run but query {record.query_id} measured "
                    f"{record.measured_time} != estimated {record.estimated_time}",
                )
            )
    for name, subs in report.submissions.items():
        timeline = report.timelines.get(name, ())
        if not subs or not timeline:
            continue
        realised_last = max(finish for _, _, finish in timeline)
        booked_last = max(sub.estimated_finish for sub in subs)
        if realised_last > booked_last + tol:
            out.append(
                Violation(
                    "drift",
                    name,
                    f"realised schedule drains at {realised_last}, after the "
                    f"queue's booked T_Q {booked_last} — the T_Q books "
                    "under-count the realised backlog",
                )
            )
    return out


def _check_rollup_books(report: SystemReport) -> list[Violation]:
    """Core of the ``rollup`` family: cache hits live outside the books.

    A cache-served query was answered before the scheduler was
    consulted, so it must appear in no submission book, no server
    timeline, and no completion record; its zero-cost record must be
    internally consistent (finish >= submit) and no query may be
    cache-served twice.
    """
    out: list[Violation] = []
    hit_ids = [r.query_id for r in report.cache_hits]
    dupes = {qid for qid in hit_ids if hit_ids.count(qid) > 1}
    for qid in sorted(dupes):
        out.append(
            Violation(
                "rollup",
                "cache",
                f"query {qid} appears {hit_ids.count(qid)} times in "
                "cache_hits — a query is served at most once",
            )
        )
    scheduled = {r.query_id for r in report.records}
    booked = {
        sub.query_id for subs in report.submissions.values() for sub in subs
    }
    timelined = {
        qid for tl in report.timelines.values() for qid, _, _ in tl
    }
    for rec in report.cache_hits:
        if rec.finish_time < rec.submit_time:
            out.append(
                Violation(
                    "rollup",
                    "cache",
                    f"cache hit for query {rec.query_id} finishes at "
                    f"{rec.finish_time} before its submission at "
                    f"{rec.submit_time}",
                )
            )
        for where, ids in (
            ("completion records", scheduled),
            ("submission books", booked),
            ("server timelines", timelined),
        ):
            if rec.query_id in ids:
                out.append(
                    Violation(
                        "rollup",
                        "cache",
                        f"cache-served query {rec.query_id} also appears in "
                        f"the {where} — a hit must bypass the scheduler "
                        "entirely",
                    )
                )
    return out


def validate_report(
    report: SystemReport,
    *,
    trans_queue: str = "Q_TRANS",
    tolerance: float = 1e-9,
    drift_tolerance: float = 1e-6,
    require_drained: bool = False,
) -> ValidationResult:
    """Audit one simulated or served run; returns every violation found.

    The ``drift`` family only runs when the report declares
    ``exact_estimates`` (deterministic service times) and every station
    has capacity 1 — with parallel translation workers the queue's
    fluid :math:`T_Q` is a throughput approximation, not a per-job
    bound.

    ``require_drained`` strengthens ``conservation`` for reports taken
    after a completed run (a finished simulation, or a serving engine
    after :meth:`~repro.serve.ServeEngine.drain`): every queue must show
    zero outstanding jobs — accepted work that never completed is a
    violation, not merely "in flight".

    When the report carries rollup-cache hits, the books-disjointness
    core of the ``rollup`` family runs as well (the trace/metrics
    reconciliations need :func:`validate_rollup`).
    """
    violations: list[Violation] = []
    checked = ["dependency", "discipline", "conservation"]
    violations += _check_dependency(report, trans_queue, tolerance)
    violations += _check_discipline(report, trans_queue, tolerance)
    violations += _check_conservation(report, trans_queue)
    if require_drained:
        for name, outstanding in sorted(report.outstanding.items()):
            if outstanding:
                violations.append(
                    Violation(
                        "conservation",
                        name,
                        f"{outstanding} job(s) still outstanding after a "
                        "drained run",
                    )
                )
    if report.exact_estimates and all(
        c == 1 for c in report.capacities.values()
    ):
        checked.append("drift")
        violations += _check_drift(report, drift_tolerance)
    if report.cache_hits:
        checked.append("rollup")
        violations += _check_rollup_books(report)
    return ValidationResult(
        violations=tuple(violations), checked=tuple(checked)
    )


def assert_valid(report: SystemReport, **kwargs) -> SystemReport:
    """Raise :class:`~repro.errors.InvariantViolation` on a bad run.

    Returns the report unchanged so call sites can chain:
    ``report = assert_valid(system.run(stream))``.
    """
    result = validate_report(report, **kwargs)
    if not result.ok:
        raise InvariantViolation(result.summary())
    return report


def _expected_lifecycle(translated: bool) -> tuple[str, ...]:
    """The well-ordered event stream of one completed query."""
    kinds = ["arrival", "estimated", "decision"]
    if translated:
        kinds += ["translation_start", "translation_finish", "feedback"]
    kinds += ["service_start", "service_finish", "feedback"]
    return tuple(kinds)


def validate_trace(
    report: SystemReport,
    collector: "TraceCollector",
    *,
    trans_queue: str = "Q_TRANS",
    tolerance: float = 1e-9,
) -> ValidationResult:
    """Cross-check a lifecycle trace against the :math:`T_Q` books.

    Three reconciliations, reported as the ``trace`` invariant family:

    * every *completed* query's event stream is exactly the expected
      lifecycle (arrival -> estimated -> decision -> [translation_start
      -> translation_finish -> feedback] -> service_start ->
      service_finish -> feedback), with non-decreasing timestamps, a
      ``decision`` at the record's submit time on the record's target,
      and a ``service_finish`` at the record's finish time;
    * ``decision`` events match the queues'
      :class:`~repro.core.partitions.Submission` records one-to-one —
      same query, same submit time, same estimated processing time —
      and decisions carrying a translation stage match the translation
      queue's submission count (this also covers truncated runs, where
      submissions outnumber completion records);
    * ``rejected`` events equal the report's rejected count.
    """
    violations: list[Violation] = []

    events_by_query: dict[int, list] = {}
    for event in collector.events:
        if event.query_id is not None:
            events_by_query.setdefault(event.query_id, []).append(event)

    # -- (1) per-query lifecycle ordering for completed queries ----------
    for record in report.records:
        events = events_by_query.get(record.query_id, [])
        kinds = tuple(e.kind for e in events)
        expected = _expected_lifecycle(record.translated)
        if kinds != expected:
            violations.append(
                Violation(
                    "trace",
                    record.target,
                    f"query {record.query_id} event stream {kinds} != "
                    f"expected {expected}",
                )
            )
            continue
        times = [e.time for e in events]
        if any(b < a - tolerance for a, b in zip(times, times[1:])):
            violations.append(
                Violation(
                    "trace",
                    record.target,
                    f"query {record.query_id} events move backwards in "
                    f"time: {times}",
                )
            )
        decision = events[kinds.index("decision")]
        if abs(decision.time - record.submit_time) > tolerance:
            violations.append(
                Violation(
                    "trace",
                    record.target,
                    f"query {record.query_id} decision at {decision.time} "
                    f"!= record submit time {record.submit_time}",
                )
            )
        if decision.data.get("target") != record.target:
            violations.append(
                Violation(
                    "trace",
                    record.target,
                    f"query {record.query_id} decision targets "
                    f"{decision.data.get('target')!r} but the record "
                    f"completed on {record.target!r}",
                )
            )
        finish = events[kinds.index("service_finish")]
        if abs(finish.time - record.finish_time) > tolerance:
            violations.append(
                Violation(
                    "trace",
                    record.target,
                    f"query {record.query_id} service_finish at "
                    f"{finish.time} != record finish {record.finish_time}",
                )
            )

    # -- (2) decision events reconcile with the Submission books ---------
    decisions = [e for e in collector.events if e.kind == "decision"]
    decisions_by_target: dict[str, list] = {}
    for event in decisions:
        decisions_by_target.setdefault(event.data["target"], []).append(event)
    for name in decisions_by_target:
        if name not in report.submissions:
            violations.append(
                Violation(
                    "trace",
                    name,
                    f"decision events target {name!r} but the report has "
                    "no submission book for it",
                )
            )
    for name, subs in report.submissions.items():
        if name == trans_queue:
            pipelined = sum(
                1 for e in decisions if e.data.get("translation") is not None
            )
            if pipelined != len(subs):
                violations.append(
                    Violation(
                        "trace",
                        name,
                        f"{len(subs)} translation submissions but "
                        f"{pipelined} decision events carry a translation "
                        "stage",
                    )
                )
            continue
        events = decisions_by_target.get(name, [])
        if len(events) != len(subs):
            violations.append(
                Violation(
                    "trace",
                    name,
                    f"{len(subs)} submissions but {len(events)} decision "
                    "events",
                )
            )
            continue
        booked = {sub.query_id: sub for sub in subs}
        for event in events:
            sub = booked.get(event.query_id)
            if sub is None:
                violations.append(
                    Violation(
                        "trace",
                        name,
                        f"decision for query {event.query_id} has no "
                        "submission record",
                    )
                )
            elif (
                abs(sub.submit_time - event.time) > tolerance
                or abs(sub.estimated_time - event.data["estimated_time"])
                > tolerance
            ):
                violations.append(
                    Violation(
                        "trace",
                        name,
                        f"decision for query {event.query_id} "
                        f"(t={event.time}, "
                        f"est={event.data['estimated_time']}) disagrees "
                        f"with its submission (t={sub.submit_time}, "
                        f"est={sub.estimated_time})",
                    )
                )

    # -- (3) rejections --------------------------------------------------
    n_rejected = sum(1 for e in collector.events if e.kind == "rejected")
    if n_rejected != report.rejected:
        violations.append(
            Violation(
                "trace",
                trans_queue,
                f"{n_rejected} rejected events but the report counts "
                f"{report.rejected} rejections",
            )
        )

    return ValidationResult(violations=tuple(violations), checked=("trace",))


def assert_trace_valid(
    report: SystemReport, collector: "TraceCollector", **kwargs
) -> SystemReport:
    """Raise :class:`~repro.errors.InvariantViolation` on a bad trace."""
    result = validate_trace(report, collector, **kwargs)
    if not result.ok:
        raise InvariantViolation(result.summary())
    return report


#: metric families validate_metrics requires in every instrumented run
_CORE_FAMILIES = (
    "repro_queries_submitted_total",
    "repro_queries_admitted_total",
    "repro_queries_rejected_total",
    "repro_queries_completed_total",
    "repro_queries_failed_total",
    "repro_in_flight_queries",
    "repro_query_latency_seconds",
    "repro_scheduler_decisions_total",
)


def validate_metrics(
    report: SystemReport,
    snapshot: "MetricsSnapshot",
    *,
    tolerance: float = 1e-6,
) -> ValidationResult:
    """Reconcile a metrics snapshot against the report books exactly.

    The ``metrics`` invariant family: at the end of a run (a finished
    simulation, or a served engine after ``drain()``), the live
    registry's exported state must agree with the
    :class:`~repro.sim.metrics.SystemReport` it was recorded alongside:

    * every core family exists in the snapshot;
    * ``rejected_total`` equals the report's rejected count, and
      ``submitted_total == admitted_total + rejected_total``;
    * ``completed_total`` matches the report's per-target completion
      counts label-for-label, both directions;
    * the in-flight ledger balances:
      ``admitted == completed + failed{stage=translation} + in_flight``
      (a query that fails *in service* still produces a record, so it
      counts as completed *and* as ``failed{stage=service}``);
    * on a drained run (no outstanding jobs anywhere), the in-flight
      gauge reads zero;
    * the end-to-end latency histogram carries exactly one observation
      per completed record, per target, and its ``_sum`` equals the
      summed response times within ``tolerance``;
    * Figure-10 decision counters sum to the admitted count;
    * when pool instruments are attached (serving runs),
      ``pool_tasks_total`` per pool equals that pool's timeline length;
    * every exported feedback bias-ratio gauge equals the corresponding
      :class:`~repro.core.feedback.FeedbackStats` ratio.
    """
    violations: list[Violation] = []

    def bad(queue: str, message: str) -> None:
        violations.append(Violation("metrics", queue, message))

    missing = [name for name in _CORE_FAMILIES if snapshot.family(name) is None]
    for name in missing:
        bad(name, "core metric family missing from snapshot")
    if missing:
        return ValidationResult(tuple(violations), checked=("metrics",))

    submitted = snapshot.value("repro_queries_submitted_total")
    admitted = snapshot.value("repro_queries_admitted_total")
    rejected = snapshot.value("repro_queries_rejected_total")
    completed_fam = snapshot.family("repro_queries_completed_total")
    failed_fam = snapshot.family("repro_queries_failed_total")
    in_flight = snapshot.value("repro_in_flight_queries")

    if rejected != report.rejected:
        bad(
            "repro_queries_rejected_total",
            f"counter reads {rejected} but the report counts "
            f"{report.rejected} rejections",
        )
    if submitted != admitted + rejected:
        bad(
            "repro_queries_submitted_total",
            f"{submitted} submitted != {admitted} admitted + "
            f"{rejected} rejected",
        )

    by_target = report.by_target()
    for (target,), count in completed_fam.items():
        if by_target.get(target, 0) != count:
            bad(
                "repro_queries_completed_total",
                f"counter says {count:g} completions on {target} but the "
                f"report records {by_target.get(target, 0)}",
            )
    for target, count in sorted(by_target.items()):
        if completed_fam.value(target=target) != count:
            bad(
                "repro_queries_completed_total",
                f"report records {count} completions on {target} but the "
                f"counter reads {completed_fam.value(target=target):g}",
            )

    completed_total = completed_fam.total()
    failed_translation = failed_fam.value(stage="translation")
    if admitted != completed_total + failed_translation + in_flight:
        bad(
            "repro_in_flight_queries",
            f"ledger does not balance: {admitted} admitted != "
            f"{completed_total} completed + {failed_translation} "
            f"failed-in-translation + {in_flight} in flight",
        )
    if all(n == 0 for n in report.outstanding.values()) and in_flight != 0:
        bad(
            "repro_in_flight_queries",
            f"drained run (no outstanding jobs) but the gauge reads "
            f"{in_flight}",
        )

    latency_fam = snapshot.family("repro_query_latency_seconds")
    sums: dict[str, float] = {}
    counts: dict[str, int] = {}
    for record in report.records:
        sums[record.target] = sums.get(record.target, 0.0) + record.response_time
        counts[record.target] = counts.get(record.target, 0) + 1
    seen_targets = {key[0] for key, _ in latency_fam.items()}
    for target in sorted(set(counts) | seen_targets):
        hist = latency_fam.histogram(target=target)
        n = hist.count if hist is not None else 0
        total = hist.total if hist is not None else 0.0
        if n != counts.get(target, 0):
            bad(
                "repro_query_latency_seconds",
                f"{n} observations on {target} but the report has "
                f"{counts.get(target, 0)} records",
            )
        elif abs(total - sums.get(target, 0.0)) > tolerance * max(1, n):
            bad(
                "repro_query_latency_seconds",
                f"histogram sum {total} on {target} != summed response "
                f"times {sums.get(target, 0.0)}",
            )

    decisions = snapshot.family("repro_scheduler_decisions_total").total()
    if decisions != admitted:
        bad(
            "repro_scheduler_decisions_total",
            f"{decisions:g} Figure-10 decisions != {admitted:g} admitted",
        )

    pool_fam = snapshot.family("repro_pool_tasks_total")
    if pool_fam is not None:
        pool_counts: dict[str, float] = {}
        for (pool, _outcome), count in pool_fam.items():
            pool_counts[pool] = pool_counts.get(pool, 0.0) + count
        for pool, count in sorted(pool_counts.items()):
            served = len(report.timelines.get(pool, ()))
            if count != served:
                bad(
                    "repro_pool_tasks_total",
                    f"{count:g} tasks counted on {pool} but its timeline "
                    f"has {served} entries",
                )

    bias_fam = snapshot.family("repro_feedback_bias_ratio")
    if bias_fam is not None:
        for (queue,), gauge in bias_fam.items():
            stats = report.feedback_stats.get(queue)
            expected = stats.bias_ratio if stats is not None else None
            if expected is None or not math.isclose(
                gauge, expected, rel_tol=1e-9, abs_tol=tolerance
            ):
                bad(
                    "repro_feedback_bias_ratio",
                    f"gauge reads {gauge} for {queue} but the feedback "
                    f"stats give {expected}",
                )

    return ValidationResult(tuple(violations), checked=("metrics",))


def assert_metrics_valid(
    report: SystemReport, snapshot: "MetricsSnapshot", **kwargs
) -> SystemReport:
    """Raise :class:`~repro.errors.InvariantViolation` on a bad snapshot."""
    result = validate_metrics(report, snapshot, **kwargs)
    if not result.ok:
        raise InvariantViolation(result.summary())
    return report


def validate_rollup(
    report: SystemReport,
    *,
    collector: "TraceCollector | None" = None,
    snapshot: "MetricsSnapshot | None" = None,
) -> ValidationResult:
    """Audit the rollup-cache tier against the report, trace, and metrics.

    The ``rollup`` invariant family, in three layers (each optional
    input adds one):

    * **books** (always): every cache-served query in
      :attr:`~repro.sim.metrics.SystemReport.cache_hits` is absent from
      the submission books, server timelines and completion records,
      appears at most once, and its record has ``finish >= submit``;
    * **trace** (with ``collector``): the number of ``cache-hit``
      events equals the report's hit count, and every hit's per-query
      event stream is exactly ``("arrival", "cache-hit")`` — a hit must
      emit no ``estimated``/``decision``/service events;
    * **metrics** (with ``snapshot``): ``repro_rollup_hits_total`` and
      the hit-latency histogram count equal the report's hit count, and
      ``repro_rollup_misses_total`` equals
      ``repro_queries_submitted_total`` when that family is present
      (every miss — and only misses — is offered to the scheduler).
    """
    violations = _check_rollup_books(report)

    def bad(message: str) -> None:
        violations.append(Violation("rollup", "cache", message))

    hits = report.cache_hits
    if collector is not None:
        n_events = sum(1 for e in collector.events if e.kind == "cache-hit")
        if n_events != len(hits):
            bad(
                f"{n_events} cache-hit events but the report carries "
                f"{len(hits)} cache hits"
            )
        for rec in hits:
            kinds = collector.kinds_for(rec.query_id)
            if kinds != ("arrival", "cache-hit"):
                bad(
                    f"cache-served query {rec.query_id} has event stream "
                    f"{kinds} != ('arrival', 'cache-hit')"
                )

    if snapshot is not None:
        fam = snapshot.family("repro_rollup_hits_total")
        if fam is None:
            if hits:
                bad(
                    "report carries cache hits but the snapshot has no "
                    "repro_rollup_hits_total family"
                )
        else:
            counted = snapshot.value("repro_rollup_hits_total")
            if counted != len(hits):
                bad(
                    f"repro_rollup_hits_total reads {counted:g} but the "
                    f"report carries {len(hits)} cache hits"
                )
            hist = snapshot.histogram("repro_rollup_hit_latency_seconds")
            n = hist.count if hist is not None else 0
            if n != len(hits):
                bad(
                    f"hit-latency histogram has {n} observations but the "
                    f"report carries {len(hits)} cache hits"
                )
            misses_fam = snapshot.family("repro_rollup_misses_total")
            submitted_fam = snapshot.family("repro_queries_submitted_total")
            if misses_fam is not None and submitted_fam is not None:
                misses = snapshot.value("repro_rollup_misses_total")
                submitted = snapshot.value("repro_queries_submitted_total")
                if misses != submitted:
                    bad(
                        f"repro_rollup_misses_total reads {misses:g} but "
                        f"{submitted:g} queries were offered to the "
                        "scheduler — every miss, and only misses, reach it"
                    )

    return ValidationResult(tuple(violations), checked=("rollup",))


def assert_rollup_valid(report: SystemReport, **kwargs) -> SystemReport:
    """Raise :class:`~repro.errors.InvariantViolation` on a bad cache tier."""
    result = validate_rollup(report, **kwargs)
    if not result.ok:
        raise InvariantViolation(result.summary())
    return report


def validate_fleet(fleet) -> ValidationResult:
    """Audit a multi-process fleet's merged books: the ``fleet`` family.

    ``fleet`` is duck-typed against :class:`repro.fleet.fleet.
    FleetReport` (this module deliberately does not import
    :mod:`repro.fleet`): it must expose ``shards`` (per-shard views with
    ``shard_id``, ``records``, ``cache_hits``, ``rejected``,
    ``snapshot``, ``validation``), ``routed`` / ``failed`` mappings of
    shard id to the front door's books, ``crashed`` shard ids, and the
    ``merged`` :class:`~repro.metrics.registry.MetricsSnapshot`.

    Five reconciliations:

    * a shard cannot be both live and crashed;
    * **routing books**: for every live shard with no failed requests,
      the front door's routed count equals what the shard's engine
      received — its ``repro_queries_submitted_total`` (scheduler-
      offered, which includes rejections) plus its cache hits;
    * **fleet submitted = Σ shard submitted**: the merged counter is
      the exact sum of the per-shard counters;
    * **per-target completions reconcile**: the merged
      ``repro_queries_completed_total`` equals the sum of shard record
      counts per target, both directions;
    * **merged histograms count-exact**: the merged per-target latency
      histogram carries exactly one observation per shard record;
    * every live shard's local audit (``validate_report`` +
      ``validate_metrics`` run inside the worker process) reported ok.
    """
    violations: list[Violation] = []

    def bad(queue: str, message: str) -> None:
        violations.append(Violation("fleet", queue, message))

    live = {shard.shard_id for shard in fleet.shards}
    for sid in fleet.crashed:
        if sid in live:
            bad(f"shard-{sid}", "shard is reported both live and crashed")

    total_submitted = 0.0
    per_target_records: dict[str, int] = {}
    per_target_shard_counters: dict[str, float] = {}
    for shard in fleet.shards:
        sid = shard.shard_id
        snapshot = shard.snapshot
        fam = snapshot.family("repro_queries_submitted_total")
        submitted = 0.0 if fam is None else fam.value()
        total_submitted += submitted
        received = submitted + len(shard.cache_hits)
        routed = fleet.routed.get(sid, 0)
        failed = fleet.failed.get(sid, 0)
        if failed == 0 and routed != received:
            bad(
                f"shard-{sid}",
                f"front door routed {routed} queries here but the shard "
                f"received {received:g} ({submitted:g} scheduler-offered "
                f"+ {len(shard.cache_hits)} cache hits)",
            )
        for record in shard.records:
            per_target_records[record.target] = (
                per_target_records.get(record.target, 0) + 1
            )
        completed_fam = snapshot.family("repro_queries_completed_total")
        if completed_fam is not None:
            for (target,), count in completed_fam.items():
                per_target_shard_counters[target] = (
                    per_target_shard_counters.get(target, 0.0) + count
                )
        if not str(shard.validation).startswith("ok"):
            bad(f"shard-{sid}", f"local audit failed: {shard.validation}")

    merged = fleet.merged
    merged_submitted_fam = merged.family("repro_queries_submitted_total")
    merged_submitted = (
        0.0 if merged_submitted_fam is None else merged_submitted_fam.value()
    )
    if merged_submitted != total_submitted:
        bad(
            "repro_queries_submitted_total",
            f"merged counter reads {merged_submitted:g} but the shard "
            f"snapshots sum to {total_submitted:g}",
        )

    merged_completed = merged.family("repro_queries_completed_total")
    merged_counts: dict[str, float] = {}
    if merged_completed is not None:
        merged_counts = {
            target: count for (target,), count in merged_completed.items()
        }
    for target in sorted(set(merged_counts) | set(per_target_records)):
        merged_n = merged_counts.get(target, 0.0)
        records_n = per_target_records.get(target, 0)
        shard_n = per_target_shard_counters.get(target, 0.0)
        if merged_n != records_n or merged_n != shard_n:
            bad(
                "repro_queries_completed_total",
                f"completions on {target} do not reconcile: merged counter "
                f"{merged_n:g}, shard counters {shard_n:g}, shard records "
                f"{records_n}",
            )

    latency_fam = merged.family("repro_query_latency_seconds")
    if latency_fam is not None:
        seen = {key[0] for key, _ in latency_fam.items()}
        for target in sorted(seen | set(per_target_records)):
            hist = latency_fam.histogram(target=target)
            n = hist.count if hist is not None else 0
            if n != per_target_records.get(target, 0):
                bad(
                    "repro_query_latency_seconds",
                    f"merged histogram has {n} observations on {target} but "
                    f"the shards recorded "
                    f"{per_target_records.get(target, 0)} completions",
                )

    return ValidationResult(tuple(violations), checked=("fleet",))


def assert_fleet_valid(fleet):
    """Raise :class:`~repro.errors.InvariantViolation` on bad fleet books."""
    result = validate_fleet(fleet)
    if not result.ok:
        raise InvariantViolation(result.summary())
    return fleet


#: corruption modes understood by :func:`seed_fleet_violation`
SEEDABLE_FLEET_VIOLATIONS = ("routed", "merged-submitted", "lost-record")


def seed_fleet_violation(fleet, kind: str):
    """Return a copy of a fleet report with one reconciliation broken.

    The fleet analogue of :func:`seed_violation`; works on any frozen-
    dataclass fleet report with the :func:`validate_fleet` shape.
    ``kind`` is one of :data:`SEEDABLE_FLEET_VIOLATIONS`.
    """
    if not fleet.shards:
        raise InvariantViolation("cannot seed a fleet violation: no live shards")
    first = fleet.shards[0]

    if kind == "routed":
        routed = dict(fleet.routed)
        routed[first.shard_id] = routed.get(first.shard_id, 0) + 1
        return replace(fleet, routed=routed)

    if kind == "merged-submitted":
        merged = fleet.merged
        fam = merged.family("repro_queries_submitted_total")
        if fam is None:
            raise InvariantViolation(
                "cannot seed a merged-submitted violation: family missing"
            )
        bumped = replace(fam, samples={**fam.samples, (): fam.value() + 1.0})
        return replace(
            fleet,
            merged=replace(
                merged,
                families=tuple(
                    bumped if f.name == fam.name else f
                    for f in merged.families
                ),
            ),
        )

    if kind == "lost-record":
        if not first.records:
            raise InvariantViolation(
                "cannot seed a lost-record violation: shard has no records"
            )
        shards = (replace(first, records=first.records[:-1]),) + tuple(
            fleet.shards[1:]
        )
        return replace(fleet, shards=shards)

    raise InvariantViolation(
        f"unknown violation kind {kind!r}; expected one of "
        f"{SEEDABLE_FLEET_VIOLATIONS}"
    )


#: corruption modes understood by :func:`seed_metrics_violation`
SEEDABLE_METRICS_VIOLATIONS = ("completed", "latency", "in-flight", "missing-family")


def seed_metrics_violation(snapshot: "MetricsSnapshot", kind: str) -> "MetricsSnapshot":
    """Return a copy of ``snapshot`` with one reconciliation broken.

    The metrics-plane analogue of :func:`seed_violation`: tests corrupt
    a healthy snapshot and prove :func:`validate_metrics` fails loudly.
    ``kind`` is one of :data:`SEEDABLE_METRICS_VIOLATIONS`.
    """

    def swap_family(name: str, new_samples: dict) -> "MetricsSnapshot":
        return replace(
            snapshot,
            families=tuple(
                replace(fam, samples=new_samples) if fam.name == name else fam
                for fam in snapshot.families
            ),
        )

    if kind == "missing-family":
        return replace(
            snapshot,
            families=tuple(
                fam
                for fam in snapshot.families
                if fam.name != "repro_queries_submitted_total"
            ),
        )

    if kind == "completed":
        fam = snapshot.family("repro_queries_completed_total")
        if fam is None or not fam.samples:
            raise InvariantViolation(
                "cannot seed a completed-counter violation: no completions"
            )
        key = next(iter(sorted(fam.samples)))
        return swap_family(fam.name, {**fam.samples, key: fam.samples[key] + 1})

    if kind == "latency":
        fam = snapshot.family("repro_query_latency_seconds")
        if fam is None or not fam.samples:
            raise InvariantViolation(
                "cannot seed a latency violation: no latency observations"
            )
        key = next(iter(sorted(fam.samples)))
        hist = fam.samples[key]
        return swap_family(
            fam.name, {**fam.samples, key: replace(hist, total=hist.total + 1000.0)}
        )

    if kind == "in-flight":
        fam = snapshot.family("repro_in_flight_queries")
        if fam is None:
            raise InvariantViolation(
                "cannot seed an in-flight violation: gauge family missing"
            )
        return swap_family(fam.name, {**fam.samples, (): 1.0 + fam.value()})

    raise InvariantViolation(
        f"unknown violation kind {kind!r}; expected one of "
        f"{SEEDABLE_METRICS_VIOLATIONS}"
    )


#: corruption modes understood by :func:`seed_violation`
SEEDABLE_VIOLATIONS = (
    "dependency",
    "discipline",
    "conservation",
    "drift",
    "rollup",
)


def seed_violation(report: SystemReport, kind: str) -> SystemReport:
    """Return a copy of ``report`` with one invariant deliberately broken.

    Used by the test suite (and available for manual sanity checks) to
    prove the checker actually fails on bad schedules instead of
    passing vacuously.  ``kind`` is one of :data:`SEEDABLE_VIOLATIONS`.
    """
    if kind == "conservation":
        if not report.records:
            raise InvariantViolation("cannot seed a violation into an empty run")
        return replace(report, records=report.records[:-1])

    if kind == "drift":
        name, timeline = max(
            ((n, t) for n, t in report.timelines.items() if t),
            key=lambda item: len(item[1]),
        )
        qid, start, finish = timeline[-1]
        pushed = timeline[:-1] + ((qid, start, finish + report.horizon + 1.0),)
        return replace(report, timelines={**report.timelines, name: pushed})

    if kind == "dependency":
        for record in report.records:
            if not record.translated:
                continue
            timeline = report.timelines[record.target]
            entries = list(timeline)
            for i, (qid, start, finish) in enumerate(entries):
                if qid == record.query_id:
                    entries[i] = (qid, record.submit_time - 1.0, finish)
                    return replace(
                        report,
                        timelines={
                            **report.timelines,
                            record.target: tuple(entries),
                        },
                    )
        raise InvariantViolation(
            "cannot seed a dependency violation: no translated query completed"
        )

    if kind == "rollup":
        if not report.records:
            raise InvariantViolation(
                "cannot seed a rollup violation: need a scheduled record"
            )
        # claim a scheduler-served query was also answered by the cache:
        # the same query now both bypassed and traversed the scheduler,
        # which the books-disjointness check must reject
        rec = report.records[0]
        dup = replace(
            rec,
            target="Q_ROLLUP",
            finish_time=rec.submit_time,
            estimated_time=0.0,
            measured_time=0.0,
        )
        return replace(report, cache_hits=report.cache_hits + (dup,))

    if kind == "discipline":
        for name, timeline in report.timelines.items():
            if len(timeline) >= 2 and report.capacities.get(name, 1) == 1:
                entries = sorted(timeline, key=lambda e: e[1])
                first, second = entries[0], entries[1]
                if first[2] > first[1]:  # first job has positive service
                    overlapped = (second[0], first[1], second[2])
                    corrupted = tuple(
                        overlapped if e == second else e for e in timeline
                    )
                    return replace(
                        report,
                        timelines={**report.timelines, name: corrupted},
                    )
        raise InvariantViolation(
            "cannot seed a discipline violation: no capacity-1 server ran 2 jobs"
        )

    raise InvariantViolation(
        f"unknown violation kind {kind!r}; expected one of {SEEDABLE_VIOLATIONS}"
    )


#: escalation actions (trigger "breach") and their unwind counterparts
#: (trigger "recover"), mirroring repro.adapt.controller
_ADAPT_ESCALATIONS = ("tighten_admission", "grow_translation", "resplit_up")
_ADAPT_REVERSES = ("relax_admission", "shrink_translation", "resplit_down")


def validate_adapt(report, *, tol: float = 1e-9) -> ValidationResult:
    """Audit one adaptive run's model-swap and reconfiguration history:
    the ``adapt`` family.

    ``report`` is duck-typed against :class:`repro.adapt.plane.
    AdaptReport` (this module deliberately does not import
    :mod:`repro.adapt`): it must expose the ``guards`` / ``limits``
    envelopes the plane ran under, the ``epochs`` and ``reconfigs``
    histories, and the ``decisions_by_epoch`` / ``total_decisions`` /
    ``samples_ingested`` / ``poisoned`` books.

    Reconciliations:

    * **epoch chain** — versions are consecutive from 0, the first
      epoch is the ``init`` install, times never go backwards;
    * **guard compliance** — every ``refit`` epoch names at least one
      family, and each named family carries at least
      ``guards.min_samples`` samples at ``r2 >= guards.min_r2``;
    * **max-step clamp** — between consecutive epochs, every
      coefficient present in both moved by at most
      ``guards.max_step * max(|old|, eps)``; a key may *appear* (first
      GPU install) but never silently disappear;
    * **decision accounting** — ``decisions_by_epoch`` maps only known
      epoch versions and sums exactly to ``total_decisions``, proving
      no estimate was served across a torn model swap;
    * **controller envelope** — reconfiguration seqs are consecutive,
      times non-decreasing with consecutive actions at least
      ``limits.cooldown`` apart, the count never exceeds
      ``limits.max_reconfigs``, every action/trigger pair is a known
      escalation (``breach``) or unwind (``recover``), and every
      admission / translation actuation lands inside the hard range.
    """
    violations: list[Violation] = []

    def bad(queue: str, message: str) -> None:
        violations.append(Violation("adapt", queue, message))

    guards = report.guards
    limits = report.limits
    epochs = tuple(report.epochs)

    for i, epoch in enumerate(epochs):
        tag = f"epoch-{epoch.version}"
        if epoch.version != i:
            bad(tag, f"expected version {i} at position {i}, got {epoch.version}")
        if i == 0 and epoch.trigger != "init":
            bad(tag, f"first epoch must be the init install, got {epoch.trigger!r}")
        if i > 0:
            prev = epochs[i - 1]
            if epoch.time < prev.time:
                bad(
                    tag,
                    f"epoch time went backwards: {prev.time:g} -> {epoch.time:g}",
                )
            if epoch.trigger == "refit":
                if not epoch.families:
                    bad(tag, "refit epoch names no refit family")
                for family in epoch.families:
                    n = epoch.samples.get(family)
                    if n is None or n < guards.min_samples:
                        bad(
                            tag,
                            f"family {family!r} refit on {n} samples, "
                            f"below the min_samples={guards.min_samples} guard",
                        )
                    r2 = epoch.r2.get(family)
                    if r2 is None or r2 < guards.min_r2 - tol:
                        bad(
                            tag,
                            f"family {family!r} refit at r2={r2}, below "
                            f"the min_r2={guards.min_r2} guard",
                        )
            for key, old in prev.coefficients.items():
                if key not in epoch.coefficients:
                    bad(tag, f"coefficient {key!r} disappeared from the bundle")
                    continue
                new = epoch.coefficients[key]
                allowed = guards.max_step * max(abs(old), 1e-12)
                if abs(new - old) > allowed * (1.0 + 1e-9) + tol:
                    bad(
                        tag,
                        f"coefficient {key!r} stepped {old:g} -> {new:g}, "
                        f"outside the max_step={guards.max_step} clamp "
                        f"(allowed {allowed:g})",
                    )
        for key in epoch.clamped:
            if key not in epoch.coefficients:
                bad(tag, f"clamped key {key!r} is not a bundle coefficient")

    versions = {epoch.version for epoch in epochs}
    books = dict(report.decisions_by_epoch)
    for version, count in sorted(books.items()):
        if version not in versions:
            bad(
                "decisions",
                f"decision books name unknown epoch version {version}",
            )
        if count < 0:
            bad("decisions", f"negative decision count {count} in epoch {version}")
    total = sum(books.values())
    if total != report.total_decisions:
        bad(
            "decisions",
            f"per-epoch decision books sum to {total} but the run served "
            f"{report.total_decisions} decisions",
        )
    if report.samples_ingested < 0 or report.poisoned < 0:
        bad("feedback", "negative ingestion books")

    reconfigs = tuple(report.reconfigs)
    if len(reconfigs) > limits.max_reconfigs:
        bad(
            "controller",
            f"{len(reconfigs)} reconfigurations exceed the "
            f"max_reconfigs={limits.max_reconfigs} cap",
        )
    for i, rec in enumerate(reconfigs):
        tag = f"reconfig-{rec.seq}"
        if rec.seq != i:
            bad(tag, f"expected seq {i} at position {i}, got {rec.seq}")
        if rec.action in _ADAPT_ESCALATIONS:
            if rec.trigger != "breach":
                bad(tag, f"escalation {rec.action!r} fired on {rec.trigger!r}")
        elif rec.action in _ADAPT_REVERSES:
            if rec.trigger != "recover":
                bad(tag, f"unwind {rec.action!r} fired on {rec.trigger!r}")
        else:
            bad(tag, f"unknown action {rec.action!r}")
        if i > 0:
            gap = rec.time - reconfigs[i - 1].time
            if gap < -tol:
                bad(tag, f"reconfiguration time went backwards by {-gap:g}s")
            elif gap < limits.cooldown - tol:
                bad(
                    tag,
                    f"actions {gap:g}s apart, inside the "
                    f"cooldown={limits.cooldown:g}s window",
                )
        if rec.action in ("tighten_admission", "relax_admission"):
            lo, hi = limits.min_lateness_factor, limits.max_lateness_factor
            if not lo - tol <= rec.value_after <= hi + tol:
                bad(
                    tag,
                    f"lateness factor set to {rec.value_after:g}, outside "
                    f"[{lo:g}, {hi:g}]",
                )
        elif rec.action in ("grow_translation", "shrink_translation"):
            lo, hi = limits.min_translation_workers, limits.max_translation_workers
            if not lo <= rec.value_after <= hi:
                bad(
                    tag,
                    f"translation pool set to {rec.value_after:g}, outside "
                    f"[{lo}, {hi}]",
                )

    return ValidationResult(tuple(violations), checked=("adapt",))


def assert_adapt_valid(report):
    """Raise :class:`~repro.errors.InvariantViolation` on a bad adapt run."""
    result = validate_adapt(report)
    if not result.ok:
        raise InvariantViolation(result.summary())
    return report


#: corruption modes understood by :func:`seed_adapt_violation`
SEEDABLE_ADAPT_VIOLATIONS = (
    "epoch-gap",
    "max-step",
    "decision-books",
    "cooldown",
    "lateness-bounds",
)


def seed_adapt_violation(report, kind: str):
    """Return a copy of an adapt report with one reconciliation broken.

    The adapt-plane analogue of :func:`seed_violation`; works on any
    frozen-dataclass report with the :func:`validate_adapt` shape.
    ``kind`` is one of :data:`SEEDABLE_ADAPT_VIOLATIONS`.
    """
    if kind == "epoch-gap":
        if not report.epochs:
            raise InvariantViolation("cannot seed an epoch gap: no epochs")
        last = report.epochs[-1]
        return replace(
            report,
            epochs=report.epochs[:-1]
            + (replace(last, version=last.version + 1),),
        )

    if kind == "max-step":
        if len(report.epochs) < 2:
            raise InvariantViolation(
                "cannot seed a max-step violation: need at least two epochs"
            )
        last = report.epochs[-1]
        key = next(iter(sorted(report.epochs[-2].coefficients)))
        old = report.epochs[-2].coefficients[key]
        blown = old * (1.0 + 10.0 * report.guards.max_step) + 1.0
        coeffs = dict(last.coefficients)
        coeffs[key] = blown
        return replace(
            report,
            epochs=report.epochs[:-1] + (replace(last, coefficients=coeffs),),
        )

    if kind == "decision-books":
        return replace(report, total_decisions=report.total_decisions + 1)

    if kind == "cooldown":
        if len(report.reconfigs) < 2:
            raise InvariantViolation(
                "cannot seed a cooldown violation: need at least two actions"
            )
        second = replace(report.reconfigs[1], time=report.reconfigs[0].time)
        return replace(
            report,
            reconfigs=(report.reconfigs[0], second) + report.reconfigs[2:],
        )

    if kind == "lateness-bounds":
        for i, rec in enumerate(report.reconfigs):
            if rec.action in ("tighten_admission", "relax_admission"):
                blown = replace(
                    rec,
                    value_after=report.limits.max_lateness_factor * 10.0,
                )
                return replace(
                    report,
                    reconfigs=report.reconfigs[:i]
                    + (blown,)
                    + report.reconfigs[i + 1 :],
                )
        raise InvariantViolation(
            "cannot seed a lateness violation: no admission action in the run"
        )

    raise InvariantViolation(
        f"unknown violation kind {kind!r}; expected one of "
        f"{SEEDABLE_ADAPT_VIOLATIONS}"
    )


# -- the ``spans`` family -----------------------------------------------------
#
# Deliberately duck-typed against repro.obs.span.Span (trace_id,
# span_id, parent_id, name, start, end, process, track, status,
# query_id, attributes) and re-deriving the sampling hashes inline:
# the auditor must not share code with the plane it audits.


def _expected_trace_id(seed: int, query_id: int) -> str:
    return hashlib.blake2b(
        f"{seed}:{query_id}".encode(), digest_size=8
    ).hexdigest()


def _expected_sampled(seed: int, sample_rate: float, query_id: int) -> bool:
    if sample_rate >= 1.0:
        return True
    if sample_rate <= 0.0:
        return False
    digest = hashlib.blake2b(
        f"{seed}:span-sample:{query_id}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest[:4], "big") / 2**32 < sample_rate


def validate_spans(
    spans,
    *,
    report: SystemReport | None = None,
    collector: "TraceCollector | None" = None,
    seed: int | None = None,
    sample_rate: float | None = None,
    submitted=None,
    tolerance: float = 1e-9,
) -> ValidationResult:
    """Audit a span set's tree structure, sampling, and books: the
    ``spans`` family.

    ``spans`` is any iterable of duck-typed span objects (the shape of
    :class:`repro.obs.span.Span`; this module deliberately does not
    import :mod:`repro.obs`).  Structural invariants always run:

    * **order** — no span ends before it starts;
    * **unique** — span ids never collide within a trace;
    * **root** — every trace has exactly one root (``parent_id`` None);
    * **parent** — every non-root span's parent exists in the same
      trace (cross-process parents count: the stitched fleet set is
      validated as one tree);
    * **bounds** — a child in the *same process* as its parent lies
      inside the parent's ``[start, end]`` window (cross-process pairs
      are exempt — monotonic clocks are not aligned across processes);
    * **complete** — a trace whose ``ok`` root crossed the wire (it
      carries an ``ok`` ``wire.roundtrip`` span) must contain spans
      from at least two processes; a severed tree is only acceptable
      when :func:`repro.obs.span.stitch` re-stamped the root
      ``partial``.

    Optional context adds exact accounting:

    * ``seed`` + ``sample_rate`` + ``submitted`` (the query ids offered
      to the tracer): the traced trace-id set must equal the
      head-sampling formula's output exactly, both directions;
    * ``report``: an ``ok`` root with a completion record opens no
      later than the record's submission and closes at its finish;
      every ``pool.service`` span matches a server-timeline entry
      start-for-start and finish-for-finish;
    * ``collector``: an ``ok`` recorded root brackets its query's
      lifecycle events — ``arrival`` no earlier than the root opens,
      ``service_finish`` at the root's close.
    """
    spans = tuple(spans)
    violations: list[Violation] = []

    def bad(queue: str, message: str) -> None:
        violations.append(Violation("spans", queue, message))

    by_trace: dict[str, list] = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)

    roots_by_trace: dict[str, object] = {}
    for trace_id, members in sorted(by_trace.items()):
        tag = f"trace-{trace_id}"
        ids = [s.span_id for s in members]
        for sid in sorted({i for i in ids if ids.count(i) > 1}):
            bad(tag, f"span id {sid} appears {ids.count(sid)} times")
        roots = [s for s in members if s.parent_id is None]
        if len(roots) != 1:
            names = sorted(s.name for s in roots)
            bad(tag, f"{len(roots)} root spans ({names}), expected exactly 1")
        else:
            roots_by_trace[trace_id] = roots[0]
        index = {s.span_id: s for s in members}
        for span in members:
            if span.end < span.start - tolerance:
                bad(
                    tag,
                    f"span {span.name!r} ends at {span.end} before its "
                    f"start {span.start}",
                )
            if span.parent_id is None:
                continue
            parent = index.get(span.parent_id)
            if parent is None:
                bad(
                    tag,
                    f"span {span.name!r} names parent {span.parent_id} "
                    "which is not in the trace — an orphan",
                )
            elif parent.process == span.process and (
                span.start < parent.start - tolerance
                or span.end > parent.end + tolerance
            ):
                bad(
                    tag,
                    f"span {span.name!r} [{span.start}, {span.end}] "
                    f"escapes its parent {parent.name!r} "
                    f"[{parent.start}, {parent.end}]",
                )

        root = roots_by_trace.get(trace_id)
        if root is not None and root.status == "ok":
            wired = any(
                s.name == "wire.roundtrip" and s.status == "ok"
                for s in members
            )
            if wired and len({s.process for s in members}) < 2:
                bad(
                    tag,
                    "root completed over the wire but the trace has no "
                    "shard-side spans — a severed tree must be stamped "
                    "partial, not silently truncated",
                )

    if seed is not None and sample_rate is not None and submitted is not None:
        expected = {
            _expected_trace_id(seed, qid)
            for qid in submitted
            if _expected_sampled(seed, sample_rate, qid)
        }
        actual = set(by_trace)
        for trace_id in sorted(actual - expected):
            bad(
                "sampling",
                f"trace {trace_id} was recorded but no submitted query "
                f"head-samples to it at rate {sample_rate}",
            )
        for trace_id in sorted(expected - actual):
            bad(
                "sampling",
                f"head-sampling selects trace {trace_id} but the run "
                "recorded no spans for it",
            )

    if report is not None:
        records = {r.query_id: r for r in report.records}
        for trace_id, root in sorted(roots_by_trace.items()):
            record = records.get(root.query_id)
            if record is None or root.status != "ok":
                continue
            tag = f"trace-{trace_id}"
            if root.start > record.submit_time + tolerance:
                bad(
                    tag,
                    f"root opens at {root.start}, after query "
                    f"{root.query_id}'s submission at {record.submit_time}",
                )
            if abs(root.end - record.finish_time) > tolerance:
                bad(
                    tag,
                    f"root closes at {root.end} but query {root.query_id} "
                    f"finished at {record.finish_time}",
                )
        timeline_index = {
            name: _index(tl) for name, tl in report.timelines.items()
        }
        for span in spans:
            if span.name != "pool.service":
                continue
            pool = span.attributes.get("pool", span.track)
            entry = timeline_index.get(pool, {}).get(span.query_id)
            if entry is None:
                bad(
                    f"trace-{span.trace_id}",
                    f"pool.service span for query {span.query_id} on "
                    f"{pool!r} has no server-timeline entry",
                )
            elif (
                abs(span.start - entry[0]) > tolerance
                or abs(span.end - entry[1]) > tolerance
            ):
                bad(
                    f"trace-{span.trace_id}",
                    f"pool.service span for query {span.query_id} "
                    f"[{span.start}, {span.end}] disagrees with the "
                    f"{pool!r} timeline entry [{entry[0]}, {entry[1]}]",
                )

    if collector is not None:
        events_by_query: dict[int, list] = {}
        for event in collector.events:
            if event.query_id is not None:
                events_by_query.setdefault(event.query_id, []).append(event)
        recorded = (
            {r.query_id for r in report.records} if report is not None else None
        )
        for trace_id, root in sorted(roots_by_trace.items()):
            if root.status != "ok" or root.query_id is None:
                continue
            if recorded is not None and root.query_id not in recorded:
                continue  # cache hits and shard-side roots have no lifecycle
            events = events_by_query.get(root.query_id, [])
            arrivals = [e.time for e in events if e.kind == "arrival"]
            finishes = [e.time for e in events if e.kind == "service_finish"]
            tag = f"trace-{trace_id}"
            if not arrivals:
                bad(
                    tag,
                    f"sampled query {root.query_id} left no arrival event "
                    "in the lifecycle trace",
                )
            elif arrivals[0] > root.start + tolerance:
                bad(
                    tag,
                    f"query {root.query_id} arrives at {arrivals[0]}, after "
                    f"its root span opened at {root.start}",
                )
            if finishes and abs(finishes[-1] - root.end) > tolerance:
                bad(
                    tag,
                    f"query {root.query_id} service_finish at "
                    f"{finishes[-1]} != root close {root.end}",
                )

    return ValidationResult(tuple(violations), checked=("spans",))


def assert_spans_valid(spans, **kwargs):
    """Raise :class:`~repro.errors.InvariantViolation` on a bad span set.

    Returns the (tuple-ised) span set unchanged so call sites can
    chain: ``spans = assert_spans_valid(tracer.drain(), report=report)``.
    """
    spans = tuple(spans)
    result = validate_spans(spans, **kwargs)
    if not result.ok:
        raise InvariantViolation(result.summary())
    return spans


#: corruption modes understood by :func:`seed_spans_violation`
SEEDABLE_SPANS_VIOLATIONS = (
    "orphan",
    "inverted",
    "duplicate",
    "escape",
    "unsampled",
    "books",
    "severed",
)


def seed_spans_violation(spans, kind: str):
    """Return a copy of a span set with one invariant deliberately broken.

    The span-plane analogue of :func:`seed_violation`; works on any
    frozen-dataclass span with the :func:`validate_spans` shape.
    ``kind`` is one of :data:`SEEDABLE_SPANS_VIOLATIONS`.  ``unsampled``
    needs the sampling context passed to the validator; ``books`` needs
    a report; ``severed`` needs a stitched multi-process trace.
    """
    spans = tuple(spans)
    if not spans:
        raise InvariantViolation("cannot seed a spans violation: empty set")
    index = {(s.trace_id, s.span_id): s for s in spans}

    def swap(old, new):
        return tuple(new if s is old else s for s in spans)

    if kind == "inverted":
        victim = spans[0]
        return swap(victim, replace(victim, end=victim.start - 1.0))

    if kind == "unsampled":
        # re-stamp one whole trace onto an id no query hashes to
        target = spans[0].trace_id
        return tuple(
            replace(s, trace_id="feedfacefeedface")
            if s.trace_id == target
            else s
            for s in spans
        )

    children = [s for s in spans if s.parent_id is not None]
    if kind == "orphan":
        if not children:
            raise InvariantViolation(
                "cannot seed an orphan: no span has a parent"
            )
        victim = children[0]
        return swap(victim, replace(victim, parent_id="f" * 16))

    if kind == "duplicate":
        if not children:
            raise InvariantViolation(
                "cannot seed a duplicate: need two spans in one trace"
            )
        victim = children[0]
        root = index.get((victim.trace_id, victim.parent_id))
        if root is None:
            raise InvariantViolation(
                "cannot seed a duplicate: orphaned child"
            )
        return swap(victim, replace(victim, span_id=root.span_id))

    if kind == "escape":
        for victim in children:
            parent = index.get((victim.trace_id, victim.parent_id))
            if parent is not None and parent.process == victim.process:
                return swap(victim, replace(victim, end=parent.end + 1.0))
        raise InvariantViolation(
            "cannot seed an escape: no same-process parent/child pair"
        )

    if kind == "books":
        for victim in spans:
            if victim.parent_id is None and victim.status == "ok":
                return swap(victim, replace(victim, end=victim.end + 1.0))
        raise InvariantViolation("cannot seed a books violation: no ok root")

    if kind == "severed":
        for root in spans:
            if root.parent_id is not None or root.status != "ok":
                continue
            members = [s for s in spans if s.trace_id == root.trace_id]
            if not any(s.name == "wire.roundtrip" for s in members):
                continue
            if len({s.process for s in members}) < 2:
                continue
            return tuple(
                s
                for s in spans
                if s.trace_id != root.trace_id or s.process == root.process
            )
        raise InvariantViolation(
            "cannot seed a severed tree: no ok multi-process wire trace"
        )

    raise InvariantViolation(
        f"unknown violation kind {kind!r}; expected one of "
        f"{SEEDABLE_SPANS_VIOLATIONS}"
    )
