"""Text-to-integer translation substrate (Section III-F).

The GPU never stores strings: every text column of the fact table is
dictionary-encoded to integers at database build time, and every string
literal in an incoming query must be translated before GPU submission.

- :mod:`repro.text.dictionary` — per-column dictionaries with multiple
  search backends.  The paper's measured search cost is *linear* in the
  dictionary length (Figure 9, eq. 17), so the paper-faithful backend is
  a linear scan; hash, sorted-array and trie backends implement the
  "more sophisticated translation algorithm" the paper defers to future
  work, and are compared in the ABL-DICT ablation.
- :mod:`repro.text.ahocorasick` — an Aho–Corasick automaton (the
  multi-pattern matcher the paper's related-work section builds on) for
  scanning free text for dictionary terms.
- :mod:`repro.text.translator` — the query translation service run on
  the CPU preprocessing partition, including the :math:`T_{TRANS}`
  upper-bound estimate (eq. 18).
"""

from repro.text.dictionary import (
    ColumnDictionary,
    HashBackend,
    SortedArrayBackend,
    TrieBackend,
    LinearScanBackend,
    build_dictionaries,
    BACKENDS,
)
from repro.text.ahocorasick import AhoCorasick
from repro.text.translator import TranslationService, TranslationResult

__all__ = [
    "ColumnDictionary",
    "HashBackend",
    "SortedArrayBackend",
    "TrieBackend",
    "LinearScanBackend",
    "build_dictionaries",
    "BACKENDS",
    "AhoCorasick",
    "TranslationService",
    "TranslationResult",
]
