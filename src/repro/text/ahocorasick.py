"""Aho–Corasick multi-pattern string matching.

The paper's related-work section (II-E) grounds its dictionary design in
Aho & Corasick's finite-state pattern-matching machine [22] and its
Cell/B.E. optimisation by Scarpazza et al. [23].  This module provides a
from-scratch implementation of the classic automaton:

1. a *goto* function (trie over the keyword set),
2. a *failure* function computed by BFS (longest proper suffix that is a
   prefix of some keyword),
3. an *output* function collecting, per state, every keyword ending
   there.

The automaton processes a text in a single pass, signalling every
occurrence of every keyword — which is how a query front-end can locate
dictionary terms inside free-form query text before per-column
translation.  :class:`repro.text.translator.TranslationService` exposes
this via ``scan_text``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import DictionaryError

__all__ = ["AhoCorasick", "Match"]


@dataclass(frozen=True)
class Match:
    """One keyword occurrence: ``text[start:end] == keyword``."""

    start: int
    end: int
    keyword: str
    pattern_index: int


class AhoCorasick:
    """An immutable Aho–Corasick automaton over a set of keywords.

    Parameters
    ----------
    keywords:
        Patterns to match.  Duplicates are rejected (each keyword must
        map to one pattern index, mirroring dictionary codes).

    Examples
    --------
    >>> ac = AhoCorasick(["he", "she", "his", "hers"])
    >>> [(m.start, m.keyword) for m in ac.search("ushers")]
    [(1, 'she'), (2, 'he'), (2, 'hers')]
    """

    def __init__(self, keywords: Iterable[str]):
        kws = list(keywords)
        if not kws:
            raise DictionaryError("Aho-Corasick needs at least one keyword")
        if any(not k for k in kws):
            raise DictionaryError("empty keywords are not allowed")
        if len(set(kws)) != len(kws):
            raise DictionaryError("duplicate keywords are not allowed")
        self._keywords = kws

        # State 0 is the root.  goto is a list of {char: state}.
        self._goto: list[dict[str, int]] = [{}]
        self._output: list[list[int]] = [[]]
        for idx, kw in enumerate(kws):
            state = 0
            for ch in kw:
                nxt = self._goto[state].get(ch)
                if nxt is None:
                    self._goto.append({})
                    self._output.append([])
                    nxt = len(self._goto) - 1
                    self._goto[state][ch] = nxt
                state = nxt
            self._output[state].append(idx)

        # Failure links by BFS (Aho & Corasick, Algorithm 3).
        self._fail: list[int] = [0] * len(self._goto)
        queue: deque[int] = deque()
        for state in self._goto[0].values():
            self._fail[state] = 0
            queue.append(state)
        while queue:
            r = queue.popleft()
            for ch, s in self._goto[r].items():
                queue.append(s)
                f = self._fail[r]
                while f and ch not in self._goto[f]:
                    f = self._fail[f]
                self._fail[s] = self._goto[f].get(ch, 0)
                if self._fail[s] == s:  # root self-loop guard
                    self._fail[s] = 0
                self._output[s] = self._output[s] + self._output[self._fail[s]]

    # -- introspection -------------------------------------------------------

    @property
    def num_states(self) -> int:
        return len(self._goto)

    @property
    def keywords(self) -> list[str]:
        return list(self._keywords)

    def __len__(self) -> int:
        return len(self._keywords)

    # -- matching --------------------------------------------------------

    def _step(self, state: int, ch: str) -> int:
        while state and ch not in self._goto[state]:
            state = self._fail[state]
        return self._goto[state].get(ch, 0)

    def iter_matches(self, text: str) -> Iterator[Match]:
        """Yield every keyword occurrence in ``text`` in a single pass."""
        state = 0
        for pos, ch in enumerate(text):
            state = self._step(state, ch)
            for idx in self._output[state]:
                kw = self._keywords[idx]
                yield Match(start=pos - len(kw) + 1, end=pos + 1, keyword=kw, pattern_index=idx)

    def search(self, text: str) -> list[Match]:
        """All matches, ordered by end position (see :meth:`iter_matches`)."""
        return list(self.iter_matches(text))

    def contains_any(self, text: str) -> bool:
        """True as soon as any keyword occurs in ``text`` (early exit)."""
        for _ in self.iter_matches(text):
            return True
        return False

    def longest_matches(self, text: str) -> list[Match]:
        """Non-overlapping, leftmost-longest matches.

        Useful for tokenising query text against a dictionary: prefers
        ``"New York City"`` over its substring ``"York"``.
        """
        all_matches = sorted(
            self.search(text), key=lambda m: (m.start, -(m.end - m.start))
        )
        chosen: list[Match] = []
        cursor = 0
        for m in all_matches:
            if m.start >= cursor:
                chosen.append(m)
                cursor = m.end
        return chosen
