"""Per-column string dictionaries.

Section III-F: *"The implementation uses a smaller dictionary for each
text column in the table rather than having one large dictionary for all
text columns.  This approach allows more precise time estimation of the
dictionary search for every incoming query, as smaller dictionaries have
smaller time variation of search as well."*

A :class:`ColumnDictionary` is a bijection between raw strings and
integer codes for one fact-table column.  Codes are **positional**: code
``i`` is the coordinate of the value along its dimension axis, so the
cube path and the GPU path agree on coordinates (see
:mod:`repro.relational.generator`).

Search is pluggable.  The paper's measured search cost grows linearly
with dictionary length (Figure 9 / eq. 17,
:math:`P_{DICT}(D_L) = 0.0138\\,\\mu s \\cdot D_L`), i.e. their
implementation is a linear scan; :class:`LinearScanBackend` reproduces
that behaviour.  :class:`HashBackend`, :class:`SortedArrayBackend` and
:class:`TrieBackend` are the "more sophisticated translation algorithm"
the paper leaves to future work; the ABL-DICT ablation benchmark
compares all of them.

Every backend counts the comparisons/probes it performs
(:attr:`ColumnDictionary.probes`), which the calibration pipeline uses
as a machine-independent cost signal alongside wall-clock timings.
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod
from typing import Iterable, Mapping, Sequence

from repro.errors import DictionaryError, UnknownTokenError

__all__ = [
    "DictionaryBackend",
    "HashBackend",
    "SortedArrayBackend",
    "TrieBackend",
    "LinearScanBackend",
    "ColumnDictionary",
    "build_dictionaries",
    "BACKENDS",
]


class DictionaryBackend(ABC):
    """Search structure mapping a token to its dictionary code.

    Subclasses are built once from the full vocabulary and are immutable
    afterwards (the database dictionary is fixed at build time).
    ``probes`` counts elementary comparisons since construction, for
    cost-model calibration.
    """

    name: str = "abstract"

    def __init__(self, vocabulary: Sequence[str]):
        if len(set(vocabulary)) != len(vocabulary):
            raise DictionaryError("vocabulary contains duplicate tokens")
        self._size = len(vocabulary)
        self.probes = 0
        self._build(vocabulary)

    @abstractmethod
    def _build(self, vocabulary: Sequence[str]) -> None:
        """Construct the search structure; ``vocabulary[code] == token``."""

    @abstractmethod
    def find(self, token: str) -> int | None:
        """Code of ``token``, or ``None`` when absent."""

    def __len__(self) -> int:
        return self._size


class HashBackend(DictionaryBackend):
    """O(1) expected lookup via a hash map."""

    name = "hash"

    def _build(self, vocabulary: Sequence[str]) -> None:
        self._map = {token: code for code, token in enumerate(vocabulary)}

    def find(self, token: str) -> int | None:
        self.probes += 1
        return self._map.get(token)


class SortedArrayBackend(DictionaryBackend):
    """O(log n) lookup via binary search over the sorted token list.

    The sorted order is over tokens; each entry carries its positional
    code, so lookups return hierarchy coordinates, not sort ranks.
    """

    name = "sorted"

    def _build(self, vocabulary: Sequence[str]) -> None:
        pairs = sorted((token, code) for code, token in enumerate(vocabulary))
        self._tokens = [t for t, _ in pairs]
        self._codes = [c for _, c in pairs]

    def find(self, token: str) -> int | None:
        idx = bisect.bisect_left(self._tokens, token)
        # bisect performs ~log2(n) comparisons; count them explicitly so
        # the probe counter reflects real search effort.
        self.probes += max(1, self._size.bit_length())
        if idx < len(self._tokens) and self._tokens[idx] == token:
            return self._codes[idx]
        return None


class TrieBackend(DictionaryBackend):
    """O(len(token)) lookup via a character trie.

    Memory-heavier than the sorted array but lookup cost is independent
    of dictionary length — the asymptotically best answer to the paper's
    translation-overhead problem.
    """

    name = "trie"

    def _build(self, vocabulary: Sequence[str]) -> None:
        # node = {char: node}, terminal code stored under the key None
        self._root: dict = {}
        for code, token in enumerate(vocabulary):
            node = self._root
            for ch in token:
                node = node.setdefault(ch, {})
            node[None] = code

    def find(self, token: str) -> int | None:
        node = self._root
        for ch in token:
            self.probes += 1
            nxt = node.get(ch)
            if nxt is None:
                return None
            node = nxt
        self.probes += 1
        return node.get(None)


class LinearScanBackend(DictionaryBackend):
    """O(n) lookup by scanning the vocabulary — the paper's behaviour.

    The cost measured in Figure 9 is linear in the dictionary length
    (eq. 17), which only a scan produces.  Kept as the paper-faithful
    backend for calibration and as the baseline of the ABL-DICT ablation.
    """

    name = "linear"

    def _build(self, vocabulary: Sequence[str]) -> None:
        self._tokens = list(vocabulary)

    def find(self, token: str) -> int | None:
        for code, candidate in enumerate(self._tokens):
            self.probes += 1
            if candidate == token:
                return code
        return None


BACKENDS: Mapping[str, type[DictionaryBackend]] = {
    cls.name: cls
    for cls in (HashBackend, SortedArrayBackend, TrieBackend, LinearScanBackend)
}


class ColumnDictionary:
    """The dictionary of one text column: strings <-> positional codes.

    Parameters
    ----------
    column:
        Fact-table column name this dictionary encodes.
    vocabulary:
        ``vocabulary[code]`` is the raw string for ``code``.
    backend:
        Backend name from :data:`BACKENDS` or a backend instance/class.
    """

    def __init__(
        self,
        column: str,
        vocabulary: Sequence[str],
        backend: str | type[DictionaryBackend] | DictionaryBackend = "hash",
    ):
        if not column:
            raise DictionaryError("column name must be non-empty")
        if not vocabulary:
            raise DictionaryError(f"dictionary for {column!r} must be non-empty")
        self.column = column
        self._vocabulary = tuple(vocabulary)
        if isinstance(backend, str):
            try:
                backend_cls = BACKENDS[backend]
            except KeyError:
                raise DictionaryError(
                    f"unknown backend {backend!r}; known: {sorted(BACKENDS)}"
                ) from None
            self._backend = backend_cls(self._vocabulary)
        elif isinstance(backend, DictionaryBackend):
            if len(backend) != len(self._vocabulary):
                raise DictionaryError("backend size does not match vocabulary")
            self._backend = backend
        else:
            self._backend = backend(self._vocabulary)

    # -- properties --------------------------------------------------------

    def __len__(self) -> int:
        """The dictionary length :math:`D_L` of eq. 17."""
        return len(self._vocabulary)

    @property
    def length(self) -> int:
        """Alias for :math:`D_{L|i}` to match the paper's notation."""
        return len(self._vocabulary)

    @property
    def backend_name(self) -> str:
        return self._backend.name

    @property
    def probes(self) -> int:
        """Elementary comparisons performed by all lookups so far."""
        return self._backend.probes

    @property
    def vocabulary(self) -> tuple[str, ...]:
        return self._vocabulary

    # -- lookups -----------------------------------------------------------

    def encode(self, token: str) -> int:
        """Code of ``token``; raises :class:`UnknownTokenError` if absent."""
        code = self._backend.find(token)
        if code is None:
            raise UnknownTokenError(self.column, token)
        return code

    def encode_many(self, tokens: Iterable[str]) -> list[int]:
        return [self.encode(t) for t in tokens]

    def decode(self, code: int) -> str:
        """Raw string for ``code``."""
        if not 0 <= code < len(self._vocabulary):
            raise DictionaryError(
                f"code {code} out of range for dictionary {self.column!r} "
                f"(length {len(self._vocabulary)})"
            )
        return self._vocabulary[code]

    def __contains__(self, token: str) -> bool:
        return self._backend.find(token) is not None

    def __repr__(self) -> str:
        return (
            f"ColumnDictionary({self.column!r}, D_L={len(self)}, "
            f"backend={self.backend_name!r})"
        )


def build_dictionaries(
    vocabularies: Mapping[str, Sequence[str]],
    backend: str | type[DictionaryBackend] = "hash",
) -> dict[str, ColumnDictionary]:
    """Build one :class:`ColumnDictionary` per text column.

    ``vocabularies`` is typically
    :attr:`repro.relational.generator.SyntheticDataset.vocabularies`.
    """
    return {
        column: ColumnDictionary(column, vocab, backend=backend)
        for column, vocab in vocabularies.items()
    }
