"""Query translation service — the CPU preprocessing partition's job.

Section III-F/III-G: every query scheduled to the GPU that carries text
parameters must first be translated on the CPU's *preprocessing
partition*.  :class:`TranslationService` owns the per-column
dictionaries, performs the actual literal-to-code translation, and
estimates the translation-time upper bound :math:`\\lceil T_{TRANS}
\\rceil` of eq. 18::

    ceil(T_TRANS) = sum_{i in CDT_QD} P_DICT(D_L|i)

where the sum runs over every text parameter of the decomposed query and
:math:`D_{L|i}` is the length of the dictionary of the column that
parameter filters (eq. 16-17).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.errors import TranslationError, UnknownTokenError
from repro.olap.hierarchy import DimensionHierarchy
from repro.query.model import Condition, Query, QueryDecomposition, decompose
from repro.text.ahocorasick import AhoCorasick, Match
from repro.text.dictionary import ColumnDictionary

__all__ = ["TranslationService", "TranslationResult"]

# P_DICT(D_L): seconds per lookup given dictionary length (eq. 17 shape).
DictCostFn = Callable[[int], float]


def _paper_p_dict(d_l: int) -> float:
    """The paper's measured single-threaded cost: 0.0138 us per entry."""
    return 0.0138e-6 * d_l


@dataclass(frozen=True)
class TranslationResult:
    """A translated query plus the bookkeeping the scheduler needs.

    Attributes
    ----------
    query:
        The query with every text condition replaced by integer codes.
    parameters_translated:
        Number of string literals resolved (the realised workload of the
        translation partition).
    estimated_time:
        The eq.-18 upper bound computed *before* translating.
    lookups:
        ``(column, token, code)`` per literal, in translation order.
    """

    query: Query
    parameters_translated: int
    estimated_time: float
    lookups: tuple[tuple[str, str, int], ...]


class TranslationService:
    """Translates query text parameters to integer codes via dictionaries.

    Parameters
    ----------
    dictionaries:
        Per-column dictionaries, keyed by fact-table column name
        (``"store__city"``...).
    hierarchies:
        Dimension hierarchies of the fact table, used to resolve each
        condition's ``(dimension, resolution)`` pair to its column.
    cost_model:
        :math:`P_{DICT}(D_L)` in seconds; defaults to the paper's
        measured eq. 17.  The scheduler can inject a calibrated model.
    """

    def __init__(
        self,
        dictionaries: Mapping[str, ColumnDictionary],
        hierarchies: Mapping[str, DimensionHierarchy],
        cost_model: DictCostFn | None = None,
    ):
        for column, dictionary in dictionaries.items():
            if dictionary.column != column:
                raise TranslationError(
                    f"dictionary registered under {column!r} claims column "
                    f"{dictionary.column!r}"
                )
        self._dictionaries = dict(dictionaries)
        self._hierarchies = dict(hierarchies)
        self._cost_model: DictCostFn = cost_model or _paper_p_dict
        self._scanner: AhoCorasick | None = None
        self._batch_tables: tuple[AhoCorasick | None, dict[str, dict[str, int]]] | None = None
        #: optional metrics hook, duck-typed so the text layer keeps no
        #: import on :mod:`repro.metrics` (see :class:`repro.metrics.
        #: instrument.TranslatorMetrics`): ``on_translated(lookups,
        #: seconds)`` per successful call, ``on_miss(seconds)`` per
        #: unknown-token rejection.  None-guarded: translation is
        #: timing-free when nothing is attached.
        self.metrics = None
        #: optional span hook (see :class:`repro.obs.hooks.
        #: TranslatorSpans`): ``on_translated(query_id, lookups,
        #: seconds)`` per successful call — a separate slot because the
        #: metrics protocol carries no query identity.
        self.spans = None

    # -- introspection -------------------------------------------------------

    @property
    def dictionaries(self) -> Mapping[str, ColumnDictionary]:
        return dict(self._dictionaries)

    def dictionary_for(self, column: str) -> ColumnDictionary:
        try:
            return self._dictionaries[column]
        except KeyError:
            raise TranslationError(
                f"no dictionary for column {column!r}; known: "
                f"{sorted(self._dictionaries)}"
            ) from None

    def dictionary_length(self, column: str) -> int:
        """:math:`D_{L|i}` for a column (eq. 17)."""
        return len(self.dictionary_for(column))

    # -- estimation -------------------------------------------------------

    def estimate_time(self, query: Query) -> float:
        """Eq. 18: upper bound of the translation time for ``query``.

        Zero when the query has no text parameters, in which case the
        scheduler bypasses the translation queue entirely.
        """
        decomposition = decompose(query, self._hierarchies)
        return self.estimate_time_decomposed(decomposition)

    def estimate_time_decomposed(self, decomposition: QueryDecomposition) -> float:
        total = 0.0
        for pred in decomposition.text_predicates:
            d_l = self.dictionary_length(pred.column)
            # one dictionary search per text parameter of the condition
            total += len(pred.condition.text_values) * self._cost_model(d_l)
        return total

    def cost_per_lookup(self, column: str) -> float:
        """:math:`P_{DICT}(D_{L})` of one column's dictionary."""
        return self._cost_model(self.dictionary_length(column))

    # -- translation -------------------------------------------------------

    def translate_condition(self, condition: Condition, column: str) -> Condition:
        """Translate one text condition's literals against ``column``."""
        if not condition.is_text:
            return condition
        dictionary = self.dictionary_for(column)
        codes = [dictionary.encode(tok) for tok in condition.text_values]
        return condition.translated(codes)

    def translate(self, query: Query) -> TranslationResult:
        """Translate every text condition of ``query``.

        Raises :class:`UnknownTokenError` when a literal is absent from
        its column dictionary — the query cannot match any row, and the
        paper's system would reject it at preprocessing time rather than
        waste a GPU partition on it.
        """
        if self.metrics is None and self.spans is None:
            return self._translate(query)
        start = time.perf_counter()
        try:
            result = self._translate(query)
        except UnknownTokenError:
            if self.metrics is not None:
                self.metrics.on_miss(time.perf_counter() - start)
            raise
        elapsed = time.perf_counter() - start
        if self.metrics is not None:
            self.metrics.on_translated(result.parameters_translated, elapsed)
        if self.spans is not None:
            self.spans.on_translated(
                query.query_id, result.parameters_translated, elapsed
            )
        return result

    def _translate(self, query: Query) -> TranslationResult:
        decomposition = decompose(query, self._hierarchies)
        estimated = self.estimate_time_decomposed(decomposition)
        if not decomposition.needs_translation:
            return TranslationResult(
                query=query, parameters_translated=0, estimated_time=0.0, lookups=()
            )

        column_of = {id(p.condition): p.column for p in decomposition.predicates}
        lookups: list[tuple[str, str, int]] = []
        new_conditions: list[Condition] = []
        for cond in query.conditions:
            if not cond.is_text:
                new_conditions.append(cond)
                continue
            column = column_of[id(cond)]
            dictionary = self.dictionary_for(column)
            codes = []
            for token in cond.text_values:
                code = dictionary.encode(token)  # may raise UnknownTokenError
                codes.append(code)
                lookups.append((column, token, code))
            new_conditions.append(cond.translated(codes))
        translated = query.with_conditions(new_conditions)
        return TranslationResult(
            query=translated,
            parameters_translated=len(lookups),
            estimated_time=estimated,
            lookups=tuple(lookups),
        )

    # -- batch translation (amortised dictionary search) -------------------

    def _batch_automaton(self) -> tuple[AhoCorasick | None, dict[str, dict[str, int]]]:
        """Lazily build the batch-translation tables.

        One Aho–Corasick automaton over the union of all column
        vocabularies (the II-E machinery: one scan finds every known
        term), plus a token-to-code map per column for the authoritative
        per-column resolution.  The automaton is ``None`` when a
        vocabulary token contains the ``"\\x00"`` literal separator —
        the joined-text scan would be ambiguous, so matching falls back
        to the code maps alone.
        """
        if self._batch_tables is None:
            code_maps = {
                column: {tok: code for code, tok in enumerate(d.vocabulary)}
                for column, d in self._dictionaries.items()
            }
            union: dict[str, None] = {}
            clean = True
            for d in self._dictionaries.values():
                for tok in d.vocabulary:
                    if "\x00" in tok:
                        clean = False
                    union[tok] = None
            automaton = AhoCorasick(list(union)) if union and clean else None
            self._batch_tables = (automaton, code_maps)
        return self._batch_tables

    def translate_batch(self, queries: Sequence[Query]) -> list[TranslationResult]:
        """Translate a batch of queries with one shared dictionary scan.

        Results — translated queries, lookup tuples, eq.-18 estimates,
        metrics events and the :class:`UnknownTokenError` raised at the
        first untranslatable literal — are identical to calling
        :meth:`translate` per query in order.  The work is amortised:
        every literal of every query is joined into one ``"\\x00"``-
        separated text and matched by a single Aho–Corasick pass over
        the union vocabulary (a literal is a known term iff its slot is
        covered by one leftmost-longest match — patterns cannot cross
        the separator), after which codes come from cached per-column
        token maps instead of per-literal backend searches.  Dictionary
        backends are therefore not consulted, so their ``probes``
        counters reflect the amortised cost, not the scalar path's.
        """
        queries = list(queries)
        automaton, code_maps = self._batch_automaton()

        literals: list[str] = []
        for query in queries:
            for cond in query.conditions:
                literals.extend(cond.text_values)
        in_union: list[bool] | None = None
        if automaton is not None and literals:
            joined = "\x00".join(literals)
            spans = {(m.start, m.end) for m in automaton.longest_matches(joined)}
            in_union = []
            pos = 0
            for lit in literals:
                end = pos + len(lit)
                in_union.append((pos, end) in spans)
                pos = end + 1  # skip the separator

        results: list[TranslationResult] = []
        next_literal = 0
        for query in queries:
            metrics = self.metrics
            span_hook = self.spans
            start_t = (
                time.perf_counter()
                if metrics is not None or span_hook is not None
                else 0.0
            )
            try:
                decomposition = decompose(query, self._hierarchies)
                estimated = self.estimate_time_decomposed(decomposition)
                if not decomposition.needs_translation:
                    result = TranslationResult(
                        query=query,
                        parameters_translated=0,
                        estimated_time=0.0,
                        lookups=(),
                    )
                else:
                    column_of = {
                        id(p.condition): p.column for p in decomposition.predicates
                    }
                    lookups: list[tuple[str, str, int]] = []
                    new_conditions = []
                    for cond in query.conditions:
                        if not cond.is_text:
                            new_conditions.append(cond)
                            continue
                        column = column_of[id(cond)]
                        codes = []
                        col_map = code_maps.get(column)
                        if col_map is None:
                            self.dictionary_for(column)  # raises TranslationError
                        for token in cond.text_values:
                            li = next_literal
                            next_literal += 1
                            code = (
                                col_map.get(token)
                                if in_union is None or in_union[li]
                                else None
                            )
                            if code is None:
                                raise UnknownTokenError(column, token)
                            codes.append(code)
                            lookups.append((column, token, code))
                        new_conditions.append(cond.translated(codes))
                    result = TranslationResult(
                        query=query.with_conditions(new_conditions),
                        parameters_translated=len(lookups),
                        estimated_time=estimated,
                        lookups=tuple(lookups),
                    )
            except UnknownTokenError:
                if metrics is not None:
                    metrics.on_miss(time.perf_counter() - start_t)
                raise
            elapsed_t = time.perf_counter() - start_t
            if metrics is not None:
                metrics.on_translated(result.parameters_translated, elapsed_t)
            if span_hook is not None:
                span_hook.on_translated(
                    query.query_id, result.parameters_translated, elapsed_t
                )
            results.append(result)
        return results

    # -- free-text scanning (Aho-Corasick front-end) -----------------------

    def scan_text(self, text: str) -> list[tuple[str, Match]]:
        """Locate dictionary terms inside free-form query text.

        Builds (lazily, once) a single Aho–Corasick automaton over the
        union of all column vocabularies and returns leftmost-longest
        matches tagged with the column each term belongs to.  Terms
        appearing in several dictionaries are reported once per column.
        """
        if self._scanner is None:
            union: dict[str, None] = {}
            for dictionary in self._dictionaries.values():
                for token in dictionary.vocabulary:
                    union[token] = None
            if not union:
                return []
            self._scanner = AhoCorasick(list(union))
        results: list[tuple[str, Match]] = []
        for match in self._scanner.longest_matches(text):
            for column, dictionary in self._dictionaries.items():
                if match.keyword in dictionary:
                    results.append((column, match))
        return results
