"""Size, time and rate helpers used throughout the library.

The paper expresses cube sizes in MB (eq. 3), memory bandwidth in GB/s
(Figure 3) and throughput in queries per second (Tables 1-3).  Mixing
binary prefixes by hand is a classic source of silent factor-of-1024
errors, so every conversion goes through this module.

All "MB"/"GB" in the paper are binary (MiB/GiB): the cube-size law in
eq. 3 divides a byte count by :math:`1024^2` to obtain MB.  We keep the
paper's naming (``MB``, ``GB``) but document the binary semantics here.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "KB",
    "MB",
    "GB",
    "TB",
    "bytes_to_mb",
    "mb_to_bytes",
    "bytes_to_gb",
    "gb_to_bytes",
    "bandwidth_gbps",
    "fmt_bytes",
    "fmt_seconds",
    "Rate",
]

KB: int = 1024
MB: int = 1024**2
GB: int = 1024**3
TB: int = 1024**4


def bytes_to_mb(n_bytes: float) -> float:
    """Convert a byte count to (binary) megabytes, the unit of eq. 3."""
    return n_bytes / MB


def mb_to_bytes(n_mb: float) -> float:
    """Convert (binary) megabytes to bytes."""
    return n_mb * MB


def bytes_to_gb(n_bytes: float) -> float:
    """Convert a byte count to (binary) gigabytes."""
    return n_bytes / GB


def gb_to_bytes(n_gb: float) -> float:
    """Convert (binary) gigabytes to bytes."""
    return n_gb * GB


def bandwidth_gbps(n_bytes: float, seconds: float) -> float:
    """Achieved bandwidth in GB/s for ``n_bytes`` moved in ``seconds``.

    This is the quantity plotted in Figure 3 of the paper.  Raises
    :class:`ZeroDivisionError` for a zero duration on purpose: a zero-time
    measurement is a benchmarking bug, not a valid infinite bandwidth.
    """
    return bytes_to_gb(n_bytes) / seconds


def fmt_bytes(n_bytes: float) -> str:
    """Human readable size: ``fmt_bytes(32 * GB) == '32.00 GB'``."""
    if n_bytes >= TB:
        return f"{n_bytes / TB:.2f} TB"
    if n_bytes >= GB:
        return f"{n_bytes / GB:.2f} GB"
    if n_bytes >= MB:
        return f"{n_bytes / MB:.2f} MB"
    if n_bytes >= KB:
        return f"{n_bytes / KB:.2f} KB"
    return f"{n_bytes:.0f} B"


def fmt_seconds(seconds: float) -> str:
    """Human readable duration with µs/ms/s auto-scaling."""
    if seconds < 0:
        return "-" + fmt_seconds(-seconds)
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"


@dataclass(frozen=True)
class Rate:
    """A throughput measurement: ``count`` completions over ``seconds``.

    The paper's headline metric is queries per second; keeping numerator
    and denominator separate avoids averaging-of-rates mistakes when
    aggregating across partitions.
    """

    count: int
    seconds: float

    @property
    def per_second(self) -> float:
        """Completions per second; 0.0 for an empty interval."""
        if self.seconds <= 0.0:
            return 0.0
        return self.count / self.seconds

    def __add__(self, other: "Rate") -> "Rate":
        """Combine two measurements taken over the *same* interval.

        The durations must match (within 1e-9 relative tolerance):
        adding rates over different windows is meaningless.
        """
        if abs(self.seconds - other.seconds) > 1e-9 * max(
            1.0, abs(self.seconds), abs(other.seconds)
        ):
            raise ValueError(
                "cannot add Rate objects over different intervals: "
                f"{self.seconds} s vs {other.seconds} s"
            )
        return Rate(self.count + other.count, self.seconds)

    def __str__(self) -> str:
        return f"{self.per_second:.1f}/s ({self.count} in {fmt_seconds(self.seconds)})"
