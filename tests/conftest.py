"""Shared fixtures: one small materialised world reused across the suite.

Everything here is deterministic (fixed seeds) and laptop-sized; the
expensive fixtures are session-scoped since they are read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.olap import CubePyramid, DimensionHierarchy, Level
from repro.relational import generate_dataset, tpcds_like_schema
from repro.text import TranslationService, build_dictionaries


@pytest.fixture(scope="session")
def small_schema():
    """The TPC-DS-flavoured schema at 0.5 scale (3 dims x 4 levels)."""
    return tpcds_like_schema(scale=0.5)


@pytest.fixture(scope="session")
def dataset(small_schema):
    """10k rows of deterministic synthetic retail data."""
    return generate_dataset(small_schema, num_rows=10_000, seed=2012)


@pytest.fixture(scope="session")
def fact_table(dataset):
    return dataset.table


@pytest.fixture(scope="session")
def pyramid(fact_table):
    """Materialised 3-level pyramid over sales_price (resolutions 0-2)."""
    return CubePyramid.from_fact_table(fact_table, "sales_price", [0, 1, 2])


@pytest.fixture(scope="session")
def dictionaries(dataset):
    return build_dictionaries(dataset.vocabularies, backend="hash")


@pytest.fixture(scope="session")
def translator(dictionaries, small_schema):
    return TranslationService(dictionaries, small_schema.hierarchies)


@pytest.fixture(autouse=True)
def audit_simulated_runs(monkeypatch):
    """Audit every :meth:`HybridSystem.run` with the invariant checker.

    Any simulated run anywhere in the suite whose realised schedule
    contradicts the scheduler's :math:`T_Q` books (dependency order,
    FIFO/capacity discipline, job conservation, deterministic drift)
    fails the test with :class:`repro.errors.InvariantViolation` — the
    run is audited even if the test only inspects throughput.
    """
    from repro.sim.system import HybridSystem
    from repro.sim.validate import assert_valid

    original = HybridSystem.run

    def audited(self, stream, max_events=None, collector=None):
        return assert_valid(
            original(self, stream, max_events=max_events, collector=collector)
        )

    monkeypatch.setattr(HybridSystem, "run", audited)


@pytest.fixture()
def rng():
    return np.random.default_rng(99)


@pytest.fixture()
def time_dim():
    """A classic time hierarchy: 4 years -> 48 months -> 1440 days."""
    return DimensionHierarchy(
        "time", [Level("year", 4), Level("month", 48), Level("day", 1440)]
    )
