"""Shared fixtures: one small materialised world reused across the suite.

Everything here is deterministic (fixed seeds) and laptop-sized; the
expensive fixtures are session-scoped since they are read-only.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import settings as hypothesis_settings

from repro.olap import CubePyramid, DimensionHierarchy, Level
from repro.relational import generate_dataset, tpcds_like_schema
from repro.text import TranslationService, build_dictionaries

# the suite must be repeatable run-to-run (the serve concurrency tests
# assert 20/20 identical repeats; CI reruns must not roam the example
# space): derandomise hypothesis so every run draws the same examples
hypothesis_settings.register_profile("deterministic", derandomize=True)
hypothesis_settings.load_profile("deterministic")


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="rewrite tests/regression/golden/*.json from the current "
        "simulator instead of comparing against it",
    )


# -- hermeticity guards --------------------------------------------------------

_REPO_ROOT = Path(__file__).resolve().parent.parent
#: directories the suite must treat as read-only; tests that need a
#: scratch file get one from ``tmp_path``
_WATCHED_DIRS = ("src", "docs", "benchmarks", "tests")
_IGNORED_PARTS = {
    "__pycache__",
    ".git",
    ".hypothesis",
    ".pytest_cache",
    ".benchmarks",
}


def _snapshot_tree() -> set[Path]:
    files = set()
    for top in _WATCHED_DIRS:
        root = _REPO_ROOT / top
        if not root.is_dir():
            continue
        for path in root.rglob("*"):
            if path.is_dir():
                continue
            parts = set(path.parts)
            if parts & _IGNORED_PARTS or path.suffix == ".pyc":
                continue
            files.add(path)
    return files


@pytest.fixture(scope="session", autouse=True)
def no_stray_writes(request):
    """Fail the session if any test writes new files into the repo tree.

    Golden-fixture regeneration is the one sanctioned write, so the
    guard stands down under ``--regen-golden``.
    """
    if request.config.getoption("--regen-golden"):
        yield
        return
    before = _snapshot_tree()
    yield
    stray = sorted(str(p.relative_to(_REPO_ROOT)) for p in _snapshot_tree() - before)
    assert not stray, (
        "test run created files inside the repo tree (use tmp_path "
        f"instead): {stray}"
    )


@pytest.fixture(autouse=True)
def bounded_sleeps(request, monkeypatch):
    """Cap ``time.sleep`` at 50 ms inside tests.

    The serve suite is built around a fake clock precisely so nothing
    needs long real sleeps; a test that wants one anyway must say so
    with ``@pytest.mark.wallclock``.
    """
    if request.node.get_closest_marker("wallclock"):
        return
    real_sleep = time.sleep

    def guarded(seconds):
        assert seconds <= 0.05, (
            f"time.sleep({seconds}) in a test: sleeps over 50 ms make the "
            "suite slow and flaky — drive a FakeClock or mark the test "
            "with @pytest.mark.wallclock"
        )
        real_sleep(seconds)

    monkeypatch.setattr(time, "sleep", guarded)


@pytest.fixture(scope="session")
def small_schema():
    """The TPC-DS-flavoured schema at 0.5 scale (3 dims x 4 levels)."""
    return tpcds_like_schema(scale=0.5)


@pytest.fixture(scope="session")
def dataset(small_schema):
    """10k rows of deterministic synthetic retail data."""
    return generate_dataset(small_schema, num_rows=10_000, seed=2012)


@pytest.fixture(scope="session")
def fact_table(dataset):
    return dataset.table


@pytest.fixture(scope="session")
def pyramid(fact_table):
    """Materialised 3-level pyramid over sales_price (resolutions 0-2)."""
    return CubePyramid.from_fact_table(fact_table, "sales_price", [0, 1, 2])


@pytest.fixture(scope="session")
def dictionaries(dataset):
    return build_dictionaries(dataset.vocabularies, backend="hash")


@pytest.fixture(scope="session")
def translator(dictionaries, small_schema):
    return TranslationService(dictionaries, small_schema.hierarchies)


@pytest.fixture(autouse=True)
def audit_simulated_runs(monkeypatch):
    """Audit every :meth:`HybridSystem.run` with the invariant checker.

    Any simulated run anywhere in the suite whose realised schedule
    contradicts the scheduler's :math:`T_Q` books (dependency order,
    FIFO/capacity discipline, job conservation, deterministic drift)
    fails the test with :class:`repro.errors.InvariantViolation` — the
    run is audited even if the test only inspects throughput.  Runs
    with an adapt plane attached additionally get their model-swap and
    reconfiguration history reconciled by ``validate_adapt``, and runs
    with a span tracer (``obs=``) get their span trees audited by
    ``validate_spans`` against the report and lifecycle trace.
    """
    from repro.sim.system import HybridSystem
    from repro.sim.validate import (
        assert_adapt_valid,
        assert_spans_valid,
        assert_valid,
    )

    original = HybridSystem.run

    def audited(self, stream, max_events=None, collector=None, **kwargs):
        report = assert_valid(
            original(
                self, stream, max_events=max_events, collector=collector, **kwargs
            )
        )
        plane = kwargs.get("adapt")
        if plane is not None:
            assert_adapt_valid(plane.report())
        obs = kwargs.get("obs")
        if obs is not None:
            assert_spans_valid(
                obs.spans(), report=report, collector=collector
            )
        return report

    monkeypatch.setattr(HybridSystem, "run", audited)


@pytest.fixture()
def rng():
    return np.random.default_rng(99)


@pytest.fixture()
def time_dim():
    """A classic time hierarchy: 4 years -> 48 months -> 1440 days."""
    return DimensionHierarchy(
        "time", [Level("year", 4), Level("month", 48), Level("day", 1440)]
    )
