"""Unit tests for the admission-control scheduler extension."""

import pytest

from repro.core.admission import AdmissionControlScheduler
from repro.core.partitions import PartitionQueue, QueueKind
from repro.core.scheduler import QueryEstimates
from repro.errors import AdmissionRejected, SchedulingError
from repro.query.model import Query


class FixedEstimator:
    def __init__(self, t_cpu, t_gpu=None, t_trans=0.0):
        self._est = QueryEstimates(
            t_cpu=t_cpu,
            t_gpu=t_gpu or {1: 0.030, 2: 0.015, 4: 0.008},
            t_trans=t_trans,
        )

    def estimate(self, query):
        return self._est


def make(estimator, lateness_factor, t_c=0.5):
    cpu_q = PartitionQueue("Q_CPU", QueueKind.CPU)
    trans_q = PartitionQueue("Q_TRANS", QueueKind.TRANSLATION)
    gpu_qs = [
        PartitionQueue(f"Q_G{i + 1}", QueueKind.GPU, n_sm=n)
        for i, n in enumerate([1, 1, 2, 2, 4, 4])
    ]
    return AdmissionControlScheduler(
        cpu_q, gpu_qs, trans_q, estimator, t_c, lateness_factor=lateness_factor
    )


def q():
    return Query(conditions=(), measures=("v",))


class TestAdmission:
    def test_feasible_queries_admitted(self):
        sched = make(FixedEstimator(t_cpu=0.001), lateness_factor=0.0)
        decision = sched.schedule(q(), now=0.0)
        assert decision.target.name == "Q_CPU"
        assert sched.rejected_count == 0

    def test_hopeless_query_rejected(self):
        sched = make(
            FixedEstimator(t_cpu=9.0, t_gpu={1: 9.0, 2: 8.0, 4: 7.0}),
            lateness_factor=1.0,
            t_c=0.5,
        )
        with pytest.raises(AdmissionRejected) as exc:
            sched.schedule(q(), now=0.0)
        assert exc.value.best_response == pytest.approx(7.0)
        assert sched.rejected_count == 1

    def test_within_tolerance_uses_step6(self):
        # best response 0.8 s, deadline 0.5 s, tolerance 1.0 x T_C = 0.5
        sched = make(
            FixedEstimator(t_cpu=None, t_gpu={1: 1.2, 2: 1.0, 4: 0.8}),
            lateness_factor=1.0,
            t_c=0.5,
        )
        decision = sched.schedule(q(), now=0.0)
        assert not decision.meets_deadline
        assert decision.target.n_sm == 4

    def test_zero_tolerance_rejects_any_miss(self):
        sched = make(
            FixedEstimator(t_cpu=None, t_gpu={1: 1.2, 2: 1.0, 4: 0.6}),
            lateness_factor=0.0,
            t_c=0.5,
        )
        with pytest.raises(AdmissionRejected):
            sched.schedule(q(), now=0.0)

    def test_infinite_tolerance_is_pure_figure10(self):
        sched = make(
            FixedEstimator(t_cpu=9.0, t_gpu={1: 9.0, 2: 8.0, 4: 7.0}),
            lateness_factor=float("inf"),
        )
        decision = sched.schedule(q(), now=0.0)  # never raises
        assert not decision.meets_deadline

    def test_rejected_query_leaves_no_bookkeeping(self):
        sched = make(
            FixedEstimator(t_cpu=9.0, t_gpu={1: 9.0, 2: 8.0, 4: 7.0}),
            lateness_factor=0.0,
        )
        with pytest.raises(AdmissionRejected):
            sched.schedule(q(), now=0.0)
        assert sched.cpu_queue.jobs_submitted == 0
        assert all(g.jobs_submitted == 0 for g in sched.gpu_queues)
        assert sched.trans_queue.jobs_submitted == 0

    def test_negative_factor_rejected(self):
        with pytest.raises(SchedulingError):
            make(FixedEstimator(t_cpu=0.1), lateness_factor=-0.5)


class TestSystemIntegration:
    def test_rejections_reported(self):
        import functools

        from repro.paper import paper_system_config, paper_workload
        from repro.query.workload import ArrivalProcess
        from repro.sim import HybridSystem

        factory = functools.partial(AdmissionControlScheduler, lateness_factor=0.0)
        config = paper_system_config(
            threads=8, include_32gb=True, scheduler_factory=factory
        )
        workload = paper_workload(include_32gb=True, seed=9)
        stream = workload.generate(500, ArrivalProcess("uniform", rate=400.0))
        report = HybridSystem(config).run(stream)
        assert report.rejected > 0
        assert report.completed + report.rejected == 500
        assert "rejected" in report.summary()
