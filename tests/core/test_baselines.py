"""Unit tests for the baseline/ablation schedulers."""

import pytest

from repro.core.baselines import (
    CPUOnlyScheduler,
    FastestFirstScheduler,
    GPUOnlyScheduler,
    MCTScheduler,
    METScheduler,
    RoundRobinScheduler,
)
from repro.core.partitions import PartitionQueue, QueueKind
from repro.core.scheduler import QueryEstimates
from repro.errors import SchedulingError
from repro.query.model import Query


class FixedEstimator:
    def __init__(self, t_cpu, t_gpu=None, t_trans=0.0):
        self._est = QueryEstimates(
            t_cpu=t_cpu,
            t_gpu=t_gpu or {1: 0.030, 2: 0.015, 4: 0.008},
            t_trans=t_trans,
        )

    def estimate(self, query):
        return self._est


def make(scheduler_cls, estimator, t_c=0.5):
    cpu_q = PartitionQueue("Q_CPU", QueueKind.CPU)
    trans_q = PartitionQueue("Q_TRANS", QueueKind.TRANSLATION)
    gpu_qs = [
        PartitionQueue(f"Q_G{i + 1}", QueueKind.GPU, n_sm=n)
        for i, n in enumerate([1, 1, 2, 2, 4, 4])
    ]
    return scheduler_cls(cpu_q, gpu_qs, trans_q, estimator, t_c)


def q():
    return Query(conditions=(), measures=("v",))


class TestMET:
    def test_picks_smallest_execution_time(self):
        sched = make(METScheduler, FixedEstimator(t_cpu=0.005))
        decision = sched.schedule(q(), now=0.0)
        assert decision.target.name == "Q_CPU"

    def test_ignores_backlog(self):
        sched = make(METScheduler, FixedEstimator(t_cpu=0.005))
        # pile 100 s of backlog on the CPU: MET still picks it
        sched.cpu_queue.submit(99, now=0.0, estimated_time=100.0)
        decision = sched.schedule(q(), now=0.0)
        assert decision.target.name == "Q_CPU"

    def test_gpu_when_cpu_infeasible(self):
        sched = make(METScheduler, FixedEstimator(t_cpu=None))
        decision = sched.schedule(q(), now=0.0)
        assert decision.target.n_sm == 4  # fastest GPU class


class TestMCT:
    def test_accounts_for_backlog(self):
        sched = make(MCTScheduler, FixedEstimator(t_cpu=0.005))
        sched.cpu_queue.submit(99, now=0.0, estimated_time=100.0)
        decision = sched.schedule(q(), now=0.0)
        assert decision.target.kind is QueueKind.GPU

    def test_balances_across_partitions(self):
        sched = make(MCTScheduler, FixedEstimator(t_cpu=None))
        targets = [sched.schedule(q(), now=0.0).target.name for _ in range(30)]
        assert len(set(targets)) >= 4  # spreads load


class TestRoundRobin:
    def test_cycles(self):
        sched = make(RoundRobinScheduler, FixedEstimator(t_cpu=0.001))
        targets = [sched.schedule(q(), now=0.0).target.name for _ in range(8)]
        assert targets[0] == "Q_CPU"
        assert targets[1] == "Q_G1"
        assert targets[7] == "Q_CPU"  # cycle of 7 partitions wraps

    def test_skips_cpu_when_infeasible(self):
        sched = make(RoundRobinScheduler, FixedEstimator(t_cpu=None))
        targets = {sched.schedule(q(), now=0.0).target.name for _ in range(12)}
        assert "Q_CPU" not in targets


class TestCPUOnly:
    def test_always_cpu(self):
        sched = make(CPUOnlyScheduler, FixedEstimator(t_cpu=0.5))
        for _ in range(5):
            assert sched.schedule(q(), now=0.0).target.name == "Q_CPU"

    def test_raises_when_no_cube(self):
        sched = make(CPUOnlyScheduler, FixedEstimator(t_cpu=None))
        with pytest.raises(SchedulingError):
            sched.schedule(q(), now=0.0)


class TestGPUOnly:
    def test_never_cpu(self):
        sched = make(GPUOnlyScheduler, FixedEstimator(t_cpu=0.0001))
        targets = {sched.schedule(q(), now=0.0).target.name for _ in range(20)}
        assert "Q_CPU" not in targets

    def test_slowest_first_within_deadline(self):
        sched = make(GPUOnlyScheduler, FixedEstimator(t_cpu=None))
        assert sched.schedule(q(), now=0.0).target.name == "Q_G1"

    def test_overload_minimises_lateness(self):
        sched = make(
            GPUOnlyScheduler,
            FixedEstimator(t_cpu=None, t_gpu={1: 9.0, 2: 8.0, 4: 7.0}),
            t_c=0.1,
        )
        decision = sched.schedule(q(), now=0.0)
        assert decision.target.n_sm == 4

    def test_clear_error_for_cpu_only_query(self):
        # empty t_gpu map = only a cube can answer this query; GPU-only
        # mode must say so instead of crashing on fastest_gpu_time
        class _CPUOnly:
            def estimate(self, query):
                return QueryEstimates(t_cpu=0.01, t_gpu={})

        sched = make(GPUOnlyScheduler, _CPUOnly())
        with pytest.raises(SchedulingError, match="no GPU estimates"):
            sched.schedule(q(), now=0.0)


class TestFastestFirst:
    def test_reverses_step5_order(self):
        sched = make(FastestFirstScheduler, FixedEstimator(t_cpu=None))
        assert sched.schedule(q(), now=0.0).target.name == "Q_G6"

    def test_cpu_branch_unchanged(self):
        sched = make(FastestFirstScheduler, FixedEstimator(t_cpu=0.001))
        assert sched.schedule(q(), now=0.0).target.name == "Q_CPU"

    def test_cpu_only_query_does_not_crash(self):
        # same short-circuit regression as HybridScheduler step 5
        class _CPUOnly:
            def estimate(self, query):
                return QueryEstimates(t_cpu=0.01, t_gpu={})

        sched = make(FastestFirstScheduler, _CPUOnly())
        assert sched.schedule(q(), now=0.0).target.name == "Q_CPU"


class TestBaselineDeadlineBoundary:
    """The inclusive P_BD boundary also applies to the baselines."""

    def test_gpu_only_exact_deadline_is_feasible(self):
        sched = make(
            GPUOnlyScheduler,
            FixedEstimator(t_cpu=None, t_gpu={1: 0.5, 2: 0.5, 4: 0.5}),
            t_c=0.5,
        )
        decision = sched.schedule(q(), now=0.0)
        assert decision.target.name == "Q_G1"  # slowest-first, not fallback
        assert decision.meets_deadline

    def test_fastest_first_exact_deadline_is_feasible(self):
        sched = make(
            FastestFirstScheduler,
            FixedEstimator(t_cpu=None, t_gpu={1: 0.5, 2: 0.5, 4: 0.5}),
            t_c=0.5,
        )
        decision = sched.schedule(q(), now=0.0)
        assert decision.target.name == "Q_G6"
        assert decision.meets_deadline
