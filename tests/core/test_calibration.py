"""Unit tests for model calibration (the Figures 4/5/8/9 pipeline)."""

import numpy as np
import pytest

from repro.core.calibration import (
    fit_dict_cost,
    fit_gpu_timing,
    fit_linear,
    fit_piecewise_cpu,
    fit_power_law,
    r_squared,
)
from repro.core.perfmodel import PowerLawModel
from repro.errors import CalibrationError


class TestRSquared:
    def test_perfect_fit(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r_squared(y, y) == 1.0

    def test_mean_predictor_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert np.isclose(r_squared(y, np.full(3, 2.0)), 0.0)

    def test_constant_data(self):
        y = np.ones(3)
        assert r_squared(y, y) == 1.0


class TestPowerLawFit:
    def test_recovers_exact_law(self):
        x = np.array([1.0, 10.0, 100.0, 1000.0])
        y = 2.5e-4 * x**0.93
        fit = fit_power_law(x, y)
        assert isinstance(fit.model, PowerLawModel)
        assert np.isclose(fit.model.a, 2.5e-4)
        assert np.isclose(fit.model.p, 0.93)
        assert fit.r2 > 0.999

    def test_noisy_fit_quality(self, rng):
        x = np.logspace(0, 3, 30)
        y = 1e-4 * x**0.95 * rng.lognormal(0, 0.02, size=30)
        fit = fit_power_law(x, y)
        assert 0.9 < fit.model.p < 1.0
        assert fit.r2 > 0.95

    def test_nonpositive_data_rejected(self):
        with pytest.raises(CalibrationError):
            fit_power_law([1.0, 2.0, 0.0], [1.0, 2.0, 3.0])

    def test_too_few_points(self):
        with pytest.raises(CalibrationError):
            fit_power_law([1.0, 2.0], [1.0, 2.0])


class TestLinearFit:
    def test_recovers_exact_line(self):
        x = np.array([0.0, 1.0, 2.0])
        fit = fit_linear(x, 5e-5 * x + 0.0096)
        assert np.isclose(fit.model.a, 5e-5)
        assert np.isclose(fit.model.b, 0.0096)

    def test_through_origin(self):
        x = np.array([1.0, 2.0, 4.0])
        fit = fit_linear(x, 3.0 * x, through_origin=True)
        assert np.isclose(fit.model.a, 3.0)
        assert fit.model.b == 0.0

    def test_degenerate_x_rejected(self):
        with pytest.raises(CalibrationError):
            fit_linear([2.0, 2.0], [1.0, 2.0])

    def test_nan_rejected(self):
        with pytest.raises(CalibrationError):
            fit_linear([1.0, float("nan")], [1.0, 2.0])

    def test_shape_mismatch(self):
        with pytest.raises(CalibrationError):
            fit_linear([1.0, 2.0], [1.0])


class TestPiecewiseCPUFit:
    def _synthetic_sweep(self):
        sizes = np.array([1, 4, 16, 64, 256, 512, 1024, 4096, 16384], dtype=float)
        times = np.where(
            sizes < 512.0,
            1e-4 * sizes**0.9341,
            5e-5 * sizes + 0.0096,
        )
        return sizes, times

    def test_recovers_eq7_coefficients(self):
        sizes, times = self._synthetic_sweep()
        model = fit_piecewise_cpu(sizes, times, threads=4)
        assert np.isclose(model.time(100.0), 1e-4 * 100**0.9341, rtol=1e-3)
        assert np.isclose(model.time(8192.0), 5e-5 * 8192 + 0.0096, rtol=1e-3)

    def test_breakpoint_honoured(self):
        sizes, times = self._synthetic_sweep()
        model = fit_piecewise_cpu(sizes, times, breakpoint_mb=512.0)
        assert model.model.breakpoint == 512.0

    def test_min_r2_enforced(self, rng):
        sizes = np.array([1, 4, 16, 64, 256, 1024, 4096], dtype=float)
        times = rng.random(len(sizes))  # garbage
        with pytest.raises(CalibrationError, match="R\\^2"):
            fit_piecewise_cpu(sizes, times, min_r2=0.99)

    def test_insufficient_range_coverage(self):
        with pytest.raises(CalibrationError, match="breakpoint"):
            fit_piecewise_cpu([1, 2, 4, 8, 16], [1, 2, 3, 4, 5])


class TestBreakpointAutoSelection:
    """Boundary behaviour of ``breakpoint_mb=None`` auto-selection."""

    def test_auto_selects_near_true_breakpoint(self):
        sizes = np.array([1, 4, 16, 64, 256, 512, 1024, 4096, 16384], dtype=float)
        times = np.where(
            sizes < 512.0, 1e-4 * sizes**0.9341, 5e-5 * sizes + 0.0096
        )
        model = fit_piecewise_cpu(sizes, times, breakpoint_mb=None)
        # selected breakpoint must split the sweep where the regimes do:
        # between the last power-law sample and the first linear one
        assert 256.0 < model.model.breakpoint <= 512.0

    def test_single_distinct_size_raises(self):
        """All samples at one x: no candidate breakpoints exist at all."""
        with pytest.raises(CalibrationError, match="auto-selection failed"):
            fit_piecewise_cpu(
                [8.0] * 6, [1.0, 1.1, 0.9, 1.0, 1.05, 0.95], breakpoint_mb=None
            )

    def test_two_distinct_sizes_raises(self):
        """One candidate midpoint, but every split leaves fewer than 3
        below or fewer than 2 at/above — samples all on one side."""
        sizes = [1.0, 1.0, 1.0, 1.0, 2.0]
        times = [1.0, 1.0, 1.0, 1.0, 2.0]
        with pytest.raises(CalibrationError, match="auto-selection failed"):
            fit_piecewise_cpu(sizes, times, breakpoint_mb=None)

    def test_concentrated_duplicates_raise(self):
        """Enough samples and >= 2 distinct sizes, but duplicates so
        concentrated no candidate reaches both per-segment minima."""
        sizes = [1.0, 1.0, 2.0, 2.0, 2.0, 2.0]
        times = [1.0, 1.0, 2.0, 2.0, 2.0, 2.0]
        with pytest.raises(CalibrationError, match="auto-selection failed"):
            fit_piecewise_cpu(sizes, times, breakpoint_mb=None)

    def test_minimum_feasible_split_succeeds(self):
        """Exactly 3 below + 2 at/above the only feasible midpoint —
        the smallest sweep auto-selection can accept."""
        sizes = np.array([1.0, 2.0, 4.0, 100.0, 200.0])
        times = np.concatenate(
            [1e-3 * sizes[:3] ** 0.9, 5e-4 * sizes[3:] + 0.01]
        )
        model = fit_piecewise_cpu(sizes, times, breakpoint_mb=None)
        assert 4.0 < model.model.breakpoint <= 100.0

    def test_infeasible_error_names_the_minima(self):
        """The error message must tell the caller what a feasible split
        needs, not just that selection failed."""
        with pytest.raises(CalibrationError, match=">= 3 .* >= 2"):
            fit_piecewise_cpu([5.0] * 7, [1.0] * 7, breakpoint_mb=None)


class TestGPUFit:
    def test_recovers_eq14(self):
        fracs = np.linspace(0.1, 1.0, 10)
        measurements = {
            1: (fracs, 0.0030 * fracs + 0.0258),
            2: (fracs, 0.0015 * fracs + 0.0130),
            4: (fracs, 0.0008 * fracs + 0.0065),
        }
        timing = fit_gpu_timing(measurements)
        assert np.isclose(timing.query_time(0.5, 1), 0.0030 * 0.5 + 0.0258)
        assert timing.measured_sm_counts == (1, 2, 4)

    def test_empty_rejected(self):
        with pytest.raises(CalibrationError):
            fit_gpu_timing({})

    def test_min_r2(self, rng):
        fracs = np.linspace(0.1, 1.0, 10)
        with pytest.raises(CalibrationError):
            fit_gpu_timing({1: (fracs, rng.random(10))}, min_r2=0.999)


class TestDictFit:
    def test_recovers_eq17(self):
        lengths = np.array([1e3, 1e4, 1e5, 1e6])
        model = fit_dict_cost(lengths, 0.0138e-6 * lengths)
        assert np.isclose(model.cost_per_entry, 0.0138e-6)

    def test_negative_slope_rejected(self):
        lengths = np.array([1.0, 2.0, 3.0])
        with pytest.raises(CalibrationError):
            fit_dict_cost(lengths, -1e-6 * lengths)


class TestEndToEndCalibration:
    def test_bandwidth_sweep_to_cpu_model(self):
        """The full Figures-4/5 pipeline on real (tiny) measurements."""
        from repro.olap.bandwidth import run_bandwidth_sweep

        sweep = run_bandwidth_sweep(
            sizes_mb=(1, 2, 4, 8, 16, 32, 64), thread_counts=(1,), repeats=2
        )
        # use a laptop-scale breakpoint: the shape (power-law then
        # linear) is what calibration must capture
        model = fit_piecewise_cpu(
            sweep.sizes_mb(1), sweep.times(1), breakpoint_mb=16.0, threads=1
        )
        t = model.time(48.0)
        assert 0 < t < 1.0  # sane magnitude for a 48 MB reduction
