"""Unit tests for the measured-vs-estimated feedback controller."""

import numpy as np
import pytest

from repro.core.feedback import FeedbackController
from repro.core.partitions import PartitionQueue, QueueKind
from repro.errors import SchedulingError


@pytest.fixture()
def queue():
    q = PartitionQueue("Q_CPU", QueueKind.CPU)
    q.submit(1, now=0.0, estimated_time=1.0)
    return q


class TestFullGain:
    def test_paper_behaviour(self, queue):
        fb = FeedbackController(gain=1.0)
        delta = fb.on_completion(queue, measured_time=1.4, estimated_time=1.0)
        assert np.isclose(delta, 0.4)
        assert np.isclose(queue.t_q, 1.4)

    def test_underrun(self, queue):
        fb = FeedbackController(gain=1.0)
        fb.on_completion(queue, measured_time=0.7, estimated_time=1.0)
        assert np.isclose(queue.t_q, 0.7)


class TestDampedGain:
    def test_half_gain(self, queue):
        fb = FeedbackController(gain=0.5)
        delta = fb.on_completion(queue, measured_time=2.0, estimated_time=1.0)
        assert np.isclose(delta, 0.5)
        assert np.isclose(queue.t_q, 1.5)

    def test_zero_gain_still_completes(self, queue):
        fb = FeedbackController(gain=0.0)
        delta = fb.on_completion(queue, measured_time=2.0, estimated_time=1.0)
        assert delta == 0.0
        assert queue.t_q == 1.0
        assert queue.outstanding == 0

    def test_invalid_gain(self):
        with pytest.raises(SchedulingError):
            FeedbackController(gain=1.5)
        with pytest.raises(SchedulingError):
            FeedbackController(gain=-0.1)


class TestStats:
    def test_error_tracking(self, queue):
        fb = FeedbackController()
        queue.submit(2, now=0.0, estimated_time=1.0)
        fb.on_completion(queue, 1.2, 1.0)
        fb.on_completion(queue, 0.9, 1.0)
        stats = fb.stats("Q_CPU")
        assert stats.count == 2
        assert np.isclose(stats.mean_error, 0.05)
        assert np.isclose(stats.mean_abs_error, 0.15)
        assert np.isclose(stats.bias_ratio, 2.1 / 2.0)

    def test_overall_bias(self, queue):
        fb = FeedbackController()
        fb.on_completion(queue, 1.5, 1.0)
        assert np.isclose(fb.overall_bias_ratio, 1.5)

    def test_unknown_queue_stats(self):
        fb = FeedbackController()
        assert fb.stats("nope").count == 0

    def test_empty_bias_is_nan(self):
        fb = FeedbackController()
        assert np.isnan(fb.overall_bias_ratio)


class TestObserver:
    """The read-only observer hook feeding repro.sim.obs."""

    def test_observer_sees_applied_delta_and_stats(self, queue):
        calls = []
        fb = FeedbackController(gain=0.5)
        fb.observer = lambda *args: calls.append(args)
        fb.on_completion(queue, measured_time=2.0, estimated_time=1.0, query_id=7)
        ((name, query_id, measured, estimated, applied, stats),) = calls
        assert (name, query_id, measured, estimated) == ("Q_CPU", 7, 2.0, 1.0)
        assert np.isclose(applied, 0.5)  # gain-damped, the delta actually booked
        assert stats.count == 1
        assert np.isclose(stats.bias_ratio, 2.0)

    def test_zero_gain_observer_reports_zero_applied(self, queue):
        calls = []
        fb = FeedbackController(gain=0.0)
        fb.observer = lambda *args: calls.append(args)
        fb.on_completion(queue, measured_time=2.0, estimated_time=1.0)
        (_, query_id, _, _, applied, stats) = calls[0]
        assert query_id is None
        assert applied == 0.0
        assert stats.count == 1  # statistics record even when no correction

    def test_no_observer_by_default(self, queue):
        fb = FeedbackController()
        assert fb.observer is None
        fb.on_completion(queue, 1.0, 1.0)  # must not try to call None
