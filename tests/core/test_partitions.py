"""Unit tests for partition queues and T_Q bookkeeping."""

import pytest

from repro.core.partitions import PartitionQueue, QueueKind
from repro.errors import PartitionError


class TestConstruction:
    def test_gpu_queue_needs_sm(self):
        with pytest.raises(PartitionError):
            PartitionQueue("Q_G1", QueueKind.GPU)

    def test_non_gpu_queue_rejects_sm(self):
        with pytest.raises(PartitionError):
            PartitionQueue("Q_CPU", QueueKind.CPU, n_sm=4)

    def test_kind_from_string(self):
        q = PartitionQueue("Q_TRANS", "translation")
        assert q.kind is QueueKind.TRANSLATION

    def test_empty_name(self):
        with pytest.raises(PartitionError):
            PartitionQueue("", QueueKind.CPU)


class TestTQBookkeeping:
    def test_initial_state(self):
        q = PartitionQueue("Q_CPU", QueueKind.CPU)
        assert q.t_q == 0.0
        assert q.outstanding == 0
        assert q.ready_time(5.0) == 5.0

    def test_submit_accumulates(self):
        q = PartitionQueue("Q_CPU", QueueKind.CPU)
        s1 = q.submit(1, now=0.0, estimated_time=0.5)
        s2 = q.submit(2, now=0.0, estimated_time=0.3)
        assert s1.estimated_start == 0.0
        assert s2.estimated_start == 0.5
        assert q.t_q == 0.8
        assert q.outstanding == 2

    def test_ready_time_clamps_to_now(self):
        q = PartitionQueue("Q_CPU", QueueKind.CPU)
        q.submit(1, now=0.0, estimated_time=0.1)
        # at t=5 the queue drained long ago
        assert q.ready_time(5.0) == 5.0
        s = q.submit(2, now=5.0, estimated_time=0.2)
        assert s.estimated_start == 5.0
        assert q.t_q == 5.2

    def test_backlog(self):
        q = PartitionQueue("Q_CPU", QueueKind.CPU)
        q.submit(1, now=0.0, estimated_time=2.0)
        assert q.backlog(0.5) == 1.5
        assert q.backlog(3.0) == 0.0

    def test_negative_estimate_rejected(self):
        q = PartitionQueue("Q_CPU", QueueKind.CPU)
        with pytest.raises(PartitionError):
            q.submit(1, now=0.0, estimated_time=-0.1)

    def test_submission_records(self):
        q = PartitionQueue("Q_G1", QueueKind.GPU, n_sm=2)
        q.submit(7, now=1.0, estimated_time=0.25)
        (sub,) = q.submissions
        assert sub.query_id == 7
        assert sub.estimated_finish == 1.25


class TestFeedback:
    def test_overrun_extends_t_q(self):
        q = PartitionQueue("Q_CPU", QueueKind.CPU)
        q.submit(1, now=0.0, estimated_time=1.0)
        delta = q.apply_feedback(measured_time=1.5, estimated_time=1.0)
        assert delta == 0.5
        assert q.t_q == 1.5
        assert q.outstanding == 0

    def test_underrun_shrinks_t_q(self):
        q = PartitionQueue("Q_CPU", QueueKind.CPU)
        q.submit(1, now=0.0, estimated_time=1.0)
        q.submit(2, now=0.0, estimated_time=1.0)
        q.apply_feedback(measured_time=0.4, estimated_time=1.0)
        assert q.t_q == pytest.approx(1.4)

    def test_feedback_without_jobs_rejected(self):
        q = PartitionQueue("Q_CPU", QueueKind.CPU)
        with pytest.raises(PartitionError):
            q.apply_feedback(1.0, 1.0)

    def test_complete_without_feedback(self):
        q = PartitionQueue("Q_CPU", QueueKind.CPU)
        q.submit(1, now=0.0, estimated_time=1.0)
        q.complete_without_feedback()
        assert q.t_q == 1.0
        assert q.outstanding == 0

    def test_negative_times_rejected(self):
        q = PartitionQueue("Q_CPU", QueueKind.CPU)
        q.submit(1, now=0.0, estimated_time=1.0)
        with pytest.raises(PartitionError):
            q.apply_feedback(-1.0, 1.0)

    def test_totals_tracked(self):
        q = PartitionQueue("Q_CPU", QueueKind.CPU)
        q.submit(1, now=0.0, estimated_time=1.0)
        q.apply_feedback(1.2, 1.0)
        assert q.total_estimated == 1.0
        assert q.total_feedback == pytest.approx(0.2)


class TestEarliestStart:
    """Pipeline dependencies in the T_Q books (Section III-G)."""

    def test_earliest_start_delays_booked_start(self):
        q = PartitionQueue("Q_G1", QueueKind.GPU, n_sm=1)
        sub = q.submit(1, now=0.0, estimated_time=0.01, earliest_start=1.0)
        assert sub.estimated_start == 1.0
        assert sub.earliest_start == 1.0
        assert sub.estimated_finish == pytest.approx(1.01)
        assert q.t_q == pytest.approx(1.01)

    def test_earliest_start_in_the_past_is_a_noop(self):
        q = PartitionQueue("Q_G1", QueueKind.GPU, n_sm=1)
        q.submit(1, now=0.0, estimated_time=2.0)
        sub = q.submit(2, now=0.0, estimated_time=0.5, earliest_start=1.0)
        # queue ready at 2.0 already dominates the 1.0 dependency
        assert sub.estimated_start == 2.0
        assert q.t_q == pytest.approx(2.5)

    def test_default_has_no_dependency(self):
        q = PartitionQueue("Q_CPU", QueueKind.CPU)
        sub = q.submit(1, now=0.0, estimated_time=1.0)
        assert sub.earliest_start is None


class TestCapacity:
    """Fluid T_Q bookkeeping for multi-worker queues."""

    def test_capacity_must_be_positive(self):
        with pytest.raises(PartitionError, match="capacity"):
            PartitionQueue("Q_TRANS", QueueKind.TRANSLATION, capacity=0)

    def test_backlog_drains_fluidly(self):
        q = PartitionQueue("Q_TRANS", QueueKind.TRANSLATION, capacity=2)
        q.submit(1, now=0.0, estimated_time=1.0)
        q.submit(2, now=0.0, estimated_time=1.0)
        # two workers: two 1 s jobs book 1 s of backlog, not 2 s
        assert q.t_q == pytest.approx(1.0)

    def test_submission_keeps_full_service_time(self):
        q = PartitionQueue("Q_TRANS", QueueKind.TRANSLATION, capacity=4)
        sub = q.submit(1, now=0.0, estimated_time=1.0)
        # one job still takes the full second; only the backlog is fluid
        assert sub.estimated_time == 1.0
        assert q.t_q == pytest.approx(0.25)

    def test_feedback_scaled_by_capacity(self):
        q = PartitionQueue("Q_TRANS", QueueKind.TRANSLATION, capacity=2)
        q.submit(1, now=0.0, estimated_time=1.0)
        q.apply_feedback(measured_time=2.0, estimated_time=1.0)
        # a 1 s overrun on a 2-worker station delays the drain by 0.5 s
        assert q.t_q == pytest.approx(0.5 + 0.5)

    def test_default_capacity_matches_paper(self):
        q = PartitionQueue("Q_CPU", QueueKind.CPU)
        assert q.capacity == 1
