"""Unit tests for the performance-model families (eq. 4-10, 17)."""

import numpy as np
import pytest

from repro.core.perfmodel import (
    CPUPerfModel,
    DictPerfModel,
    LinearModel,
    PAPER_DICT_MODEL,
    PAPER_RANGE_BREAK_MB,
    PiecewiseModel,
    PowerLawModel,
    XEON_X5667_1T_LEGACY,
    XEON_X5667_4T,
    XEON_X5667_8T,
)
from repro.errors import CalibrationError


class TestPowerLaw:
    def test_evaluation(self):
        m = PowerLawModel(a=2.0, p=0.5)
        assert np.isclose(m.time(16.0), 8.0)

    def test_nonpositive_input(self):
        with pytest.raises(CalibrationError):
            PowerLawModel(a=1.0, p=1.0).time(0.0)

    def test_nonpositive_coefficient(self):
        with pytest.raises(CalibrationError):
            PowerLawModel(a=0.0, p=1.0)


class TestLinear:
    def test_evaluation(self):
        assert LinearModel(a=2.0, b=1.0).time(3.0) == 7.0

    def test_negative_input(self):
        with pytest.raises(CalibrationError):
            LinearModel(a=1.0).time(-1.0)


class TestPiecewise:
    def test_branch_selection(self):
        m = PiecewiseModel(
            breakpoint=10.0,
            below=LinearModel(a=1.0),
            above=LinearModel(a=100.0),
        )
        assert m.time(5.0) == 5.0
        assert m.time(20.0) == 2000.0

    def test_breakpoint_belongs_to_range_b(self):
        m = PiecewiseModel(
            breakpoint=10.0,
            below=LinearModel(a=1.0),
            above=LinearModel(a=2.0),
        )
        assert m.time(10.0) == 20.0

    def test_continuity_gap(self):
        m = PiecewiseModel(
            breakpoint=10.0,
            below=LinearModel(a=1.0),
            above=LinearModel(a=1.0, b=0.5),
        )
        assert np.isclose(m.continuity_gap(), 0.5)

    def test_invalid_breakpoint(self):
        with pytest.raises(CalibrationError):
            PiecewiseModel(breakpoint=0, below=LinearModel(a=1), above=LinearModel(a=1))


class TestPublishedCPUModels:
    def test_eq7_small_range(self):
        # f_A|4T(100 MB) = 1e-4 * 100^0.9341
        assert np.isclose(XEON_X5667_4T.time(100.0), 1e-4 * 100**0.9341)

    def test_eq7_large_range(self):
        # f_B|4T(1024 MB) = 5e-5 * 1024 + 0.0096
        assert np.isclose(XEON_X5667_4T.time(1024.0), 5e-5 * 1024 + 0.0096)

    def test_eq10(self):
        assert np.isclose(XEON_X5667_8T.time(100.0), 6e-5 * 100**0.984)
        assert np.isclose(XEON_X5667_8T.time(2048.0), 4e-5 * 2048 + 0.0146)

    def test_breakpoint_is_512mb(self):
        assert PAPER_RANGE_BREAK_MB == 512.0

    def test_8t_faster_than_4t_at_scale(self):
        for mb in (1024, 8192, 32768):
            assert XEON_X5667_8T.time(mb) < XEON_X5667_4T.time(mb)

    def test_legacy_is_1gbps(self):
        assert np.isclose(XEON_X5667_1T_LEGACY.time(1024.0), 1.0)

    def test_32gb_cube_times_match_paper_narrative(self):
        # Table 2 implies ~1.3-1.7 s for a 32 GB scan
        t4 = XEON_X5667_4T.time(32 * 1024)
        t8 = XEON_X5667_8T.time(32 * 1024)
        assert 1.5 < t4 < 1.8
        assert 1.2 < t8 < 1.5

    def test_dispatch_overhead(self):
        m = XEON_X5667_8T.with_overhead(0.005)
        assert np.isclose(m.time(100.0), XEON_X5667_8T.time(100.0) + 0.005)

    def test_negative_overhead_rejected(self):
        with pytest.raises(CalibrationError):
            XEON_X5667_8T.with_overhead(-0.1)

    def test_invalid_threads(self):
        with pytest.raises(CalibrationError):
            CPUPerfModel(model=LinearModel(a=1.0), threads=0)

    def test_bandwidth_helper(self):
        # 1024 MB in 1 s -> 1 GB/s
        m = CPUPerfModel(model=LinearModel(a=1.0 / 1024.0), threads=1)
        assert np.isclose(m.bandwidth_gbps(1024.0), 1.0)


class TestDictModel:
    def test_eq17(self):
        assert np.isclose(PAPER_DICT_MODEL.time(1_000_000), 0.0138)

    def test_eq18_sums(self):
        assert np.isclose(
            PAPER_DICT_MODEL.translation_time([1000, 2000]),
            0.0138e-6 * 3000,
        )

    def test_empty_translation_is_zero(self):
        assert PAPER_DICT_MODEL.translation_time([]) == 0.0

    def test_negative_length_rejected(self):
        with pytest.raises(CalibrationError):
            PAPER_DICT_MODEL.time(-1)

    def test_negative_cost_rejected(self):
        with pytest.raises(CalibrationError):
            DictPerfModel(cost_per_entry=-1e-9)
