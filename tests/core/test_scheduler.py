"""Unit tests for the Figure-10 scheduling algorithm.

Each test drives the scheduler with a stub estimator so every branch of
steps 1-6 is exercised deterministically.
"""

import pytest

from repro.core.partitions import PartitionQueue, QueueKind
from repro.core.scheduler import HybridScheduler, QueryEstimates
from repro.errors import SchedulingError
from repro.query.model import Query


class FixedEstimator:
    """Returns the same estimates for every query."""

    def __init__(self, t_cpu, t_gpu=None, t_trans=0.0):
        self._est = QueryEstimates(
            t_cpu=t_cpu,
            t_gpu=t_gpu or {1: 0.030, 2: 0.015, 4: 0.008},
            t_trans=t_trans,
        )

    def estimate(self, query):
        return self._est


def make_scheduler(estimator, t_c=0.5):
    cpu_q = PartitionQueue("Q_CPU", QueueKind.CPU)
    trans_q = PartitionQueue("Q_TRANS", QueueKind.TRANSLATION)
    gpu_qs = [
        PartitionQueue(f"Q_G{i + 1}", QueueKind.GPU, n_sm=n)
        for i, n in enumerate([1, 1, 2, 2, 4, 4])
    ]
    sched = HybridScheduler(cpu_q, gpu_qs, trans_q, estimator, time_constraint=t_c)
    return sched


def query():
    return Query(conditions=(), measures=("v",))


class TestStep1Deadline:
    def test_deadline_is_now_plus_tc(self):
        sched = make_scheduler(FixedEstimator(t_cpu=0.001), t_c=0.25)
        decision = sched.schedule(query(), now=10.0)
        assert decision.deadline == 10.25


class TestStep5CPUBranch:
    def test_cpu_wins_when_faster_than_best_gpu(self):
        # T_CPU (1 ms) < T_GPU3 (8 ms) and everything makes the deadline
        sched = make_scheduler(FixedEstimator(t_cpu=0.001))
        decision = sched.schedule(query(), now=0.0)
        assert decision.target.name == "Q_CPU"
        assert decision.meets_deadline

    def test_gpu_wins_when_cpu_slower_than_best_gpu(self):
        # T_CPU (20 ms) > T_GPU3 (8 ms): goes to the SLOWEST feasible GPU
        sched = make_scheduler(FixedEstimator(t_cpu=0.020))
        decision = sched.schedule(query(), now=0.0)
        assert decision.target.name == "Q_G1"

    def test_cpu_infeasible_routes_gpu(self):
        sched = make_scheduler(FixedEstimator(t_cpu=None))
        decision = sched.schedule(query(), now=0.0)
        assert decision.target.kind is QueueKind.GPU

    def test_cpu_unavailable_when_no_cube(self):
        # CPU never considered: cpu queue untouched
        sched = make_scheduler(FixedEstimator(t_cpu=None))
        sched.schedule(query(), now=0.0)
        assert sched.cpu_queue.jobs_submitted == 0

    def test_paper_deviation_only_cpu_in_pbd(self):
        # GPU partitions all miss the deadline; CPU makes it but is not
        # faster than T_GPU3 -> our documented deviation submits to CPU.
        sched = make_scheduler(
            FixedEstimator(t_cpu=0.4, t_gpu={1: 9.0, 2: 9.0, 4: 0.41})
        )
        decision = sched.schedule(query(), now=0.0)
        assert decision.target.name == "Q_CPU"
        assert decision.meets_deadline


class TestStep5SlowestFirst:
    def test_fills_slow_queues_before_fast(self):
        sched = make_scheduler(FixedEstimator(t_cpu=None))
        targets = [sched.schedule(query(), now=0.0).target.name for _ in range(6)]
        # backlog accumulates; every new query still picks the slowest
        # queue that makes the deadline, so G1 fills first, then G2, ...
        assert targets[0] == "Q_G1"
        assert set(targets) <= {"Q_G1", "Q_G2", "Q_G3", "Q_G4", "Q_G5", "Q_G6"}
        # G1 must receive several queries before G5/G6 get any
        assert targets.count("Q_G1") >= 2

    def test_overflow_to_faster_partitions(self):
        # each 1-SM job takes 0.2 s; deadline 0.5 s -> after two jobs on
        # G1/G2 the slow queues can't make the deadline and faster ones
        # take over
        sched = make_scheduler(
            FixedEstimator(t_cpu=None, t_gpu={1: 0.2, 2: 0.1, 4: 0.05})
        )
        targets = [sched.schedule(query(), now=0.0).target.name for _ in range(16)]
        assert "Q_G5" in targets or "Q_G6" in targets


class TestStep6Fallback:
    def test_overloaded_system_minimises_lateness(self):
        # every option misses the deadline; expect min |T_D - T_R|
        sched = make_scheduler(
            FixedEstimator(t_cpu=5.0, t_gpu={1: 9.0, 2: 8.0, 4: 7.0}), t_c=0.1
        )
        decision = sched.schedule(query(), now=0.0)
        assert not decision.meets_deadline
        assert decision.target.name == "Q_CPU"  # 5.0 is closest to 0.1

    def test_gpu_closest_wins(self):
        sched = make_scheduler(
            FixedEstimator(t_cpu=9.0, t_gpu={1: 8.0, 2: 7.0, 4: 2.0}), t_c=0.1
        )
        decision = sched.schedule(query(), now=0.0)
        assert decision.target.name in ("Q_G5", "Q_G6")


class TestTranslationPipeline:
    def test_translation_submitted_for_gpu_text_queries(self):
        sched = make_scheduler(FixedEstimator(t_cpu=None, t_trans=0.01))
        decision = sched.schedule(query(), now=0.0)
        assert decision.translation is not None
        assert sched.trans_queue.t_q == pytest.approx(0.01)

    def test_no_translation_for_cpu_queries(self):
        # CPU handles strings natively: no Q_TRANS submission
        sched = make_scheduler(FixedEstimator(t_cpu=0.001, t_trans=0.01))
        decision = sched.schedule(query(), now=0.0)
        assert decision.target.name == "Q_CPU"
        assert decision.translation is None
        assert sched.trans_queue.jobs_submitted == 0

    def test_step3_response_includes_translation_wait(self):
        # translation queue already backed up by 1 s: GPU response times
        # must include it and push everything past the 0.5 s deadline
        sched = make_scheduler(FixedEstimator(t_cpu=None, t_trans=0.01))
        sched.trans_queue.submit(99, now=0.0, estimated_time=1.0)
        decision = sched.schedule(query(), now=0.0)
        assert not decision.meets_deadline
        assert decision.estimated_response >= 1.01

    def test_translation_pipelines_with_gpu_queue(self):
        # GPU queue busy for 2 s, translation takes 0.1 s: response is
        # max(2.0, 0.1) + t_gpu, not 2.0 + 0.1 + t_gpu
        est = FixedEstimator(t_cpu=None, t_trans=0.1)
        sched = make_scheduler(est, t_c=10.0)
        for q in sched.gpu_queues:
            q.submit(99, now=0.0, estimated_time=2.0)
        decision = sched.schedule(query(), now=0.0)
        t_gpu = est.estimate(None).gpu_time(decision.target.n_sm)
        assert decision.estimated_response == pytest.approx(2.0 + t_gpu)


class TestQueueUpdates:
    def test_tq_updated_with_gpu_estimate(self):
        sched = make_scheduler(FixedEstimator(t_cpu=None))
        decision = sched.schedule(query(), now=0.0)
        assert decision.target.t_q == pytest.approx(0.030)

    def test_tq_updated_with_cpu_estimate(self):
        sched = make_scheduler(FixedEstimator(t_cpu=0.004))
        sched.schedule(query(), now=0.0)
        assert sched.cpu_queue.t_q == pytest.approx(0.004)


class TestPipelineAwareTQ:
    """Regression tests for the translated-query :math:`T_Q` under-count.

    Historically ``_submit`` bumped the GPU queue from ``ready_time(now)``
    only, so a query with ``t_trans=1.0, t_gpu=0.01`` left the GPU queue
    believing it would drain at t=0.01 while the job could not even start
    before t=1.0 — every subsequent estimate for that partition was
    optimistic by the full translation stall.
    """

    def test_gpu_tq_covers_translation_stall(self):
        est = FixedEstimator(
            t_cpu=None, t_gpu={1: 0.01, 2: 0.01, 4: 0.01}, t_trans=1.0
        )
        sched = make_scheduler(est, t_c=5.0)
        decision = sched.schedule(query(), now=0.0)
        assert decision.translation is not None
        assert decision.translation.estimated_finish == pytest.approx(1.0)
        assert decision.processing.earliest_start == pytest.approx(1.0)
        assert decision.processing.estimated_start == pytest.approx(1.0)
        # the headline fix: T_Q = 1.01, not the pre-fix 0.01
        assert decision.target.t_q == pytest.approx(1.01)

    def test_tq_is_max_of_gpu_ready_and_translation_finish(self):
        # acceptance criterion: T_Q == max(gpu_ready, trans_ready +
        # t_trans) + t_gpu, here with a backed-up translation queue
        est = FixedEstimator(t_cpu=None, t_trans=0.5)
        sched = make_scheduler(est, t_c=50.0)
        sched.trans_queue.submit(98, now=0.0, estimated_time=2.0)
        decision = sched.schedule(query(), now=0.0)
        t_gpu = est.estimate(None).gpu_time(decision.target.n_sm)
        assert decision.target.t_q == pytest.approx(max(0.0, 2.0 + 0.5) + t_gpu)
        assert decision.target.t_q == pytest.approx(decision.estimated_response)

    def test_busy_gpu_queue_dominates_translation(self):
        # when the GPU backlog exceeds the translation finish, T_Q grows
        # from the GPU side of the max — no double counting
        est = FixedEstimator(t_cpu=None, t_trans=0.1)
        sched = make_scheduler(est, t_c=50.0)
        for q in sched.gpu_queues:
            q.submit(97, now=0.0, estimated_time=3.0)
        decision = sched.schedule(query(), now=0.0)
        t_gpu = est.estimate(None).gpu_time(decision.target.n_sm)
        assert decision.processing.estimated_start == pytest.approx(3.0)
        assert decision.target.t_q == pytest.approx(3.0 + t_gpu)

    def test_untranslated_query_sees_true_backlog_behind_stall(self):
        # a numeric query arriving right after a translated one must see
        # the stalled window in the partition's backlog
        est = FixedEstimator(t_cpu=None, t_trans=1.0)
        sched = make_scheduler(est, t_c=50.0)
        first = sched.schedule(query(), now=0.0)
        t_gpu = est.estimate(None).gpu_time(first.target.n_sm)
        assert first.target.backlog(0.0) == pytest.approx(1.0 + t_gpu)

    def test_untranslated_gpu_query_books_no_earliest_start(self):
        sched = make_scheduler(FixedEstimator(t_cpu=None))
        decision = sched.schedule(query(), now=0.0)
        assert decision.translation is None
        assert decision.processing.earliest_start is None


class TestCPUOnlyQueries:
    """A CPU-feasible query with an *empty* GPU-estimate map must not crash."""

    class _CPUOnly:
        def estimate(self, q):
            return QueryEstimates(t_cpu=0.01, t_gpu={})

    def test_schedules_to_cpu(self):
        sched = make_scheduler(self._CPUOnly())
        decision = sched.schedule(query(), now=0.0)
        assert decision.target.name == "Q_CPU"
        assert decision.meets_deadline

    def test_step6_fallback_with_cpu_only(self):
        class _Slow:
            def estimate(self, q):
                return QueryEstimates(t_cpu=9.0, t_gpu={})

        sched = make_scheduler(_Slow(), t_c=0.1)
        decision = sched.schedule(query(), now=0.0)
        assert decision.target.name == "Q_CPU"
        assert not decision.meets_deadline

    def test_no_partition_at_all_raises(self):
        class _Nothing:
            def estimate(self, q):
                return QueryEstimates(t_cpu=None, t_gpu={})

        sched = make_scheduler(_Nothing())
        with pytest.raises(SchedulingError, match="no partition"):
            sched.schedule(query(), now=0.0)


class TestValidation:
    def test_queue_kind_checks(self):
        cpu_q = PartitionQueue("Q_CPU", QueueKind.CPU)
        trans_q = PartitionQueue("Q_TRANS", QueueKind.TRANSLATION)
        gpu_q = PartitionQueue("Q_G1", QueueKind.GPU, n_sm=1)
        est = FixedEstimator(t_cpu=0.1)
        with pytest.raises(SchedulingError):
            HybridScheduler(trans_q, [gpu_q], trans_q, est, 0.5)
        with pytest.raises(SchedulingError):
            HybridScheduler(cpu_q, [cpu_q], trans_q, est, 0.5)
        with pytest.raises(SchedulingError):
            HybridScheduler(cpu_q, [], trans_q, est, 0.5)
        with pytest.raises(SchedulingError):
            HybridScheduler(cpu_q, [gpu_q], trans_q, est, 0.0)

    def test_gpu_queues_must_be_slowest_first(self):
        cpu_q = PartitionQueue("Q_CPU", QueueKind.CPU)
        trans_q = PartitionQueue("Q_TRANS", QueueKind.TRANSLATION)
        gpu_qs = [
            PartitionQueue("Q_G1", QueueKind.GPU, n_sm=4),
            PartitionQueue("Q_G2", QueueKind.GPU, n_sm=1),
        ]
        with pytest.raises(SchedulingError, match="slowest-first"):
            HybridScheduler(cpu_q, gpu_qs, trans_q, FixedEstimator(t_cpu=0.1), 0.5)

    def test_missing_gpu_estimate(self):
        sched = make_scheduler(FixedEstimator(t_cpu=None, t_gpu={1: 0.1}))
        with pytest.raises(SchedulingError, match="no GPU estimate"):
            sched.schedule(query(), now=0.0)

    def test_estimates_validation(self):
        with pytest.raises(SchedulingError):
            QueryEstimates(t_cpu=-1.0, t_gpu={1: 0.1})
        with pytest.raises(SchedulingError):
            QueryEstimates(t_cpu=0.1, t_gpu={0: 0.1})
        with pytest.raises(SchedulingError):
            QueryEstimates(t_cpu=0.1, t_gpu={1: 0.1}, t_trans=-1.0)

    def test_fastest_gpu_time(self):
        est = QueryEstimates(t_cpu=None, t_gpu={1: 0.3, 4: 0.1, 2: 0.2})
        assert est.fastest_gpu_time == 0.1
        with pytest.raises(SchedulingError):
            QueryEstimates(t_cpu=None, t_gpu={}).fastest_gpu_time


class TestDeadlineBoundary:
    """Regression: the P_BD boundary is inclusive (T_R <= T_D).

    Step 4 and ScheduleDecision.meets_deadline historically used strict
    "deadline - T_R > 0", so a query estimated to finish *exactly* at
    the deadline was pushed to the step-6 fallback and flagged as
    missing — while QueryRecord.met_deadline counts finish <= deadline
    as a hit.  All three places now agree on the inclusive boundary.
    """

    def test_cpu_exactly_at_deadline_is_in_pbd(self):
        # CPU finishes exactly at T_D; every GPU misses by a mile
        sched = make_scheduler(
            FixedEstimator(t_cpu=0.5, t_gpu={1: 9.0, 2: 9.0, 4: 9.0}), t_c=0.5
        )
        decision = sched.schedule(query(), now=0.0)
        assert decision.target.name == "Q_CPU"
        assert decision.estimated_response == 0.5 == decision.deadline
        assert decision.meets_deadline  # was False under strict '>'

    def test_gpu_exactly_at_deadline_keeps_slowest_first(self):
        # all GPUs land exactly on T_D: step 5's slowest-first applies,
        # not step 6's min-lateness (which would pick by tie-break order)
        sched = make_scheduler(
            FixedEstimator(t_cpu=9.0, t_gpu={1: 0.5, 2: 0.5, 4: 0.5}), t_c=0.5
        )
        decision = sched.schedule(query(), now=0.0)
        assert decision.target.name == "Q_G1"
        assert decision.meets_deadline

    def test_decision_agrees_with_record_accounting(self):
        from repro.sim.metrics import QueryRecord

        sched = make_scheduler(
            FixedEstimator(t_cpu=0.5, t_gpu={1: 9.0, 2: 9.0, 4: 9.0}), t_c=0.5
        )
        decision = sched.schedule(query(), now=0.0)
        # realise the run exactly as estimated: the record must agree
        # with the decision's promise
        record = QueryRecord(
            query_id=0,
            query_class="q",
            target=decision.target.name,
            submit_time=0.0,
            finish_time=decision.estimated_response,
            deadline=decision.deadline,
            estimated_time=decision.processing.estimated_time,
            measured_time=decision.processing.estimated_time,
            translated=False,
        )
        assert record.met_deadline == decision.meets_deadline is True

    def test_just_past_deadline_still_falls_through(self):
        import math

        sched = make_scheduler(
            FixedEstimator(
                t_cpu=math.nextafter(0.5, 1.0), t_gpu={1: 9.0, 2: 9.0, 4: 9.0}
            ),
            t_c=0.5,
        )
        decision = sched.schedule(query(), now=0.0)
        assert not decision.meets_deadline


class TestTranslationBacklogLookups:
    """Regression: one translation-backlog read per scheduling pass.

    ``response_times`` historically asked the translation queue for its
    ready time once per GPU candidate (1 + n_gpu_queues reads for a
    translated query, counting the cost-estimation read); the hoisted
    ``translation_ready_at`` makes it exactly one read per call.  More
    than a waste, per-candidate reads were a correctness hazard: any
    future ready-time dependence on the *asking* candidate would have
    let step 3's candidates see different translation backlogs.
    """

    class CountingQueue(PartitionQueue):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            self.ready_time_calls = 0

        def ready_time(self, now):
            self.ready_time_calls += 1
            return super().ready_time(now)

    def _scheduler(self, estimator):
        cpu_q = PartitionQueue("Q_CPU", QueueKind.CPU)
        trans_q = self.CountingQueue("Q_TRANS", QueueKind.TRANSLATION)
        gpu_qs = [
            PartitionQueue(f"Q_G{i + 1}", QueueKind.GPU, n_sm=n)
            for i, n in enumerate([1, 1, 2, 2, 4, 4])
        ]
        return HybridScheduler(
            cpu_q, gpu_qs, trans_q, estimator, time_constraint=0.5
        )

    def test_translated_query_reads_backlog_once_per_pass(self):
        sched = self._scheduler(FixedEstimator(t_cpu=None, t_trans=0.01))
        trans_q = sched.trans_queue
        sched.response_times(sched.estimator.estimate(query()), now=0.0)
        assert trans_q.ready_time_calls == 1
        trans_q.ready_time_calls = 0
        # a full schedule() additionally books the translation stage
        # (one submit-time read inside trans_queue.submit)
        sched.schedule(query(), now=0.0)
        assert trans_q.ready_time_calls == 2

    def test_untranslated_query_never_reads_the_backlog(self):
        sched = self._scheduler(FixedEstimator(t_cpu=0.001))
        sched.schedule(query(), now=0.0)
        assert sched.trans_queue.ready_time_calls == 0
