"""End-to-end fleet tests: real worker processes, real sockets, real HTTP.

These spawn actual shard subprocesses, so they are wall-clock tests by
nature; the worlds are kept tiny (600-row replicas, 1 CPU thread per
shard) to bound the spawn cost.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.errors import FleetError
from repro.fleet import Fleet, FleetServer, ShardSpec
from repro.query.model import Condition, Query
from repro.sim import assert_fleet_valid


def tiny_spec():
    return ShardSpec(shard_id=0, rows=600, cpu_threads=1)


def shape(hi, agg="sum"):
    return Query(
        conditions=(Condition("date", 1, lo=0, hi=hi),),
        measures=("sales_price",),
        agg=agg,
    )


def get_json(url, timeout=15):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, json.load(response)


def post_json(url, payload, timeout=60):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.load(response)


@pytest.mark.wallclock
class TestFleetEndToEnd:
    def test_two_shards_serve_merge_and_reconcile(self):
        with Fleet(num_shards=2, spec=tiny_spec()) as fleet:
            assert fleet.alive == (0, 1)
            assert all(p["ok"] for p in fleet.ping().values())

            # replicas answer identically: the same shape routed twice
            # lands on the same shard (affinity) with the same answer
            first = fleet.submit(shape(3), "small")
            second = fleet.submit(shape(3), "small")
            assert first.shard_id == second.shard_id
            assert first.record.answer == second.record.answer

            # spread some distinct shapes across the ring
            owners = set()
            for hi in (2, 4, 5, 6):
                answer = fleet.submit(shape(hi), "small")
                assert answer.accepted
                owners.add(answer.shard_id)

            # rollup affinity pays off: repeat a shape until the shard's
            # admission policy wants it, materialise, then hit the cache
            for _ in range(3):
                fleet.submit(shape(4, agg="avg"), "small")
            assert fleet.maintain() >= 1
            hit = fleet.submit(shape(4, agg="avg"), "small")
            assert hit.cache_hit

            merged = fleet.merged_metrics()
            assert merged.family("repro_fleet_routed_total") is not None
            assert merged.family("repro_queries_submitted_total") is not None

            report = fleet.fleet_report(drain=True)

        assert_fleet_valid(report)
        assert report.crashed == ()
        assert sum(report.routed.values()) == 10
        assert report.completed + report.cache_hits == 10
        assert report.cache_hits >= 1
        assert {s.shard_id for s in report.shards} == {0, 1}
        for shard in report.shards:
            assert shard.validation.startswith("ok")

    def test_http_front_door(self):
        with Fleet(num_shards=2, spec=tiny_spec()) as fleet:
            with FleetServer(fleet) as server:
                status, health = get_json(server.url + "/health")
                assert status == 200 and health["ok"]
                assert health["alive"] == [0, 1]

                status, answer = post_json(
                    server.url + "/query",
                    {
                        "q": "SELECT sum(sales_price) WHERE date.year IN [0, 2)",
                        "class": "small",
                    },
                )
                assert status == 200 and answer["ok"] and answer["accepted"]
                assert answer["record"]["answer"] is not None

                # malformed body and unparseable query are 400s, not 500s
                with pytest.raises(urllib.error.HTTPError) as err:
                    post_json(server.url + "/query", {"nope": 1})
                assert err.value.code == 400
                with pytest.raises(urllib.error.HTTPError) as err:
                    post_json(server.url + "/query", {"q": "SELECT ???"})
                assert err.value.code == 400

                with urllib.request.urlopen(
                    server.url + "/metrics", timeout=30
                ) as response:
                    text = response.read().decode()
                assert "repro_fleet_routed_total" in text
                assert "repro_queries_submitted_total" in text
                assert "repro_fleet_request_seconds_bucket" in text

                status, live = get_json(server.url + "/report")
                assert status == 200 and live["crashed"] == []

            report = fleet.fleet_report(drain=True)
        assert_fleet_valid(report)
        assert report.completed == 1

    def test_crashed_shard_detected_and_routed_around(self):
        with Fleet(num_shards=2, spec=tiny_spec()) as fleet:
            server = FleetServer(fleet).start()
            try:
                baseline = {
                    hi: fleet.submit(shape(hi), "small").shard_id
                    for hi in (2, 3, 4, 5)
                }
                victim = fleet.alive[0]
                fleet._shards[victim].process.kill()
                fleet._shards[victim].process.join(timeout=30)

                assert fleet.check() == (victim,)
                assert fleet.alive == tuple(
                    s for s in (0, 1) if s != victim
                )

                # health goes degraded, but routing carries on: the dead
                # shard's keys move, the survivor's keys stay put
                with pytest.raises(urllib.error.HTTPError) as err:
                    get_json(server.url + "/health")
                assert err.value.code == 503
                for hi, owner in baseline.items():
                    answer = fleet.submit(shape(hi), "small")
                    assert answer.shard_id != victim
                    if owner != victim:
                        assert answer.shard_id == owner
            finally:
                server.close()
            report = fleet.fleet_report(drain=True)

        assert report.crashed == (victim,)
        assert len(report.shards) == 1
        assert report.shards[0].shard_id != victim
        assert_fleet_valid(report)

    def test_submit_with_no_live_shards_raises(self):
        with Fleet(num_shards=1, spec=tiny_spec()) as fleet:
            fleet._shards[0].process.kill()
            fleet._shards[0].process.join(timeout=30)
            fleet.check()
            with pytest.raises(FleetError):
                fleet.submit(shape(3), "small")
