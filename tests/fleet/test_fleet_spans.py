"""Distributed traces across the fleet: one stitched tree per query.

The tentpole acceptance test lives here: a sampled query submitted
through the front door yields a single trace whose root opens in the
frontdoor process and whose pool.service leaf runs inside a shard
subprocess — two processes, one trace_id, parent links intact.
"""

import json
import urllib.request
from dataclasses import replace

import pytest

from repro.fleet import Fleet, FleetServer, ShardSpec
from repro.obs import SpanTracer
from repro.query.model import Condition, Query
from repro.sim import assert_fleet_valid
from repro.sim.validate import assert_spans_valid


def traced_spec():
    return ShardSpec(shard_id=0, rows=600, cpu_threads=1, span_sample=1.0)


def shape(hi, agg="sum"):
    return Query(
        conditions=(Condition("date", 1, lo=0, hi=hi),),
        measures=("sales_price",),
        agg=agg,
    )


def make_fleet(num_shards=2, spec=None):
    spec = spec if spec is not None else traced_spec()
    # same seed on both sides of the wire: the shard's own head-sampling
    # agrees with the front door's even before adoption kicks in
    tracer = SpanTracer(spec.span_sample, seed=spec.seed, process="frontdoor")
    return Fleet(num_shards=num_shards, spec=spec, spans=tracer)


def post_json(url, payload, timeout=60):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.load(response)


@pytest.mark.wallclock
class TestFleetSpans:
    def test_one_query_one_tree_spanning_two_processes(self):
        with make_fleet() as fleet:
            answer = fleet.submit(shape(3), "small")
            assert answer.accepted
            report = fleet.fleet_report(drain=True)

        assert_fleet_valid(report)
        spans = assert_spans_valid(report.spans)
        assert spans, "a fully-sampled fleet run must ship spans home"
        by_trace = {}
        for span in spans:
            by_trace.setdefault(span.trace_id, []).append(span)
        (members,) = by_trace.values()
        root = next(s for s in members if s.parent_id is None)
        assert root.name == "frontdoor.request"
        assert root.process == "frontdoor"
        assert root.status == "ok"
        # the acceptance criterion: a shard-side service leaf shares the
        # trace and hangs off the frontdoor tree via the wire hop
        service = next(s for s in members if s.name == "pool.service")
        assert service.process.startswith("shard-")
        assert len({s.process for s in members}) >= 2
        names = {s.name for s in members}
        assert {"fleet.route", "wire.roundtrip", "serve.query"} <= names
        wire = next(s for s in members if s.name == "wire.roundtrip")
        assert wire.process == "frontdoor"
        assert wire.attributes["shard"] == service.attributes.get(
            "shard", int(service.process.split("-", 1)[1])
        )

    def test_http_and_direct_submissions_both_trace(self):
        with make_fleet() as fleet:
            with FleetServer(fleet) as server:
                status, answer = post_json(
                    server.url + "/query",
                    {
                        "q": "SELECT sum(sales_price) "
                        "WHERE date.year IN [0, 2)",
                        "class": "small",
                    },
                )
                assert status == 200 and answer["accepted"]
            for hi in (2, 4, 5):
                assert fleet.submit(shape(hi), "small").accepted

            # mid-run gather sees the same stitched shape as shutdown
            live = assert_spans_valid(fleet.gather_spans())
            assert {
                s.name for s in live if s.parent_id is None
            } == {"frontdoor.request"}

            report = fleet.fleet_report(drain=True)

        assert_fleet_valid(report)
        spans = assert_spans_valid(report.spans)
        roots = [s for s in spans if s.parent_id is None]
        assert len(roots) == 4
        assert all(r.name == "frontdoor.request" for r in roots)
        assert all(r.status == "ok" for r in roots)
        # the HTTP-submitted root carries the handler's class annotation
        assert any(
            r.attributes.get("query_class") == "small" for r in roots
        )
        multi = [
            t
            for t in {r.trace_id for r in roots}
            if len({s.process for s in spans if s.trace_id == t}) >= 2
        ]
        assert len(multi) == 4, "every trace must include its shard subtree"

    def test_sampling_is_identical_across_the_wire(self):
        spec = replace(traced_spec(), span_sample=0.5)
        with make_fleet(spec=spec) as fleet:
            queries = [shape(hi) for hi in (2, 3, 4, 5, 6, 7)]
            for query in queries:
                assert fleet.submit(query, "small").accepted
            report = fleet.fleet_report(drain=True)

        assert_fleet_valid(report)
        submitted = [q.query_id for q in queries]
        spans = assert_spans_valid(
            report.spans,
            seed=spec.seed,
            sample_rate=0.5,
            submitted=submitted,
        )
        # sampled traces are complete (frontdoor + shard), unsampled
        # ones are absent entirely — never a half-traced query
        for trace_id in {s.trace_id for s in spans}:
            members = [s for s in spans if s.trace_id == trace_id]
            assert len({s.process for s in members}) >= 2

    def test_crashed_shard_flags_partial_trees(self):
        with make_fleet() as fleet:
            owners = {}
            for hi in (2, 3, 4, 5):
                owners[hi] = fleet.submit(shape(hi), "small").shard_id
            victim = fleet.alive[0]
            assert any(owner == victim for owner in owners.values())
            fleet._shards[victim].process.kill()
            fleet._shards[victim].process.join(timeout=30)
            assert fleet.check() == (victim,)
            report = fleet.fleet_report(drain=True)

        assert report.crashed == (victim,)
        spans = assert_spans_valid(report.spans)
        roots = {
            s.query_id: s for s in spans if s.parent_id is None
        }
        assert len(roots) == 4
        # the dead shard's subtrees are gone, but their traces are
        # flagged partial rather than dropped or left claiming "ok"
        for span in spans:
            if span.name != "wire.roundtrip":
                continue
            root = next(
                s
                for s in spans
                if s.trace_id == span.trace_id and s.parent_id is None
            )
            if span.attributes["shard"] == victim:
                assert root.status == "partial"
            else:
                assert root.status == "ok"
