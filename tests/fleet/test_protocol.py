"""Wire-protocol unit tests: framing, bounds, and round-trips."""

import socket
import struct
import threading

import pytest

from repro.errors import FleetError
from repro.fleet.protocol import (
    MAX_FRAME_BYTES,
    query_from_json,
    query_to_json,
    record_from_json,
    record_to_json,
    recv_frame,
    send_frame,
)
from repro.query.model import Condition, Query
from repro.sim.metrics import QueryRecord


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestFraming:
    def test_round_trip(self, pair):
        a, b = pair
        send_frame(a, {"kind": "ping", "n": 7})
        assert recv_frame(b) == {"kind": "ping", "n": 7}

    def test_multiple_frames_in_order(self, pair):
        a, b = pair
        for i in range(5):
            send_frame(a, {"i": i})
        assert [recv_frame(b)["i"] for _ in range(5)] == list(range(5))

    def test_clean_eof_between_frames_is_none(self, pair):
        a, b = pair
        send_frame(a, {"x": 1})
        a.close()
        assert recv_frame(b) == {"x": 1}
        assert recv_frame(b) is None

    def test_eof_mid_frame_raises(self, pair):
        a, b = pair
        # header promises 100 bytes; deliver 3 and hang up
        a.sendall(struct.pack(">I", 100) + b"abc")
        a.close()
        with pytest.raises(FleetError, match="mid-frame"):
            recv_frame(b)

    def test_eof_after_header_raises(self, pair):
        a, b = pair
        a.sendall(struct.pack(">I", 10))
        a.close()
        with pytest.raises(FleetError, match="after frame header"):
            recv_frame(b)

    def test_oversize_announcement_rejected_without_alloc(self, pair):
        a, b = pair
        a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(FleetError, match="protocol bound"):
            recv_frame(b)

    def test_oversize_send_rejected(self, pair):
        a, _ = pair
        with pytest.raises(FleetError, match="protocol bound"):
            send_frame(a, {"blob": "x" * (MAX_FRAME_BYTES + 1)})

    def test_undecodable_payload_raises(self, pair):
        a, b = pair
        payload = b"\xff\xfe not json"
        a.sendall(struct.pack(">I", len(payload)) + payload)
        with pytest.raises(FleetError, match="undecodable"):
            recv_frame(b)

    def test_non_object_payload_raises(self, pair):
        a, b = pair
        payload = b"[1, 2, 3]"
        a.sendall(struct.pack(">I", len(payload)) + payload)
        with pytest.raises(FleetError, match="JSON object"):
            recv_frame(b)

    def test_large_frame_crosses_recv_chunks(self, pair):
        a, b = pair
        message = {"blob": "y" * 300_000}
        got = {}
        # socketpair buffers are finite: send from a thread while reading
        t = threading.Thread(target=lambda: got.update(recv_frame(b)))
        t.start()
        send_frame(a, message)
        t.join(timeout=10)
        assert got == message


class TestQueryRoundTrip:
    @pytest.mark.parametrize(
        "condition",
        [
            Condition("date", 1, lo=2, hi=9),
            Condition("store", 2, text_values=("Rome", "Oslo")),
            Condition("item", 0, codes=(3, 1, 4)),
        ],
    )
    def test_each_condition_form(self, condition):
        query = Query(
            conditions=(condition,),
            measures=("sales_price",),
            agg="sum",
        )
        back = query_from_json(query_to_json(query))
        assert back == query
        assert back.query_id == query.query_id

    def test_grouped_query_with_id(self):
        query = Query(
            conditions=(Condition("date", 1, lo=0, hi=4),),
            measures=("sales_price",),
            agg="avg",
            group_by=(("store", 1), ("date", 0)),
            query_id=4242,
        )
        back = query_from_json(query_to_json(query))
        assert back == query
        assert back.query_id == 4242

    def test_malformed_wire_query_fails_model_validation(self):
        data = query_to_json(
            Query(conditions=(Condition("date", 1, lo=0, hi=2),), measures=("v",))
        )
        # two condition forms at once must be rejected at the boundary
        data["conditions"][0]["codes"] = [1, 2]
        with pytest.raises(Exception):
            query_from_json(data)


class TestRecordRoundTrip:
    def test_all_fields_preserved(self):
        record = QueryRecord(
            query_id=17,
            query_class="mid",
            target="Q_G2",
            submit_time=1.25,
            finish_time=1.75,
            deadline=1.9,
            estimated_time=0.4,
            measured_time=0.45,
            translated=True,
            answer=123.5,
        )
        assert record_from_json(record_to_json(record)) == record

    def test_none_answer_preserved(self):
        record = QueryRecord(
            query_id=1,
            query_class="small",
            target="Q_CPU",
            submit_time=0.0,
            finish_time=0.1,
            deadline=0.5,
            estimated_time=0.05,
            measured_time=0.06,
            translated=False,
            answer=None,
        )
        assert record_from_json(record_to_json(record)).answer is None
