"""Consistent-hash ring: determinism, balance, failover, affinity keys."""

from collections import Counter

import pytest

from repro.errors import FleetError
from repro.fleet.ring import HashRing, affinity_key
from repro.query.model import Condition, Query


def keys(n):
    return [f"key-{i}" for i in range(n)]


class TestHashRing:
    def test_empty_or_degenerate_rings_rejected(self):
        with pytest.raises(FleetError):
            HashRing([])
        with pytest.raises(FleetError):
            HashRing([0, 1], vnodes=0)

    def test_routing_is_deterministic_across_instances(self):
        a = HashRing(range(4))
        b = HashRing(range(4))
        assert [a.route(k) for k in keys(200)] == [b.route(k) for k in keys(200)]

    def test_every_key_lands_on_a_ring_shard(self):
        ring = HashRing([3, 1, 5])
        assert {ring.route(k) for k in keys(300)} <= {1, 3, 5}

    def test_vnodes_spread_load_across_shards(self):
        ring = HashRing(range(4))
        counts = Counter(ring.route(k) for k in keys(2000))
        assert set(counts) == {0, 1, 2, 3}
        # 64 vnodes/shard keeps the spread workable: no shard starves
        assert min(counts.values()) > 2000 * 0.10

    def test_failover_moves_only_the_dead_shards_keys(self):
        ring = HashRing(range(4))
        before = {k: ring.route(k) for k in keys(500)}
        alive = (0, 1, 3)
        for key, owner in before.items():
            after = ring.route(key, alive=alive)
            if owner != 2:
                assert after == owner, "healthy shard's key moved on failover"
            else:
                assert after in alive

    def test_alive_must_be_subset_of_ring(self):
        ring = HashRing(range(2))
        with pytest.raises(FleetError, match="subset"):
            ring.route("k", alive=(0, 7))
        with pytest.raises(FleetError, match="live shard"):
            ring.route("k", alive=())


class TestAffinityKey:
    def q(self, conditions, **kw):
        kw.setdefault("measures", ("sales_price",))
        return Query(conditions=conditions, **kw)

    def test_id_independent(self):
        c = (Condition("date", 1, lo=0, hi=4),)
        assert affinity_key(self.q(c, query_id=1)) == affinity_key(
            self.q(c, query_id=99)
        )

    def test_condition_order_independent(self):
        a = (Condition("date", 1, lo=0, hi=4), Condition("store", 2, lo=1, hi=3))
        b = tuple(reversed(a))
        assert affinity_key(self.q(a)) == affinity_key(self.q(b))

    def test_shape_changes_change_the_key(self):
        base = self.q((Condition("date", 1, lo=0, hi=4),))
        assert affinity_key(base) != affinity_key(
            self.q((Condition("date", 1, lo=0, hi=5),))
        )
        assert affinity_key(base) != affinity_key(
            self.q((Condition("date", 1, lo=0, hi=4),), agg="avg")
        )
        assert affinity_key(base) != affinity_key(
            self.q((Condition("date", 1, lo=0, hi=4),), group_by=(("store", 1),))
        )

    def test_text_and_code_conditions_keyed(self):
        t = self.q((Condition("store", 2, text_values=("Rome",)),))
        c = self.q((Condition("store", 2, codes=(7,)),))
        assert affinity_key(t) != affinity_key(c)
        ring = HashRing(range(4))
        assert ring.route_query(t) == ring.route_query(t)
