"""The eighth invariant family, on synthetic fleet reports.

No worker processes here: reports are built in-process with hand-fed
registries, so each reconciliation can be broken surgically and the
checker proven to catch exactly that break.
"""

from dataclasses import replace

import pytest

from repro.errors import InvariantViolation
from repro.fleet.fleet import FleetReport, ShardReport
from repro.metrics import MetricsRegistry, merge_snapshots
from repro.sim import (
    assert_fleet_valid,
    seed_fleet_violation,
    validate_fleet,
)
from repro.sim.metrics import QueryRecord
from repro.sim.validate import SEEDABLE_FLEET_VIOLATIONS


def record(query_id, target="Q_CPU"):
    return QueryRecord(
        query_id=query_id,
        query_class="small",
        target=target,
        submit_time=0.0,
        finish_time=0.01,
        deadline=0.5,
        estimated_time=0.005,
        measured_time=0.01,
        translated=False,
        answer=1.0,
    )


def shard_report(shard_id, n_records, cache_hits=0, target="Q_CPU"):
    """A shard whose snapshot exactly matches its records, as a real
    worker's does after a drained run."""
    registry = MetricsRegistry()
    submitted = registry.counter("repro_queries_submitted_total", "")
    completed = registry.counter(
        "repro_queries_completed_total", "", labels=("target",)
    )
    latency = registry.histogram(
        "repro_query_latency_seconds", "", labels=("target",)
    )
    records = []
    for i in range(n_records):
        submitted.inc()
        completed.inc(target=target)
        latency.observe(0.01, target=target)
        records.append(record(query_id=shard_id * 1000 + i, target=target))
    hits = tuple(
        record(query_id=shard_id * 1000 + 500 + i, target="ROLLUP_CACHE")
        for i in range(cache_hits)
    )
    return ShardReport(
        shard_id=shard_id,
        records=tuple(records),
        cache_hits=hits,
        rejected=0,
        errors=0,
        elapsed=1.0,
        snapshot=registry.collect(1.0),
        validation="ok (synthetic)",
    )


@pytest.fixture
def healthy():
    shards = (shard_report(0, 3), shard_report(1, 5, cache_hits=2))
    return FleetReport(
        shards=shards,
        crashed=(),
        routed={0: 3, 1: 7},  # shard 1: 5 scheduler-offered + 2 cache hits
        failed={0: 0, 1: 0},
        merged=merge_snapshots([s.snapshot for s in shards]),
    )


class TestValidateFleet:
    def test_healthy_fleet_passes(self, healthy):
        result = validate_fleet(healthy)
        assert result.ok, result.summary()
        assert result.checked == ("fleet",)
        assert assert_fleet_valid(healthy) is healthy

    @pytest.mark.parametrize("kind", SEEDABLE_FLEET_VIOLATIONS)
    def test_each_seeded_violation_caught(self, healthy, kind):
        corrupted = seed_fleet_violation(healthy, kind)
        result = validate_fleet(corrupted)
        assert not result.ok, f"seeded {kind} violation slipped through"
        assert all(v.invariant == "fleet" for v in result.violations)
        with pytest.raises(InvariantViolation):
            assert_fleet_valid(corrupted)

    def test_unknown_seed_kind_rejected(self, healthy):
        with pytest.raises(InvariantViolation, match="unknown violation"):
            seed_fleet_violation(healthy, "no-such-kind")

    def test_live_and_crashed_overlap_flagged(self, healthy):
        result = validate_fleet(replace(healthy, crashed=(0,)))
        assert any("both live and crashed" in v.message for v in result.violations)

    def test_failed_requests_relax_only_the_routing_check(self, healthy):
        # shard 1 lost a request in transit: routed 8, received 7
        bad_books = replace(
            healthy, routed={0: 3, 1: 8}, failed={0: 0, 1: 1}
        )
        assert validate_fleet(bad_books).ok
        # ...but with failed == 0 the same mismatch is a violation
        strict = replace(healthy, routed={0: 3, 1: 8})
        result = validate_fleet(strict)
        assert any("front door routed" in v.message for v in result.violations)

    def test_failing_local_audit_flagged(self, healthy):
        tainted = replace(
            healthy,
            shards=(
                replace(healthy.shards[0], validation="conservation: 1 lost job"),
            )
            + healthy.shards[1:],
        )
        result = validate_fleet(tainted)
        assert any("local audit failed" in v.message for v in result.violations)

    def test_crashed_shard_contributes_only_routing_books(self, healthy):
        # shard 1 crashed before shutdown: its report is gone, its routed
        # count remains — a partial fleet must still reconcile
        partial = FleetReport(
            shards=healthy.shards[:1],
            crashed=(1,),
            routed=healthy.routed,
            failed={0: 0, 1: 4},
            merged=merge_snapshots([healthy.shards[0].snapshot]),
        )
        assert validate_fleet(partial).ok

    def test_merged_histogram_undercount_flagged(self, healthy):
        # drop one latency observation from the merged view only
        merged = healthy.merged
        fam = merged.family("repro_query_latency_seconds")
        (key,) = [k for k, _ in fam.items() if k == ("Q_CPU",)]
        hist = fam.samples[key]
        first_full = next(i for i, c in enumerate(hist.counts) if c > 0)
        smaller = replace(
            hist,
            count=hist.count - 1,
            counts=tuple(
                c - 1 if i == first_full else c
                for i, c in enumerate(hist.counts)
            ),
        )
        broken = replace(
            merged,
            families=tuple(
                replace(f, samples={**f.samples, key: smaller})
                if f.name == "repro_query_latency_seconds"
                else f
                for f in merged.families
            ),
        )
        result = validate_fleet(replace(healthy, merged=broken))
        assert any(
            "repro_query_latency_seconds" == v.queue for v in result.violations
        )
