"""The shard request handler driven in-process (no sockets, no spawn).

``_ShardServer.handle`` is a pure request->response function once the
engine exists, so everything except the actual process/spawn machinery
is testable at function-call speed against a tiny real world.
"""

import pytest

from repro.fleet.protocol import query_from_json, query_to_json, record_from_json
from repro.fleet.worker import ShardSpec, _ShardServer, build_shard_engine
from repro.query.model import Condition, Query


def tiny_spec(**overrides):
    defaults = dict(shard_id=7, rows=600, cpu_threads=1, translation_workers=1)
    defaults.update(overrides)
    return ShardSpec(**defaults)


def small_query(hi=3, agg="sum"):
    return Query(
        conditions=(Condition("date", 1, lo=0, hi=hi),),
        measures=("sales_price",),
        agg=agg,
    )


@pytest.fixture(scope="module")
def server():
    srv = _ShardServer(tiny_spec())
    srv.engine.start()
    yield srv
    if not srv._drained:
        srv.engine.stop(finish_queued=False)


@pytest.mark.wallclock
class TestShardHandlers:
    def test_build_is_deterministic_in_the_spec(self):
        spec = tiny_spec()
        engine_a, _, _ = build_shard_engine(spec)
        engine_b, _, _ = build_shard_engine(spec)
        query = small_query()
        with engine_a, engine_b:
            a = engine_a.submit(query, "small")
            b = engine_b.submit(query_from_json(query_to_json(query)), "small")
            assert a.ticket.wait(timeout=30) and b.ticket.wait(timeout=30)
        assert a.ticket.record.answer == b.ticket.record.answer

    def test_ping_reports_identity_and_state(self, server):
        response = server.handle({"kind": "ping"})
        assert response["ok"] and response["shard_id"] == 7
        assert response["drained"] is False

    def test_unknown_kind_is_an_error_response(self, server):
        response = server.handle({"kind": "frobnicate"})
        assert not response["ok"]
        assert "frobnicate" in response["error"]

    def test_handler_exception_becomes_error_response(self, server):
        response = server.handle({"kind": "query"})  # no "query" field
        assert not response["ok"]
        assert "KeyError" in response["error"]

    def test_query_round_trips_a_record(self, server):
        response = server.handle(
            {
                "kind": "query",
                "query": query_to_json(small_query()),
                "class": "small",
            }
        )
        assert response["ok"] and response["accepted"]
        record = record_from_json(response["record"])
        assert record.query_class == "small"
        assert record.answer is not None

    def test_metrics_snapshot_serialises(self, server):
        response = server.handle({"kind": "metrics"})
        names = {f["name"] for f in response["snapshot"]["families"]}
        assert "repro_queries_submitted_total" in names

    def test_shutdown_drains_audits_and_reports(self):
        srv = _ShardServer(tiny_spec(shard_id=3))
        srv.engine.start()
        for hi in (2, 3, 4):
            assert srv.handle(
                {
                    "kind": "query",
                    "query": query_to_json(small_query(hi=hi)),
                    "class": "small",
                }
            )["accepted"]
        response = srv.handle({"kind": "shutdown", "drain": True})
        assert response["ok"]
        assert response["drain_error"] is None
        assert len(response["records"]) == 3
        assert response["validation"].startswith("ok")
        # idempotent: a second shutdown does not re-drain or change books
        again = srv.handle({"kind": "shutdown", "drain": True})
        assert len(again["records"]) == 3
