"""Unit tests for GPU-side cube construction."""

import numpy as np
import pytest

from repro.errors import CubeError, DeviceError
from repro.gpu.cubebuild import build_cube_on_device
from repro.gpu.device import SimulatedGPU, TableDescriptor
from repro.olap.cube import OLAPCube
from repro.units import GB, MB


@pytest.fixture()
def device(fact_table):
    dev = SimulatedGPU(global_memory_bytes=GB)
    dev.load_table(fact_table)
    return dev


class TestCorrectness:
    @pytest.mark.parametrize("n_sm", [1, 4, 14])
    def test_matches_host_build(self, device, fact_table, n_sm):
        result = build_cube_on_device(device, "quantity", [1, 1, 1], n_sm=n_sm)
        direct = OLAPCube.from_fact_table(fact_table, "quantity", resolutions=[1, 1, 1])
        assert np.allclose(result.cube.component("sum"), direct.component("sum"))
        assert np.array_equal(
            result.cube.component("count"), direct.component("count")
        )

    def test_mixed_resolutions(self, device, fact_table):
        result = build_cube_on_device(device, "sales_price", [0, 2, 1])
        direct = OLAPCube.from_fact_table(
            fact_table, "sales_price", resolutions=[0, 2, 1]
        )
        assert np.allclose(result.cube.component("sum"), direct.component("sum"))

    def test_built_cube_answers_queries(self, device, fact_table):
        from repro.olap.subcube import answer_with_cube
        from repro.query.model import Condition, Query

        result = build_cube_on_device(device, "quantity", [1, 1, 1])
        q = Query(conditions=(Condition("date", 1, lo=0, hi=6),), measures=("quantity",))
        assert np.isclose(
            answer_with_cube(result.cube, q), fact_table.execute(q).value()
        )


class TestTimingAndAccounting:
    def test_more_sms_is_faster(self, device):
        t1 = build_cube_on_device(device, "quantity", [1, 1, 1], n_sm=1).simulated_time
        t14 = build_cube_on_device(device, "quantity", [1, 1, 1], n_sm=14).simulated_time
        assert t14 < t1

    def test_reduction_depth_is_log2(self, device):
        result = build_cube_on_device(device, "quantity", [0, 0, 0], n_sm=8)
        assert result.reduction_depth == 3
        single = build_cube_on_device(device, "quantity", [0, 0, 0], n_sm=1)
        assert single.reduction_depth == 0

    def test_bytes_streamed_accounts_columns_and_cube(self, device, fact_table):
        result = build_cube_on_device(device, "quantity", [0, 0, 0])
        dims = fact_table.schema.dimensions
        col_bytes = sum(
            fact_table.column_nbytes(f"{d.name}__{d.level(0).name}") for d in dims
        ) + fact_table.column_nbytes("quantity")
        assert result.bytes_streamed >= col_bytes


class TestGuards:
    def test_analytic_device_rejected(self, small_schema):
        dev = SimulatedGPU(global_memory_bytes=GB)
        dev.load_table(TableDescriptor(schema=small_schema, num_rows=1000))
        with pytest.raises(DeviceError, match="materialised"):
            build_cube_on_device(dev, "quantity", [0, 0, 0])

    def test_cell_budget(self, device):
        with pytest.raises(CubeError, match="budget"):
            build_cube_on_device(device, "quantity", [3, 3, 3], max_cells=1000)

    def test_memory_pressure(self, fact_table):
        dev = SimulatedGPU(global_memory_bytes=4 * MB)
        dev.load_table(fact_table)
        with pytest.raises(DeviceError, match="fit"):
            build_cube_on_device(dev, "quantity", [2, 2, 2])

    def test_resolution_count(self, device):
        with pytest.raises(CubeError):
            build_cube_on_device(device, "quantity", [0, 0])
