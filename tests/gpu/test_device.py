"""Unit tests for the simulated GPU device."""

import numpy as np
import pytest

from repro.errors import DeviceError, TranslationError
from repro.gpu.device import SimulatedGPU, TableDescriptor
from repro.gpu.timing import TESLA_C2070_TIMING
from repro.query.model import Condition, Query, decompose
from repro.units import GB, MB


@pytest.fixture()
def device(fact_table):
    dev = SimulatedGPU(num_sms=14, global_memory_bytes=GB, timing=TESLA_C2070_TIMING)
    dev.load_table(fact_table)
    return dev


@pytest.fixture()
def analytic_device(small_schema):
    dev = SimulatedGPU(num_sms=14, global_memory_bytes=6 * GB)
    dev.load_table(TableDescriptor(schema=small_schema, num_rows=10_000_000))
    return dev


class TestResidency:
    def test_table_too_large(self, small_schema):
        dev = SimulatedGPU(global_memory_bytes=MB)
        with pytest.raises(DeviceError, match="exceeds"):
            dev.load_table(TableDescriptor(schema=small_schema, num_rows=10_000_000))

    def test_descriptor_before_load(self):
        dev = SimulatedGPU()
        with pytest.raises(DeviceError):
            dev.descriptor

    def test_analytic_flag(self, device, analytic_device):
        assert not device.is_analytic
        assert analytic_device.is_analytic

    def test_default_timing_sized_to_table(self, fact_table):
        dev = SimulatedGPU()
        dev.load_table(fact_table)
        t_small = dev.timing.query_time(0.1, 14)
        t_big = dev.timing.query_time(1.0, 14)
        assert t_big > t_small

    def test_invalid_constructor_args(self):
        with pytest.raises(DeviceError):
            SimulatedGPU(num_sms=0)
        with pytest.raises(DeviceError):
            SimulatedGPU(global_memory_bytes=0)

    def test_descriptor_properties(self, small_schema):
        desc = TableDescriptor(schema=small_schema, num_rows=1000)
        assert desc.nbytes == small_schema.table_nbytes(1000)
        assert desc.total_columns == small_schema.total_columns
        with pytest.raises(DeviceError):
            TableDescriptor(schema=small_schema, num_rows=-1)


class TestEstimation:
    def test_estimate_uses_column_fraction(self, device, small_schema):
        q1 = Query(conditions=(Condition("date", 0, lo=0, hi=1),), measures=("quantity",))
        q2 = Query(
            conditions=(
                Condition("date", 0, lo=0, hi=1),
                Condition("store", 1, lo=0, hi=5),
                Condition("item", 2, lo=0, hi=5),
            ),
            measures=("quantity", "sales_price"),
        )
        d1 = decompose(q1, small_schema.hierarchies)
        d2 = decompose(q2, small_schema.hierarchies)
        assert device.estimate_time(d2, 4) > device.estimate_time(d1, 4)

    def test_estimate_matches_published_model(self, device, small_schema):
        q = Query(conditions=(Condition("date", 1, lo=0, hi=3),), measures=("quantity",))
        d = decompose(q, small_schema.hierarchies)
        frac = d.column_fraction(small_schema.total_columns)
        assert np.isclose(
            device.estimate_time(d, 2), TESLA_C2070_TIMING.query_time(frac, 2)
        )

    def test_sm_bounds(self, device, small_schema):
        q = Query(conditions=(), measures=("quantity",))
        d = decompose(q, small_schema.hierarchies)
        with pytest.raises(DeviceError):
            device.estimate_time(d, 15)
        with pytest.raises(DeviceError):
            device.estimate_time(d, 0)


class TestExecution:
    def test_real_answer(self, device, fact_table, small_schema):
        q = Query(
            conditions=(Condition("store", 1, lo=2, hi=9),), measures=("quantity",)
        )
        execution = device.execute_query(q, 4)
        assert execution.kernel is not None
        assert np.isclose(execution.value, fact_table.execute(q).value("quantity"))
        assert execution.simulated_time > 0

    def test_analytic_has_no_answer(self, analytic_device, small_schema):
        q = Query(conditions=(Condition("date", 0, lo=0, hi=2),), measures=("quantity",))
        execution = analytic_device.execute_query(q, 2)
        assert execution.kernel is None
        assert execution.simulated_time > 0
        with pytest.raises(DeviceError):
            execution.value

    def test_untranslated_text_rejected(self, device, small_schema):
        q = Query(
            conditions=(Condition("store", 2, text_values=("x",)),),
            measures=("quantity",),
        )
        with pytest.raises(TranslationError):
            device.execute_query(q, 2)

    def test_column_fraction_recorded(self, device, small_schema):
        q = Query(conditions=(Condition("date", 0, lo=0, hi=1),), measures=("quantity",))
        execution = device.execute_query(q, 1)
        assert np.isclose(execution.column_fraction, 2 / small_schema.total_columns)
