"""Unit tests for the simulated GPU kernels (Lauer et al. pipeline)."""

import numpy as np
import pytest

from repro.errors import DeviceError, TranslationError
from repro.gpu.kernels import run_query_kernel, _shard_bounds
from repro.query.model import Condition, Query, decompose


def _decompose(q, schema):
    return decompose(q, schema.hierarchies)


class TestShardBounds:
    def test_cover_all_rows_without_overlap(self):
        bounds = _shard_bounds(100, 7)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == 100
        for (a, b), (c, d) in zip(bounds, bounds[1:]):
            assert b == c

    def test_more_shards_than_rows(self):
        bounds = _shard_bounds(3, 8)
        total = sum(hi - lo for lo, hi in bounds)
        assert total == 3

    def test_zero_shards_rejected(self):
        with pytest.raises(DeviceError):
            _shard_bounds(10, 0)


class TestKernelCorrectness:
    @pytest.mark.parametrize("n_sm", [1, 2, 4, 14])
    def test_matches_reference_scan(self, fact_table, small_schema, n_sm):
        q = Query(
            conditions=(Condition("date", 1, lo=3, hi=15),),
            measures=("sales_price",),
        )
        d = _decompose(q, small_schema)
        kernel = run_query_kernel(fact_table, d, n_sm)
        reference = fact_table.scan(d)
        assert kernel.result.rows_matched == reference.rows_matched
        assert np.isclose(
            kernel.result.value("sales_price"), reference.value("sales_price")
        )

    @pytest.mark.parametrize("agg", ["sum", "count", "avg", "min", "max"])
    def test_all_aggregates(self, fact_table, small_schema, agg):
        measures = () if agg == "count" else ("quantity",)
        q = Query(
            conditions=(Condition("store", 1, lo=0, hi=20),),
            measures=measures,
            agg=agg,
        )
        d = _decompose(q, small_schema)
        kernel = run_query_kernel(fact_table, d, 4)
        reference = fact_table.scan(d)
        for key in reference.values:
            assert np.isclose(
                kernel.result.values[key], reference.values[key], equal_nan=True
            )

    def test_codes_predicate(self, fact_table, small_schema):
        q = Query(
            conditions=(Condition("item", 2, codes=(1, 5, 8)),),
            measures=("net_profit",),
        )
        d = _decompose(q, small_schema)
        kernel = run_query_kernel(fact_table, d, 3)
        assert np.isclose(
            kernel.result.value("net_profit"), fact_table.scan(d).value("net_profit")
        )

    def test_empty_selection(self, fact_table, small_schema):
        card = small_schema.dimension("date").cardinality(3)
        q = Query(
            conditions=(Condition("date", 3, lo=card - 1, hi=card),),
            measures=("quantity",),
            agg="min",
        )
        d = _decompose(q, small_schema)
        kernel = run_query_kernel(fact_table, d, 4)
        reference = fact_table.scan(d)
        assert kernel.result.rows_matched == reference.rows_matched
        if reference.rows_matched == 0:
            assert np.isnan(kernel.result.value("quantity"))

    def test_untranslated_text_rejected(self, fact_table, small_schema):
        q = Query(
            conditions=(Condition("store", 2, text_values=("x",)),),
            measures=("quantity",),
        )
        d = _decompose(q, small_schema)
        with pytest.raises(TranslationError):
            run_query_kernel(fact_table, d, 2)


class TestPartials:
    def test_shard_count(self, fact_table, small_schema):
        q = Query(conditions=(), measures=("quantity",))
        d = _decompose(q, small_schema)
        kernel = run_query_kernel(fact_table, d, 6)
        assert kernel.num_shards == 6

    def test_partials_cover_all_rows(self, fact_table, small_schema):
        q = Query(conditions=(), measures=("quantity",))
        d = _decompose(q, small_schema)
        kernel = run_query_kernel(fact_table, d, 5)
        assert sum(p.rows_scanned for p in kernel.partials) == len(fact_table)

    def test_partial_sums_reduce_to_total(self, fact_table, small_schema):
        q = Query(conditions=(), measures=("quantity",))
        d = _decompose(q, small_schema)
        kernel = run_query_kernel(fact_table, d, 4)
        total = sum(p.sums["quantity"] for p in kernel.partials)
        assert np.isclose(total, kernel.result.value("quantity"))

    def test_bytes_read_full_columns(self, fact_table, small_schema):
        q = Query(
            conditions=(Condition("date", 0, lo=0, hi=1),), measures=("quantity",)
        )
        d = _decompose(q, small_schema)
        kernel = run_query_kernel(fact_table, d, 2)
        expected = fact_table.column_nbytes("date__year") + fact_table.column_nbytes(
            "quantity"
        )
        assert kernel.result.bytes_read == expected
