"""Unit tests for SM partition schemes."""

import pytest

from repro.errors import PartitionError
from repro.gpu.device import SimulatedGPU
from repro.gpu.partitioning import (
    GPUPartition,
    PartitionScheme,
    monolithic_scheme,
    paper_partition_scheme,
    uniform_scheme,
)


class TestGPUPartition:
    def test_name(self):
        assert GPUPartition(index=0, n_sm=1).name == "G1"
        assert GPUPartition(index=5, n_sm=4).name == "G6"

    def test_validation(self):
        with pytest.raises(PartitionError):
            GPUPartition(index=-1, n_sm=1)
        with pytest.raises(PartitionError):
            GPUPartition(index=0, n_sm=0)


class TestPaperScheme:
    def test_composition(self):
        scheme = paper_partition_scheme()
        assert scheme.sm_counts == (1, 1, 2, 2, 4, 4)
        assert scheme.total_sms == 14
        assert len(scheme) == 6

    def test_fits_c2070(self):
        scheme = paper_partition_scheme()
        scheme.validate_for(SimulatedGPU(num_sms=14))

    def test_slowest_first_order(self):
        scheme = paper_partition_scheme()
        counts = [p.n_sm for p in scheme.slowest_first()]
        assert counts == sorted(counts)

    def test_fastest(self):
        assert paper_partition_scheme().fastest().n_sm == 4

    def test_distinct_sm_counts(self):
        assert paper_partition_scheme().distinct_sm_counts == (1, 2, 4)


class TestOtherSchemes:
    def test_monolithic(self):
        scheme = monolithic_scheme(14)
        assert scheme.sm_counts == (14,)

    def test_uniform(self):
        scheme = uniform_scheme(7, 2)
        assert scheme.sm_counts == (2,) * 7

    def test_uniform_validation(self):
        with pytest.raises(PartitionError):
            uniform_scheme(0, 2)

    def test_unsorted_input_is_sorted(self):
        scheme = PartitionScheme([4, 1, 2])
        assert scheme.sm_counts == (1, 2, 4)

    def test_oversubscription_rejected(self):
        scheme = PartitionScheme([8, 8])
        with pytest.raises(PartitionError, match="16 SMs"):
            scheme.validate_for(SimulatedGPU(num_sms=14))

    def test_empty_scheme_rejected(self):
        with pytest.raises(PartitionError):
            PartitionScheme([])

    def test_indexing(self):
        scheme = paper_partition_scheme()
        assert scheme[0].n_sm == 1
        assert scheme[5].n_sm == 4
