"""Unit tests for the GPU timing models (eq. 13-15)."""

import numpy as np
import pytest

from repro.errors import DeviceError
from repro.gpu.timing import (
    BandwidthTiming,
    LinearColumnTiming,
    OverheadTiming,
    TESLA_C2070_TIMING,
)


class TestPublishedCoefficients:
    @pytest.mark.parametrize(
        "n_sm,slope,intercept",
        [(1, 0.0030, 0.0258), (2, 0.0015, 0.0130), (4, 0.0008, 0.0065), (14, 0.00021, 0.0020)],
    )
    def test_eq14_eq15(self, n_sm, slope, intercept):
        assert np.isclose(
            TESLA_C2070_TIMING.query_time(0.5, n_sm), slope * 0.5 + intercept
        )

    def test_full_scan_values(self):
        # eq. 14 at C/C_tot = 1 for the 1-SM partition: 28.8 ms
        assert np.isclose(TESLA_C2070_TIMING.query_time(1.0, 1), 0.0288)

    def test_more_sms_is_faster(self):
        times = [TESLA_C2070_TIMING.query_time(0.3, k) for k in (1, 2, 4, 14)]
        assert times == sorted(times, reverse=True)

    def test_more_columns_is_slower(self):
        t_few = TESLA_C2070_TIMING.query_time(0.1, 2)
        t_many = TESLA_C2070_TIMING.query_time(0.9, 2)
        assert t_many > t_few


class TestLinearColumnTiming:
    def test_interpolation_for_unmeasured_sm(self):
        model = LinearColumnTiming({2: (0.002, 0.010)})
        # 4 SMs: inverse scaling halves both coefficients
        assert np.isclose(model.query_time(1.0, 4), (0.002 + 0.010) / 2)

    def test_measured_counts(self):
        assert TESLA_C2070_TIMING.measured_sm_counts == (1, 2, 4, 14)

    def test_empty_coefficients_rejected(self):
        with pytest.raises(DeviceError):
            LinearColumnTiming({})

    def test_negative_coefficients_rejected(self):
        with pytest.raises(DeviceError):
            LinearColumnTiming({1: (-0.1, 0.0)})

    def test_fraction_bounds(self):
        with pytest.raises(DeviceError):
            TESLA_C2070_TIMING.query_time(0.0, 1)
        with pytest.raises(DeviceError):
            TESLA_C2070_TIMING.query_time(1.5, 1)

    def test_sm_bounds(self):
        with pytest.raises(DeviceError):
            TESLA_C2070_TIMING.query_time(0.5, 0)


class TestBandwidthTiming:
    def test_scaling_with_sms(self):
        model = BandwidthTiming(table_nbytes=4 * 2**30, launch_overhead=0.0)
        t1 = model.query_time(0.5, 1)
        t4 = model.query_time(0.5, 4)
        assert np.isclose(t1 / t4, 4.0)

    def test_overhead_added(self):
        base = BandwidthTiming(table_nbytes=1024, launch_overhead=0.0)
        with_oh = BandwidthTiming(table_nbytes=1024, launch_overhead=0.5)
        assert np.isclose(
            with_oh.query_time(1.0, 1) - base.query_time(1.0, 1), 0.5
        )

    def test_validation(self):
        with pytest.raises(DeviceError):
            BandwidthTiming(table_nbytes=0)
        with pytest.raises(DeviceError):
            BandwidthTiming(table_nbytes=1, per_sm_bandwidth=0)
        with pytest.raises(DeviceError):
            BandwidthTiming(table_nbytes=1, launch_overhead=-1)


class TestOverheadTiming:
    def test_constant_shift(self):
        wrapped = OverheadTiming(base=TESLA_C2070_TIMING, overhead=0.072)
        assert np.isclose(
            wrapped.query_time(0.25, 2),
            TESLA_C2070_TIMING.query_time(0.25, 2) + 0.072,
        )

    def test_negative_overhead_rejected(self):
        with pytest.raises(DeviceError):
            OverheadTiming(base=TESLA_C2070_TIMING, overhead=-0.1)
