"""End-to-end integration tests across all subsystems.

The central correctness claim of a hybrid OLAP system: *any* query gets
the same answer whichever resource the scheduler picks.  These tests
drive queries through every path — cube pyramid (CPU), simulated GPU
kernels, translation — and cross-check all answers against the
brute-force reference scan.
"""

import numpy as np
import pytest

from repro.gpu.device import SimulatedGPU
from repro.gpu.timing import TESLA_C2070_TIMING
from repro.olap.parallel import ParallelAggregator
from repro.query.model import Condition, Query
from repro.query.parser import parse_query
from repro.units import GB


@pytest.fixture(scope="module")
def device(fact_table):
    dev = SimulatedGPU(global_memory_bytes=GB, timing=TESLA_C2070_TIMING)
    dev.load_table(fact_table)
    return dev


def queries_for(small_schema, dataset):
    """A battery of queries exercising ranges, codes, text, aggregates."""
    d = [dim.name for dim in small_schema.dimensions]
    city_vocab = dataset.vocabularies["store__city"]
    return [
        Query(conditions=(), measures=("sales_price",), agg="sum"),
        Query(conditions=(Condition(d[0], 1, lo=2, hi=9),), measures=("quantity",)),
        Query(
            conditions=(
                Condition(d[0], 0, lo=0, hi=2),
                Condition(d[1], 2, lo=5, hi=60),
            ),
            measures=("sales_price",),
            agg="avg",
        ),
        Query(
            conditions=(Condition(d[2], 1, codes=(0, 3, 7)),),
            measures=("net_profit",),
            agg="sum",
        ),
        Query(
            conditions=(Condition(d[1], 2, text_values=(city_vocab[4], city_vocab[9])),),
            measures=("quantity",),
            agg="sum",
        ),
        Query(conditions=(Condition(d[0], 2, lo=10, hi=50),), measures=(), agg="count"),
        Query(
            conditions=(Condition(d[1], 1, lo=0, hi=12),),
            measures=("sales_price",),
            agg="max",
        ),
    ]


class TestAnswerEquivalence:
    def test_cube_equals_table_equals_gpu(
        self, fact_table, pyramid, device, translator, small_schema, dataset
    ):
        for q in queries_for(small_schema, dataset):
            resolved = translator.translate(q).query if q.needs_translation else q
            reference = fact_table.execute(resolved).value()

            # GPU path (every partition size)
            for n_sm in (1, 2, 4, 14):
                gpu = device.execute_query(resolved, n_sm).value
                assert np.isclose(gpu, reference, equal_nan=True), (q, n_sm)

            # CPU cube path, when the pyramid reaches the resolution and
            # aggregates the right measure
            if (
                resolved.required_resolution <= 2
                and resolved.agg in ("sum", "count", "avg")
                and (resolved.agg == "count" or resolved.measures == ("sales_price",))
            ):
                cpu = pyramid.answer(resolved)
                assert np.isclose(cpu, reference, equal_nan=True), q

    def test_parallel_aggregator_agrees(self, pyramid, fact_table, small_schema):
        d0 = small_schema.dimensions[0].name
        q = Query(conditions=(Condition(d0, 1, lo=0, hi=10),), measures=("sales_price",))
        reference = fact_table.execute(q).value()
        for threads in (1, 2, 8):
            level = pyramid.select_level(q)
            result = ParallelAggregator(threads).aggregate(level.cube, q)
            assert np.isclose(result.value, reference)


class TestParserToExecution:
    def test_parsed_query_through_both_paths(
        self, fact_table, pyramid, device, small_schema
    ):
        q = parse_query(
            "SELECT sum(sales_price) WHERE date.quarter IN [2, 8) AND store.state = 3",
            small_schema.hierarchies,
        )
        reference = fact_table.execute(q).value()
        assert np.isclose(pyramid.answer(q), reference)
        assert np.isclose(device.execute_query(q, 4).value, reference)

    def test_parsed_text_query_via_translation(
        self, fact_table, device, translator, small_schema, dataset
    ):
        city = dataset.vocabularies["store__city"][2].replace("'", r"\'")
        q = parse_query(
            f"SELECT sum(quantity) WHERE store.city = '{city}'",
            small_schema.hierarchies,
        )
        translated = translator.translate(q).query
        reference = fact_table.execute(translated).value()
        assert np.isclose(device.execute_query(translated, 2).value, reference)


class TestCubeBuildConsistency:
    def test_pyramid_base_matches_buildalg_base_cuboid(self, fact_table, small_schema):
        """The pyramid's cube and the array-based algorithm must agree."""
        from repro.olap.buildalgs import array_based_cube
        from repro.olap.cube import OLAPCube

        res = {d.name: 1 for d in small_schema.dimensions}
        full = array_based_cube(fact_table, "quantity", res)
        cube = OLAPCube.from_fact_table(fact_table, "quantity", resolutions=[1, 1, 1])
        base = full[frozenset(res)]
        sums = cube.component("sum")
        names = sorted(res)
        axis_of = {d.name: i for i, d in enumerate(small_schema.dimensions)}
        for coords, value in base.items():
            idx = [0, 0, 0]
            for name, coord in zip(names, coords):
                idx[axis_of[name]] = coord
            assert np.isclose(sums[tuple(idx)], value)
