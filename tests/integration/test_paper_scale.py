"""Behavioural integration tests at paper scale (the analytic plane).

These assert the *mechanisms* behind the Section-IV numbers: which
partition each query class lands on in the step-5 regime, how the
translation pipeline engages, and how the system degrades under load —
the qualitative behaviour the reproduction's quantitative results rest
on.
"""

import pytest

from repro.paper import (
    TABLE3_TEXT_PROB,
    paper_system_config,
    paper_workload,
)
from repro.query.workload import ArrivalProcess
from repro.sim import HybridSystem


@pytest.fixture(scope="module")
def moderate_run():
    """Table-3 system at a comfortably sustainable load (step-5 regime)."""
    config = paper_system_config(threads=8, include_32gb=True)
    workload = paper_workload(include_32gb=True, text_prob=TABLE3_TEXT_PROB, seed=21)
    stream = workload.generate(1000, ArrivalProcess("uniform", rate=120.0))
    report = HybridSystem(config).run(stream)
    by_id = {e.query.query_id: e for e in stream}
    return report, by_id


class TestStep5Routing:
    def test_small_queries_prefer_cpu(self, moderate_run):
        report, by_id = moderate_run
        # text-carrying smalls constrain the customer dimension, which
        # no cube materialises -> GPU by necessity; every OTHER small is
        # ~14x cheaper on the CPU (5.5 ms vs ~78 ms) and stays there
        smalls = [
            r
            for r in report.records
            if r.query_class == "small"
            and not by_id[r.query_id].query.needs_translation
        ]
        on_cpu = sum(1 for r in smalls if r.target == "Q_CPU")
        assert on_cpu / len(smalls) > 0.95

    def test_fine_queries_prefer_gpu(self, moderate_run):
        report, by_id = moderate_run
        fines = [r for r in report.records if r.query_class == "fine"]
        on_gpu = sum(1 for r in fines if r.target.startswith("Q_G"))
        # resolution-3 sweeps cost hundreds of ms on the CPU vs ~80 ms
        # on any GPU partition
        assert on_gpu / len(fines) > 0.9

    def test_mid_queries_prefer_cpu(self, moderate_run):
        # mids (~500 MB sweeps) cost ~22 ms on the 8T CPU vs ~78 ms on
        # the fastest GPU class: step 5 keeps them on the CPU
        report, by_id = moderate_run
        mids = [
            r
            for r in report.records
            if r.query_class == "mid"
            and not by_id[r.query_id].query.needs_translation
        ]
        on_cpu = sum(1 for r in mids if r.target == "Q_CPU")
        assert on_cpu / len(mids) > 0.9

    def test_text_queries_translate_and_run_on_gpu(self, moderate_run):
        report, by_id = moderate_run
        text_records = [
            r for r in report.records if by_id[r.query_id].query.needs_translation
        ]
        assert text_records
        assert all(r.translated for r in text_records)
        assert all(r.target.startswith("Q_G") for r in text_records)

    def test_non_text_queries_skip_translation(self, moderate_run):
        report, by_id = moderate_run
        plain = [
            r for r in report.records if not by_id[r.query_id].query.needs_translation
        ]
        assert all(not r.translated for r in plain)

    def test_slow_partitions_fill_first(self, moderate_run):
        report, _ = moderate_run
        by_target = report.by_target()
        g1 = by_target.get("Q_G1", 0) + by_target.get("Q_G2", 0)
        g3 = by_target.get("Q_G5", 0) + by_target.get("Q_G6", 0)
        # slowest-first: the 1-SM queues absorb at least as much as the
        # 4-SM queues at this load
        assert g1 >= g3

    def test_deadlines_met_at_sustainable_load(self, moderate_run):
        report, _ = moderate_run
        assert report.deadline_hit_rate > 0.95


class TestDegradation:
    @pytest.mark.parametrize("rate,min_hits", [(100.0, 0.95), (300.0, 0.0)])
    def test_hit_rate_monotone_in_load(self, rate, min_hits):
        config = paper_system_config(threads=8, include_32gb=True)
        workload = paper_workload(include_32gb=True, seed=22)
        stream = workload.generate(600, ArrivalProcess("uniform", rate=rate))
        report = HybridSystem(config).run(stream)
        assert report.deadline_hit_rate >= min_hits
        if rate > 250:
            # far beyond capacity most deadlines are missed
            assert report.deadline_hit_rate < 0.6

    def test_throughput_saturates(self):
        config = paper_system_config(threads=8, include_32gb=True)
        workload = paper_workload(include_32gb=True, seed=23)
        rates = {}
        for offered in (100.0, 400.0):
            stream = workload.generate(600, ArrivalProcess("uniform", rate=offered))
            rates[offered] = HybridSystem(config).run(stream).queries_per_second
        # quadrupling the offered load does not quadruple throughput:
        # the system is capacity-bound
        assert rates[400.0] < 3.0 * rates[100.0]

    def test_more_threads_more_capacity(self):
        workload = paper_workload(include_32gb=True, seed=24)
        stream = workload.generate(800)
        rates = {}
        for threads in (1, 8):
            config = paper_system_config(threads=threads, include_32gb=True)
            rates[threads] = HybridSystem(config).run(stream).queries_per_second
        assert rates[8] > rates[1]


class TestTranslationPipeline:
    def test_all_text_saturates_translation_queue(self):
        from repro.paper import gpu_only_config

        config = gpu_only_config()
        workload = paper_workload(include_32gb=True, text_prob=1.0, seed=25)
        report = HybridSystem(config).run(workload.generate(800))
        # one text parameter per query at 15.6 ms each: the translation
        # partition becomes the pipeline bottleneck (the 7% mechanism)
        assert report.utilisations["Q_TRANS"] > 0.95

    def test_no_text_leaves_translation_idle(self):
        from repro.paper import gpu_only_config

        config = gpu_only_config()
        workload = paper_workload(include_32gb=True, text_prob=0.0, seed=25)
        report = HybridSystem(config).run(workload.generate(400))
        assert report.utilisations["Q_TRANS"] == 0.0
        assert report.translated_count == 0
