"""Prometheus text rendering (golden) and the HTTP scrape endpoint."""

import math
import urllib.error
import urllib.request

import pytest

from repro.metrics import (
    CONTENT_TYPE,
    MetricsExporter,
    MetricsRegistry,
    render_prometheus,
)

pytestmark = pytest.mark.wallclock  # the HTTP tests hit a real socket


def _example_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter(
        "repro_queries_total", "Queries handled.", labels=("target",)
    ).inc(3, target="Q_CPU")
    reg.gauge("repro_in_flight", "In-flight queries.").set(2)
    hist = reg.histogram("repro_latency_seconds", "Latency.", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 5.0):
        hist.observe(value)
    return reg


GOLDEN = """\
# HELP repro_in_flight In-flight queries.
# TYPE repro_in_flight gauge
repro_in_flight 2
# HELP repro_latency_seconds Latency.
# TYPE repro_latency_seconds histogram
repro_latency_seconds_bucket{le="0.1"} 1
repro_latency_seconds_bucket{le="1"} 2
repro_latency_seconds_bucket{le="+Inf"} 3
repro_latency_seconds_sum 5.55
repro_latency_seconds_count 3
# HELP repro_queries_total Queries handled.
# TYPE repro_queries_total counter
repro_queries_total{target="Q_CPU"} 3
"""


class TestRendering:
    def test_golden_exposition(self):
        assert render_prometheus(_example_registry().collect()) == GOLDEN

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry().collect()) == ""

    def test_escaping(self):
        reg = MetricsRegistry()
        reg.counter(
            "repro_test_total", "multi\nline \\ help", labels=("name",)
        ).inc(name='quo"te\\')
        text = render_prometheus(reg.collect())
        assert '# HELP repro_test_total multi\\nline \\\\ help' in text
        assert 'repro_test_total{name="quo\\"te\\\\"} 1' in text

    def test_special_values(self):
        reg = MetricsRegistry()
        reg.gauge("repro_inf").set(math.inf)
        reg.gauge("repro_nan").set(math.nan)
        text = render_prometheus(reg.collect())
        assert "repro_inf +Inf" in text
        assert "repro_nan NaN" in text


class TestHttpEndpoint:
    def test_scrape_round_trip(self):
        with MetricsExporter(_example_registry(), port=0) as exporter:
            with urllib.request.urlopen(exporter.url, timeout=10.0) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"] == CONTENT_TYPE
                body = resp.read().decode("utf-8")
        assert body == GOLDEN

    def test_root_path_serves_metrics_too(self):
        with MetricsExporter(_example_registry(), port=0) as exporter:
            url = f"http://{exporter.host}:{exporter.port}/"
            with urllib.request.urlopen(url, timeout=10.0) as resp:
                assert "repro_queries_total" in resp.read().decode("utf-8")

    def test_unknown_path_is_404(self):
        with MetricsExporter(_example_registry(), port=0) as exporter:
            url = f"http://{exporter.host}:{exporter.port}/nope"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(url, timeout=10.0)
            assert excinfo.value.code == 404

    def test_scrape_observes_live_increments(self):
        reg = MetricsRegistry()
        counter = reg.counter("repro_live_total")
        with MetricsExporter(reg, port=0) as exporter:
            counter.inc(7)
            with urllib.request.urlopen(exporter.url, timeout=10.0) as resp:
                assert "repro_live_total 7" in resp.read().decode("utf-8")
