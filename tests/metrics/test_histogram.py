"""Bucket boundaries, quantile exactness, and snapshot algebra."""

import math

import pytest

from repro.errors import MetricsError
from repro.metrics import (
    CORRECTION_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    HistogramSnapshot,
    LatencyHistogram,
    log_buckets,
)


class TestLogBuckets:
    def test_decade_edges_are_exact(self):
        assert log_buckets(0.001, 1.0, per_decade=1) == (0.001, 0.01, 0.1, 1.0)

    def test_per_decade_subdivision(self):
        bounds = log_buckets(0.1, 10.0, per_decade=2)
        assert len(bounds) == 5
        assert bounds[0] == 0.1 and bounds[-1] == 10.0
        # strictly increasing, log-spaced
        ratios = [b / a for a, b in zip(bounds, bounds[1:])]
        assert all(math.isclose(r, ratios[0], rel_tol=1e-3) for r in ratios)

    def test_default_buckets_span_100us_to_10s(self):
        assert DEFAULT_LATENCY_BUCKETS[0] == 1e-4
        assert DEFAULT_LATENCY_BUCKETS[-1] == 10.0
        assert len(DEFAULT_LATENCY_BUCKETS) == 21

    def test_invalid_ranges_raise(self):
        with pytest.raises(MetricsError):
            log_buckets(0.0, 1.0)
        with pytest.raises(MetricsError):
            log_buckets(1.0, 1.0)
        with pytest.raises(MetricsError):
            log_buckets(0.001, 1.0, per_decade=0)
        with pytest.raises(MetricsError):
            # 3.5 decades is not a whole number of steps at 1/decade
            log_buckets(0.001, 3.16, per_decade=1)

    def test_correction_buckets_signed_and_increasing(self):
        assert 0.0 in CORRECTION_BUCKETS
        assert CORRECTION_BUCKETS[0] == -1.0 and CORRECTION_BUCKETS[-1] == 1.0
        assert all(
            a < b for a, b in zip(CORRECTION_BUCKETS, CORRECTION_BUCKETS[1:])
        )


class TestBucketing:
    def test_le_boundary_lands_in_its_bucket(self):
        hist = LatencyHistogram(bounds=(0.001, 0.01, 0.1))
        hist.observe(0.001)  # exactly on a bound: le-inclusive
        hist.observe(0.0011)  # just above: next bucket
        snap = hist.snapshot()
        assert snap.counts == (1, 1, 0, 0)

    def test_overflow_bucket(self):
        hist = LatencyHistogram(bounds=(0.001, 0.01))
        hist.observe(5.0)
        snap = hist.snapshot()
        assert snap.counts == (0, 0, 1)
        assert snap.quantile_bound(0.5) == math.inf

    def test_validation(self):
        with pytest.raises(MetricsError):
            LatencyHistogram(bounds=())
        with pytest.raises(MetricsError):
            LatencyHistogram(bounds=(0.1, 0.1))
        with pytest.raises(MetricsError):
            LatencyHistogram(bounds=(0.1, math.inf))


class TestQuantiles:
    def test_quantile_is_smallest_covering_bound(self):
        hist = LatencyHistogram(bounds=(1.0, 2.0, 4.0, 8.0))
        for value in [0.5] * 50 + [1.5] * 45 + [3.0] * 5:
            hist.observe(value)
        snap = hist.snapshot()
        assert snap.count == 100
        assert snap.p50 == 1.0  # rank 50 falls in the first bucket
        assert snap.p95 == 2.0  # rank 95 = 50 + 45
        assert snap.p99 == 4.0
        assert snap.quantile_bound(1.0) == 4.0

    def test_empty_histogram_is_nan(self):
        snap = HistogramSnapshot.empty((1.0, 2.0))
        assert math.isnan(snap.p95)
        assert math.isnan(snap.mean)

    def test_quantile_domain(self):
        snap = HistogramSnapshot.empty((1.0,))
        with pytest.raises(MetricsError):
            snap.quantile_bound(1.5)

    def test_mean(self):
        hist = LatencyHistogram(bounds=(10.0,))
        hist.observe(2.0)
        hist.observe(4.0)
        assert hist.snapshot().mean == pytest.approx(3.0)


class TestQuantileRankBoundary:
    """Regression: float noise in ``q * count`` must not shift the rank.

    ``0.07 * 100`` evaluates to ``7.000000000000001`` in binary
    floating point, so a plain ``ceil(q * count)`` reported rank 8 —
    one bucket too high whenever the exact product lands on a bucket
    edge.  The rank now snaps to the nearest integer when the product
    is within float noise of it, restoring Prometheus ``le``
    semantics: the smallest bound whose cumulative count reaches
    ``ceil(exact q x count)``.
    """

    @pytest.mark.parametrize(
        "q, count",
        [(0.07, 100), (0.14, 50), (0.28, 100), (0.55, 100), (0.56, 50)],
    )
    def test_exact_products_snap_to_the_edge_bucket(self, q, count):
        # one observation per bucket: bucket index == rank - 1, so the
        # expected bound is exactly the snapped rank's bucket
        bounds = tuple(float(i) for i in range(1, count + 1))
        hist = LatencyHistogram(bounds=bounds)
        for i in range(1, count + 1):
            hist.observe(float(i))
        snap = hist.snapshot()
        exact_rank = round(q * count)  # all fixture products are exact
        assert math.ceil(q * count) == exact_rank + 1  # the float trap
        assert snap.quantile_bound(q) == float(exact_rank)

    def test_products_below_the_edge_still_ceil_up(self):
        # 0.071 * 100 = 7.1: genuinely between ranks, ceil applies
        bounds = tuple(float(i) for i in range(1, 101))
        hist = LatencyHistogram(bounds=bounds)
        for i in range(1, 101):
            hist.observe(float(i))
        assert hist.snapshot().quantile_bound(0.071) == 8.0

    def test_tiny_quantile_clamps_to_rank_one(self):
        hist = LatencyHistogram(bounds=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(1.5)
        assert hist.snapshot().quantile_bound(1e-9) == 1.0


class TestSnapshotAlgebra:
    def _snap(self, *values):
        hist = LatencyHistogram(bounds=(1.0, 2.0))
        for v in values:
            hist.observe(v)
        return hist.snapshot()

    def test_merge_adds_counts(self):
        merged = self._snap(0.5, 1.5).merge(self._snap(1.5, 3.0))
        assert merged.counts == (1, 2, 1)
        assert merged.count == 4
        assert merged.total == pytest.approx(6.5)

    def test_merge_requires_same_bounds(self):
        other = LatencyHistogram(bounds=(1.0, 4.0)).snapshot()
        with pytest.raises(MetricsError):
            self._snap(0.5).merge(other)

    def test_minus_recovers_interval(self):
        earlier = self._snap(0.5)
        later = earlier.merge(self._snap(1.5, 1.5))
        window = later.minus(earlier)
        assert window.counts == (0, 2, 0)
        assert window.count == 2

    def test_minus_rejects_non_earlier_state(self):
        with pytest.raises(MetricsError):
            self._snap(0.5).minus(self._snap(1.5))

    def test_json_round_trip(self):
        snap = self._snap(0.5, 1.5, 9.0)
        assert HistogramSnapshot.from_json(snap.to_json()) == snap
