"""Registry semantics: labels, registration, isolation, thread safety."""

import threading

import pytest

from repro.errors import MetricsError
from repro.metrics import MetricsRegistry

THREADS = 8
PER_THREAD = 500


class TestCounters:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_test_total", "help text")
        c.inc()
        c.inc(2.5)
        assert c.value() == pytest.approx(3.5)

    def test_negative_increment_raises(self):
        c = MetricsRegistry().counter("repro_test_total")
        with pytest.raises(MetricsError):
            c.inc(-1.0)

    def test_labelled_family(self):
        c = MetricsRegistry().counter("repro_test_total", labels=("target",))
        c.inc(target="Q_CPU")
        c.inc(3, target="Q_G1")
        assert c.value(target="Q_CPU") == 1.0
        assert c.value(target="Q_G1") == 3.0
        assert c.value(target="Q_G2") == 0.0  # never incremented
        assert c.label_sets() == (("Q_CPU",), ("Q_G1",))

    def test_wrong_label_set_raises(self):
        c = MetricsRegistry().counter("repro_test_total", labels=("target",))
        with pytest.raises(MetricsError):
            c.inc()  # missing label
        with pytest.raises(MetricsError):
            c.inc(target="x", extra="y")


class TestGauges:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("repro_test_gauge")
        g.set(5.0)
        g.inc(2.0)
        g.dec()
        assert g.value() == pytest.approx(6.0)


class TestRegistration:
    def test_idempotent_same_signature(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_test_total", labels=("x",))
        b = reg.counter("repro_test_total", labels=("x",))
        assert a is b

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_test_total")
        with pytest.raises(MetricsError):
            reg.gauge("repro_test_total")

    def test_label_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_test_total", labels=("x",))
        with pytest.raises(MetricsError):
            reg.counter("repro_test_total", labels=("y",))

    def test_bucket_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("repro_test_seconds", buckets=(1.0, 2.0))
        with pytest.raises(MetricsError):
            reg.histogram("repro_test_seconds", buckets=(1.0, 4.0))

    def test_invalid_names_raise(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricsError):
            reg.counter("0bad")
        with pytest.raises(MetricsError):
            reg.counter("bad name")
        with pytest.raises(MetricsError):
            reg.counter("repro_ok_total", labels=("0bad",))
        with pytest.raises(MetricsError):
            reg.counter("repro_ok_total", labels=("__reserved",))

    def test_contains_and_get(self):
        reg = MetricsRegistry()
        reg.counter("repro_test_total")
        assert "repro_test_total" in reg
        assert "repro_other_total" not in reg
        assert reg.get("repro_test_total").kind == "counter"


class TestCollect:
    def test_families_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("repro_b_total")
        reg.counter("repro_a_total")
        snap = reg.collect(now=1.5)
        assert snap.time == 1.5
        assert [f.name for f in snap.families] == ["repro_a_total", "repro_b_total"]

    def test_snapshot_isolated_from_later_mutation(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_test_total")
        h = reg.histogram("repro_test_seconds", buckets=(1.0,))
        c.inc()
        h.observe(0.5)
        snap = reg.collect()
        c.inc(10)
        h.observe(0.5)
        assert snap.value("repro_test_total") == 1.0
        assert snap.histogram("repro_test_seconds").count == 1

    def test_histogram_accessors_guarded(self):
        reg = MetricsRegistry()
        reg.counter("repro_test_total").inc()
        reg.histogram("repro_test_seconds", buckets=(1.0,)).observe(0.5)
        snap = reg.collect()
        with pytest.raises(MetricsError):
            snap.value("repro_test_seconds")
        with pytest.raises(MetricsError):
            snap.family("repro_test_total").histogram()
        with pytest.raises(MetricsError):
            snap.value("repro_no_such_family")


class TestConcurrency:
    def test_barrier_aligned_increments_are_exact(self):
        """THREADS×PER_THREAD racing inc() calls must not lose a count."""
        reg = MetricsRegistry()
        counter = reg.counter("repro_race_total", labels=("worker",))
        hist = reg.histogram("repro_race_seconds", buckets=(1.0, 2.0))
        barrier = threading.Barrier(THREADS)
        errors: list[BaseException] = []

        def worker(index: int):
            try:
                barrier.wait(timeout=10.0)
                for _ in range(PER_THREAD):
                    counter.inc(worker=str(index % 2))  # contend on two keys
                    hist.observe(0.5)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert not errors
        snap = reg.collect()
        assert snap.family("repro_race_total").total() == THREADS * PER_THREAD
        assert snap.histogram("repro_race_seconds").count == THREADS * PER_THREAD
