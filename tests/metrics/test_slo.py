"""SLO monitor: windowed hit rate, burn math, threshold crossings."""

import math

import pytest

from repro.errors import MetricsError
from repro.metrics import MetricsRegistry, SloMonitor


class TestValidation:
    def test_target_domain(self):
        with pytest.raises(MetricsError):
            SloMonitor(target=0.0)
        with pytest.raises(MetricsError):
            SloMonitor(target=1.1)
        SloMonitor(target=1.0)  # no error budget, but legal

    def test_window_must_be_positive(self):
        with pytest.raises(MetricsError):
            SloMonitor(window=0.0)


class TestBurnMath:
    def test_empty_window_is_healthy(self):
        mon = SloMonitor(target=0.9)
        assert mon.hit_rate == 1.0
        assert mon.burn_rate == 0.0
        assert not mon.breached

    def test_burn_one_means_budget_exactly_consumed(self):
        mon = SloMonitor(target=0.9, window=100.0)
        for i in range(9):
            mon.observe(True, now=float(i))
        mon.observe(False, now=9.0)  # 9/10 hit = exactly the target
        assert mon.hit_rate == pytest.approx(0.9)
        assert mon.burn_rate == pytest.approx(1.0)
        assert not mon.breached  # at the target is not under it

    def test_target_one_burns_infinitely_on_any_miss(self):
        mon = SloMonitor(target=1.0, window=100.0)
        mon.observe(True, now=0.0)
        assert mon.burn_rate == 0.0
        event = mon.observe(False, now=1.0)
        assert mon.burn_rate == math.inf
        assert event is not None and event.kind == "breach"


class TestWindow:
    def test_old_observations_fall_out(self):
        mon = SloMonitor(target=0.9, window=10.0)
        mon.observe(False, now=0.0)  # breaches
        assert mon.breached
        for t in (20.0, 21.0):  # the miss is now outside the window
            mon.observe(True, now=t)
        assert mon.hit_rate == 1.0
        assert mon.window_count == 2
        assert not mon.breached

    def test_crossing_fires_once_per_direction(self):
        mon = SloMonitor(target=0.9, window=100.0)
        events = []
        mon.on_event = events.append
        mon.observe(False, now=0.0)  # hit rate 0.0: breach
        mon.observe(False, now=1.0)  # still under: no second event
        for t in range(2, 30):  # climb back over 0.9
            mon.observe(True, now=float(t))
        kinds = [e.kind for e in events]
        assert kinds == ["breach", "recover"]
        assert mon.events == events
        recover = events[-1]
        assert recover.hit_rate >= 0.9
        # recovery fires at the first observation back over target:
        # 18 hits against 2 misses (18/20 = 0.9)
        assert recover.window_count == 20


class TestRegistryIntegration:
    def test_gauges_and_event_counter_published(self):
        reg = MetricsRegistry()
        mon = SloMonitor(target=0.9, window=100.0, registry=reg)
        snap = reg.collect()
        assert snap.value("repro_slo_target") == pytest.approx(0.9)
        assert snap.value("repro_slo_hit_rate") == 1.0
        mon.observe(False, now=0.0)
        mon.observe(True, now=1.0)
        snap = reg.collect()
        assert snap.value("repro_slo_hit_rate") == pytest.approx(0.5)
        assert snap.value("repro_slo_burn_rate") == pytest.approx(5.0)
        assert snap.value("repro_slo_events_total", kind="breach") == 1.0
