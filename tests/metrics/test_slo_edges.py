"""SLO monitor edge cases the adapt plane leans on.

Three families the main :mod:`tests.metrics.test_slo` /
``test_slo_tick`` suites do not pin:

* **window-boundary pruning** — an observation aged *exactly*
  ``window`` seconds is still in the window (the prune is strict), and
  a hit falling out of the window can itself latch a breach with no
  new completion at all;
* **recover-then-rebreach inside one controller cooldown** — the
  monitor reports every crossing faithfully; debouncing is the
  controller's job, and its cooldown must swallow the whole
  recover/rebreach flap after one action;
* **ticks with zero completions** — a heartbeat on an empty window is
  pure (no event, no state), and a breached monitor whose window
  drains while *idle* recovers on the heartbeat alone.
"""

from repro.adapt.controller import AdaptiveCapacityController, ControllerLimits
from repro.metrics import SloMonitor


class _StubHost:
    """Minimal actuator surface for driving the controller directly."""

    def __init__(self):
        self._lateness = 1.0
        self._workers = 1

    def lateness(self):
        return self._lateness

    def set_lateness(self, value):
        self._lateness = value

    def translation_workers(self):
        return self._workers

    def set_translation_workers(self, workers):
        self._workers = workers

    def can_resplit(self):
        return False

    def resplit(self, scheme):
        raise AssertionError("resplit must not be attempted without a ladder")


class TestWindowBoundary:
    def test_observation_at_exact_boundary_is_retained(self):
        """The prune cutoff is strict: an observation aged exactly
        ``window`` seconds still counts, so a breach fired at the
        boundary sees both samples."""
        monitor = SloMonitor(target=0.9, window=10.0)
        monitor.observe(met=True, now=0.0)
        event = monitor.observe(met=False, now=10.0)
        assert monitor.window_count == 2
        assert event is not None and event.kind == "breach"
        assert event.window_count == 2
        assert event.hit_rate == 0.5

    def test_observation_just_past_boundary_is_pruned(self):
        monitor = SloMonitor(target=0.9, window=10.0)
        monitor.observe(met=True, now=0.0)
        monitor.observe(met=False, now=10.0)
        monitor.tick(10.0 + 1e-9, in_flight=0)
        assert monitor.window_count == 1
        assert monitor.hit_rate == 0.0

    def test_hit_aging_out_latches_breach_without_a_completion(self):
        """Rate sits exactly at target; the oldest *hit* then slides
        out of the window on a heartbeat and the breach fires from
        ``tick`` — no query finished anywhere near the crossing."""
        monitor = SloMonitor(target=0.5, window=10.0)
        monitor.observe(met=True, now=0.0)
        monitor.observe(met=True, now=1.0)
        monitor.observe(met=False, now=5.0)
        monitor.observe(met=False, now=6.0)
        assert monitor.hit_rate == 0.5 and not monitor.breached

        event = monitor.tick(10.5, in_flight=2)
        assert event is not None and event.kind == "breach"
        assert event.window_count == 3  # the t=0 hit is gone
        assert event.hit_rate == 1.0 / 3.0
        assert monitor.breached


class TestRecoverThenRebreach:
    def _flap(self, monitor):
        """breach at t=1.0, recover at t=1.1, rebreach at t=1.2."""
        events = []
        events.append(monitor.observe(met=False, now=1.0))
        for t in (1.02, 1.04, 1.06, 1.08, 1.08, 1.09, 1.09, 1.09, 1.1):
            e = monitor.observe(met=True, now=t)
            if e is not None:
                events.append(e)
        for t in (1.12, 1.16, 1.2):
            e = monitor.observe(met=False, now=t)
            if e is not None:
                events.append(e)
        return events

    def test_monitor_reports_every_crossing(self):
        """The monitor never debounces: a recover and an immediate
        rebreach 0.2 s apart are both emitted, in order."""
        monitor = SloMonitor(target=0.9, window=60.0)
        events = self._flap(monitor)
        assert [e.kind for e in events] == ["breach", "recover", "breach"]
        assert events == monitor.events
        for prev, cur in zip(events, events[1:]):
            assert cur.time >= prev.time
        assert events[-1].time - events[0].time < 0.25

    def test_controller_cooldown_swallows_the_flap(self):
        """Wired to a controller with a 5 s cooldown, the same
        breach/recover/breach flap produces exactly one action: the
        first breach acts, the recover and the rebreach both land
        inside the cooldown and are ignored."""
        controller = AdaptiveCapacityController(
            ControllerLimits(cooldown=5.0), target=0.9
        )
        controller.bind(_StubHost())
        monitor = SloMonitor(
            target=0.9, window=60.0, on_event=controller.on_slo_event
        )
        self._flap(monitor)
        assert len(monitor.events) == 3
        assert len(controller.reconfigs) == 1
        assert controller.reconfigs[0].trigger == "breach"
        assert controller.applied_depth == 1  # the flap unwound nothing

    def test_action_resumes_after_the_cooldown_expires(self):
        controller = AdaptiveCapacityController(
            ControllerLimits(cooldown=5.0, hysteresis=0.02), target=0.9
        )
        controller.bind(_StubHost())
        monitor = SloMonitor(
            target=0.9, window=10.0, on_event=controller.on_slo_event
        )
        self._flap(monitor)
        # once the flap's misses age out of the window, the recover
        # crossing lands outside the cooldown and de-escalates
        for t in (12.0, 12.1, 12.2, 12.3, 12.4, 12.5, 12.6, 12.7, 12.8, 12.9):
            monitor.observe(met=True, now=t)
        assert [r.trigger for r in controller.reconfigs] == ["breach", "recover"]
        assert controller.applied_depth == 0


class TestZeroCompletionTicks:
    def test_tick_on_fresh_monitor_is_pure(self):
        monitor = SloMonitor(target=0.9, window=60.0)
        for now in (0.0, 5.0, 10.0):
            assert monitor.tick(now, in_flight=0) is None
        assert monitor.events == []
        assert monitor.window_count == 0
        assert monitor.hit_rate == 1.0
        assert monitor.burn_rate == 0.0
        assert not monitor.breached

    def test_breached_monitor_recovers_on_an_idle_empty_window(self):
        """The window drains with nothing in flight: an empty idle
        window is healthy by definition, so the heartbeat alone emits
        the recover crossing — zero completions involved."""
        monitor = SloMonitor(target=0.9, window=10.0)
        breach = monitor.observe(met=False, now=0.0)
        assert breach is not None and breach.kind == "breach"

        recover = monitor.tick(20.0, in_flight=0)
        assert recover is not None and recover.kind == "recover"
        assert recover.window_count == 0
        assert recover.hit_rate == 1.0
        assert not monitor.breached
        assert [e.kind for e in monitor.events] == ["breach", "recover"]

    def test_starved_breach_reports_empty_window(self):
        """Starvation (work in flight, window empty) breaches with a
        window_count of 0 — the adapt plane's min_window_count gate
        must therefore never filter on count for starvation breaches
        alone without also seeing the in-flight signal."""
        monitor = SloMonitor(target=0.9, window=10.0)
        monitor.observe(met=True, now=0.0)
        event = monitor.tick(50.0, in_flight=3)
        assert event is not None and event.kind == "breach"
        assert event.window_count == 0
        # and the starved breach is latched: the next idle heartbeat
        # with the window still empty flips it straight back
        assert monitor.tick(51.0, in_flight=3) is None
