"""Regression: the SLO burn gauge went stale when completions stopped.

``SloMonitor`` used to slide its window only inside ``observe()``, so a
wedged system — queries in flight, none completing — kept exporting the
last healthy hit rate forever.  ``tick(now)`` now advances the window
on the engine's sampling heartbeat; these tests pin the starvation
breach, the idle no-breach, and the recovery path with a fake clock.
"""

import math

import pytest

from repro.metrics import MetricsRegistry, SloMonitor


class TestSloTick:
    def test_window_empties_under_load_latches_breach(self):
        registry = MetricsRegistry()
        monitor = SloMonitor(target=0.9, window=60.0, registry=registry)
        for t in range(5):
            monitor.observe(met=True, now=float(t))
        assert monitor.hit_rate == 1.0 and not monitor.breached

        # heartbeats while observations are still in-window: healthy
        assert monitor.tick(30.0, in_flight=4) is None
        assert not monitor.breached

        # the window slides past every observation while work is still
        # in flight: silence under load is the worst possible miss
        event = monitor.tick(70.0, in_flight=4)
        assert event is not None and event.kind == "breach"
        assert event.window_count == 0
        assert event.hit_rate == 0.0
        assert event.burn_rate == pytest.approx(10.0)  # (1 - 0) / (1 - 0.9)
        assert monitor.breached
        assert registry.get("repro_slo_burn_rate").value() == pytest.approx(10.0)
        assert registry.get("repro_slo_hit_rate").value() == 0.0

        # the breach is latched, not re-emitted every heartbeat
        assert monitor.tick(75.0, in_flight=4) is None
        assert len(monitor.events) == 1

    def test_idle_empty_window_stays_healthy(self):
        monitor = SloMonitor(target=0.9, window=60.0)
        monitor.observe(met=True, now=0.0)
        # in_flight == 0: the drain finished, nothing can be missing
        assert monitor.tick(100.0, in_flight=0) is None
        assert not monitor.breached
        assert monitor.hit_rate == 1.0

    def test_no_breach_before_first_observation(self):
        # engine start-up: work is admitted but nothing has had time to
        # finish — that is not starvation, the monitor has seen nothing
        monitor = SloMonitor(target=0.9, window=60.0)
        assert monitor.tick(5.0, in_flight=10) is None
        assert not monitor.breached

    def test_resumed_completions_recover(self):
        monitor = SloMonitor(target=0.9, window=60.0)
        monitor.observe(met=True, now=0.0)
        breach = monitor.tick(100.0, in_flight=2)
        assert breach is not None and breach.kind == "breach"
        recover = monitor.observe(met=True, now=101.0)
        assert recover is not None and recover.kind == "recover"
        assert [e.kind for e in monitor.events] == ["breach", "recover"]
        assert not monitor.breached

    def test_tick_prunes_partial_window(self):
        monitor = SloMonitor(target=0.9, window=60.0)
        for t, met in ((0.0, False), (50.0, True)):
            monitor.observe(met=met, now=t)
        # at t=70 the miss at t=0 ages out; only the hit remains
        monitor.tick(70.0, in_flight=1)
        assert monitor.hit_rate == 1.0
        assert monitor.window_count == 1

    def test_infinite_burn_with_perfect_target(self):
        monitor = SloMonitor(target=1.0, window=60.0)
        monitor.observe(met=True, now=0.0)
        event = monitor.tick(100.0, in_flight=1)
        assert event is not None and math.isinf(event.burn_rate)
