"""Snapshot serialisation + cross-registry merge, and the histogram
structural-validation regression.

The fleet plane ships :class:`MetricsSnapshot`s between processes as
JSON and folds them with :func:`merge_snapshots`; these tests pin the
round-trip exactness and the bugfix where a malformed histogram
snapshot (bounds/counts grid mismatch) used to be silently zipped by
``merge``/``minus`` instead of raising.
"""

from dataclasses import replace

import pytest

from repro.errors import MetricsError
from repro.metrics import MetricsRegistry, merge_snapshots
from repro.metrics.histogram import HistogramSnapshot
from repro.metrics.registry import MetricsSnapshot


def loaded_registry(scale=1):
    registry = MetricsRegistry()
    counter = registry.counter("requests_total", "requests", labels=("code",))
    counter.inc(2.0 * scale, code="200")
    counter.inc(1.0 * scale, code="500")
    registry.gauge("depth", "queue depth").set(3.0 * scale)
    histogram = registry.histogram("latency_seconds", "latency")
    for i in range(3 * scale):
        histogram.observe(0.01 * (i + 1))
    return registry


class TestSnapshotJsonRoundTrip:
    def test_snapshot_survives_json(self):
        snapshot = loaded_registry().collect(5.0)
        back = MetricsSnapshot.from_json_line(snapshot.to_json_line())
        assert back == snapshot

    def test_histogram_samples_survive_json(self):
        snapshot = loaded_registry().collect(1.0)
        back = MetricsSnapshot.from_json_line(snapshot.to_json_line())
        hist = back.histogram("latency_seconds")
        assert hist.count == 3
        assert hist == snapshot.histogram("latency_seconds")

    def test_corrupt_histogram_grid_rejected_at_load(self):
        # regression: a JSONL line whose counts grid does not match its
        # bounds used to deserialise fine and only corrupt later merges
        snapshot = loaded_registry().collect(1.0)
        data = snapshot.to_json()
        for family in data["families"]:
            if family["name"] == "latency_seconds":
                family["samples"][0]["value"]["counts"] = [1, 2, 3]
        with pytest.raises(MetricsError, match="len\\(bounds\\) \\+ 1"):
            MetricsSnapshot.from_json(data)

    def test_scalar_in_histogram_family_rejected(self):
        snapshot = loaded_registry().collect(1.0)
        data = snapshot.to_json()
        for family in data["families"]:
            if family["name"] == "latency_seconds":
                family["samples"][0]["value"] = 4.0
        with pytest.raises(MetricsError):
            MetricsSnapshot.from_json(data)


class TestMergeSnapshots:
    def test_merge_adds_scalars_and_histograms(self):
        a = loaded_registry(scale=1).collect(1.0)
        b = loaded_registry(scale=2).collect(4.0)
        merged = merge_snapshots([a, b])
        assert merged.time == 4.0
        fam = merged.family("requests_total")
        assert fam.samples[("200",)] == 6.0
        assert fam.samples[("500",)] == 3.0
        assert merged.family("depth").samples[()] == 9.0
        assert merged.histogram("latency_seconds").count == 9

    def test_merge_is_union_over_families_and_keys(self):
        a = MetricsRegistry()
        a.counter("only_in_a", "").inc(1.0)
        b = MetricsRegistry()
        b.counter("only_in_b", "").inc(2.0)
        merged = merge_snapshots([a.collect(0.0), b.collect(0.0)])
        assert merged.family("only_in_a").samples[()] == 1.0
        assert merged.family("only_in_b").samples[()] == 2.0

    def test_merge_of_one_is_identity(self):
        snapshot = loaded_registry().collect(2.0)
        assert merge_snapshots([snapshot]) == snapshot

    def test_merge_of_none_rejected(self):
        with pytest.raises(MetricsError):
            merge_snapshots([])

    def test_kind_mismatch_rejected(self):
        a = MetricsRegistry()
        a.counter("x", "").inc()
        b = MetricsRegistry()
        b.gauge("x", "").set(1.0)
        with pytest.raises(MetricsError):
            merge_snapshots([a.collect(0.0), b.collect(0.0)])

    def test_label_mismatch_rejected(self):
        a = MetricsRegistry()
        a.counter("x", "", labels=("k",)).inc(k="1")
        b = MetricsRegistry()
        b.counter("x", "").inc()
        with pytest.raises(MetricsError):
            merge_snapshots([a.collect(0.0), b.collect(0.0)])


class TestHistogramStructuralValidation:
    """Regression: merge()/minus() zipped mismatched grids silently."""

    def good(self):
        return HistogramSnapshot(
            bounds=(0.1, 1.0), counts=(1, 2, 3), count=6, total=4.2
        )

    def test_valid_snapshot_constructs(self):
        assert self.good().count == 6

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(bounds=(), counts=(1,), count=1, total=0.1),
            dict(bounds=(0.1, 0.1), counts=(1, 1, 1), count=3, total=0.3),
            dict(bounds=(1.0, 0.1), counts=(1, 1, 1), count=3, total=0.3),
            dict(bounds=(0.1, float("inf")), counts=(1, 1, 1), count=3, total=0.3),
            dict(bounds=(0.1, 1.0), counts=(1, 2), count=3, total=0.3),
            dict(bounds=(0.1, 1.0), counts=(1, 2, 3, 4), count=10, total=0.3),
            dict(bounds=(0.1, 1.0), counts=(1, -1, 1), count=1, total=0.3),
            dict(bounds=(0.1, 1.0), counts=(1, 2, 3), count=7, total=0.3),
        ],
    )
    def test_malformed_snapshots_rejected_at_construction(self, kwargs):
        with pytest.raises(MetricsError):
            HistogramSnapshot(**kwargs)

    def test_merge_refuses_mismatched_bounds(self):
        other = HistogramSnapshot(
            bounds=(0.2, 2.0), counts=(1, 2, 3), count=6, total=4.2
        )
        with pytest.raises(MetricsError):
            self.good().merge(other)

    def test_minus_refuses_mismatched_bounds(self):
        other = HistogramSnapshot(
            bounds=(0.2, 2.0), counts=(0, 1, 2), count=3, total=2.0
        )
        with pytest.raises(MetricsError):
            self.good().minus(other)

    def test_merge_and_minus_stay_exact_on_matching_grids(self):
        a = self.good()
        b = HistogramSnapshot(
            bounds=(0.1, 1.0), counts=(0, 1, 1), count=2, total=1.5
        )
        merged = a.merge(b)
        assert merged.counts == (1, 3, 4) and merged.count == 8
        assert merged.minus(b) == a

    def test_tampered_replace_rejected(self):
        # dataclasses.replace re-runs __post_init__: corruption after
        # construction is caught too
        with pytest.raises(MetricsError):
            replace(self.good(), counts=(9, 9, 9))
