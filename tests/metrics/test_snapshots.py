"""Tick-driven snapshot cadence (deterministic under injected clocks)."""

import json

import pytest

from repro.errors import MetricsError
from repro.metrics import MetricsRegistry, SnapshotWriter


class TestCadence:
    def test_grid_anchored_at_first_tick(self):
        writer = SnapshotWriter(MetricsRegistry(), interval=1.0)
        assert writer.tick(0.0) is not None  # first tick writes and anchors
        assert writer.tick(0.4) is None  # within the interval
        assert writer.tick(0.999) is None
        assert writer.tick(1.0) is not None  # interval elapsed
        assert [s.time for s in writer.snapshots] == [0.0, 1.0]

    def test_multi_interval_jump_writes_once(self):
        writer = SnapshotWriter(MetricsRegistry(), interval=1.0)
        writer.tick(0.0)
        assert writer.tick(3.7) is not None  # skips 1.0 and 2.0 slots
        assert [s.time for s in writer.snapshots] == [0.0, 3.7]
        assert writer.tick(3.9) is None  # next slot is 4.0
        assert writer.tick(4.0) is not None

    def test_non_zero_anchor(self):
        writer = SnapshotWriter(MetricsRegistry(), interval=1.0)
        writer.tick(0.2)
        assert writer.tick(1.1) is None
        assert writer.tick(1.2) is not None

    def test_write_forces_off_grid(self):
        writer = SnapshotWriter(MetricsRegistry(), interval=10.0)
        writer.tick(0.0)
        snap = writer.write(0.5)  # final-drain style forced snapshot
        assert snap.time == 0.5
        assert len(writer.snapshots) == 2

    def test_interval_must_be_positive(self):
        with pytest.raises(MetricsError):
            SnapshotWriter(MetricsRegistry(), interval=0.0)


class TestJsonl:
    def test_snapshots_append_as_parseable_jsonl(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        reg = MetricsRegistry()
        counter = reg.counter("repro_test_total")
        writer = SnapshotWriter(reg, path=path, interval=1.0)
        writer.tick(0.0)
        counter.inc(5)
        writer.tick(1.0)
        lines = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert len(lines) == 2
        assert lines[0]["time"] == 0.0
        assert lines[1]["families"][0]["samples"][0]["value"] == 5.0

    def test_reinit_truncates_stale_data(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        path.write_text("stale\n")
        SnapshotWriter(MetricsRegistry(), path=path, interval=1.0)
        assert path.read_text() == ""
