"""The sixth invariant family: metrics snapshots reconcile with the books."""

import pytest

from repro.errors import InvariantViolation
from repro.metrics import MetricsRegistry, SnapshotWriter
from repro.paper import TABLE3_TEXT_PROB, paper_system_config, paper_workload
from repro.query.workload import ArrivalProcess
from repro.sim import (
    HybridSystem,
    assert_metrics_valid,
    seed_metrics_violation,
    seed_violation,
    validate_metrics,
)
from repro.sim.validate import SEEDABLE_METRICS_VIOLATIONS


@pytest.fixture(scope="module")
def metered_run():
    """One Table-3-preset simulation with the metrics plane attached."""
    config = paper_system_config(threads=8, include_32gb=True)
    workload = paper_workload(include_32gb=True, text_prob=TABLE3_TEXT_PROB, seed=7)
    stream = workload.generate(200, ArrivalProcess("uniform", rate=150.0))
    registry = MetricsRegistry()
    snapshots = SnapshotWriter(registry, interval=0.1)
    report = HybridSystem(config).run(
        stream, metrics=registry, snapshots=snapshots
    )
    return report, snapshots.snapshots[-1]


class TestHealthyRuns:
    def test_sim_run_reconciles(self, metered_run):
        report, snapshot = metered_run
        result = validate_metrics(report, snapshot)
        assert result.ok, result.summary()
        assert_metrics_valid(report, snapshot)  # does not raise

    def test_counts_present(self, metered_run):
        _, snapshot = metered_run
        assert snapshot.value("repro_queries_submitted_total") == 200.0
        fam = snapshot.family("repro_scheduler_decisions_total")
        assert fam.total() == 200.0


class TestSeededViolations:
    def test_report_corruption_is_caught(self, metered_run):
        """Dropping a record from the books must break the reconciliation."""
        report, snapshot = metered_run
        broken = seed_violation(report, "conservation")
        result = validate_metrics(broken, snapshot)
        assert not result.ok

    @pytest.mark.parametrize("kind", SEEDABLE_METRICS_VIOLATIONS)
    def test_snapshot_corruption_is_caught(self, metered_run, kind):
        report, snapshot = metered_run
        broken = seed_metrics_violation(snapshot, kind)
        result = validate_metrics(report, broken)
        assert not result.ok, f"seeded {kind!r} violation went undetected"
        with pytest.raises(InvariantViolation):
            assert_metrics_valid(report, broken)

    def test_unknown_kind_raises(self, metered_run):
        _, snapshot = metered_run
        with pytest.raises(InvariantViolation, match="unknown"):
            seed_metrics_violation(snapshot, "no-such-kind")

    def test_original_snapshot_unmodified(self, metered_run):
        report, snapshot = metered_run
        seed_metrics_violation(snapshot, "completed")
        assert validate_metrics(report, snapshot).ok
