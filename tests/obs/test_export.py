"""Perfetto export shape, the schema gate, and crash-safe writes."""

import json
import os

import pytest

from repro.obs import (
    SpanTracer,
    check_trace_document,
    check_trace_file,
    to_chrome_trace,
    write_trace,
)
from repro.obs.fileio import atomic_write_lines


class ManualClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def sample_spans():
    """Two processes, two tracks, one stitched trace."""
    front = SpanTracer(1.0, seed=7, clock=ManualClock(), process="frontdoor")
    front.open(1, "frontdoor.request", query_class="small")
    front.record(1, "wire.roundtrip", 0.5, 1.5, track="wire-0", shard=0)
    shard_clock = ManualClock()
    shard_clock.t = 100.0  # distinct monotonic base on purpose
    shard = SpanTracer(1.0, seed=7, clock=shard_clock, process="shard-0")
    shard.adopt(1, front.traceparent(1))
    shard.open(1, "serve.query")
    shard.record(1, "pool.service", 100.2, 100.4, track="Q_CPU", pool="Q_CPU")
    shard_clock.t = 100.5
    shard.close(1)
    front.close(1)
    return front.drain() + shard.drain()


class TestToChromeTrace:
    def test_envelope_and_event_shapes(self):
        document = to_chrome_trace(sample_spans())
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 4
        names = {e["name"] for e in complete}
        assert names == {
            "frontdoor.request",
            "wire.roundtrip",
            "serve.query",
            "pool.service",
        }
        process_names = {
            e["args"]["name"] for e in meta if e["name"] == "process_name"
        }
        assert process_names == {"frontdoor", "shard-0"}
        thread_names = {
            e["args"]["name"] for e in meta if e["name"] == "thread_name"
        }
        assert {"wire-0", "Q_CPU"} <= thread_names
        assert all("trace_id" in e["args"] for e in complete)
        # one trace: every X event shares the trace id
        assert len({e["args"]["trace_id"] for e in complete}) == 1

    def test_timestamps_are_rebased_microseconds(self):
        document = to_chrome_trace(sample_spans())
        complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
        # each process's earliest span sits at ts 0, despite the shard's
        # clock running from a base of 100 seconds
        by_pid = {}
        for e in complete:
            by_pid.setdefault(e["pid"], []).append(e)
        for events in by_pid.values():
            assert min(e["ts"] for e in events) == 0.0
            assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in events)
        wire = next(e for e in complete if e["name"] == "wire.roundtrip")
        assert wire["dur"] == pytest.approx(1_000_000.0)  # 1 s in µs

    def test_parent_and_query_ids_travel_in_args(self):
        document = to_chrome_trace(sample_spans())
        complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
        root = next(e for e in complete if e["name"] == "frontdoor.request")
        child = next(e for e in complete if e["name"] == "serve.query")
        assert "parent_id" not in root["args"]
        assert child["args"]["parent_id"] == root["args"]["span_id"]
        assert child["args"]["query_id"] == 1


class TestSchemaGate:
    def test_clean_document_passes(self):
        assert check_trace_document(to_chrome_trace(sample_spans())) == []

    @pytest.mark.parametrize(
        "document, fragment",
        [
            ({"traceEvents": None}, "not a list"),
            ({"traceEvents": ["nope"]}, "not an object"),
            (
                {"traceEvents": [{"ph": "B", "name": "x", "pid": 1, "tid": 1}]},
                "unsupported ph",
            ),
            (
                {
                    "traceEvents": [
                        {
                            "ph": "X",
                            "pid": 1,
                            "tid": 1,
                            "ts": 0,
                            "dur": 0,
                            "args": {"trace_id": "aa"},
                        }
                    ]
                },
                "missing 'name'",
            ),
            (
                {
                    "traceEvents": [
                        {
                            "ph": "X",
                            "name": "x",
                            "pid": 1,
                            "tid": 1,
                            "ts": -1,
                            "dur": 0,
                            "args": {"trace_id": "aa"},
                        }
                    ]
                },
                "negative",
            ),
            (
                {
                    "traceEvents": [
                        {
                            "ph": "X",
                            "name": "x",
                            "pid": 1,
                            "tid": 1,
                            "ts": "soon",
                            "dur": 0,
                            "args": {"trace_id": "aa"},
                        }
                    ]
                },
                "not numeric",
            ),
            (
                {
                    "traceEvents": [
                        {
                            "ph": "X",
                            "name": "x",
                            "pid": 1,
                            "tid": 1,
                            "ts": 0,
                            "dur": 0,
                            "args": {},
                        }
                    ]
                },
                "missing trace_id",
            ),
        ],
    )
    def test_each_problem_class_is_caught(self, document, fragment):
        problems = check_trace_document(document)
        assert any(fragment in p for p in problems), problems

    def test_span_pid_without_process_name_is_flagged(self):
        document = {
            "traceEvents": [
                {
                    "ph": "X",
                    "name": "x",
                    "pid": 7,
                    "tid": 1,
                    "ts": 0,
                    "dur": 0,
                    "args": {"trace_id": "aa"},
                }
            ]
        }
        problems = check_trace_document(document)
        assert any("process_name" in p for p in problems)

    def test_check_trace_file_round_trip(self, tmp_path):
        path = tmp_path / "trace.json"
        n = write_trace(str(path), sample_spans())
        assert n == 4
        assert check_trace_file(str(path)) == []
        # and it really is the Chrome envelope on disk
        document = json.loads(path.read_text())
        assert "traceEvents" in document

    def test_check_trace_file_reports_unreadable(self, tmp_path):
        missing = tmp_path / "nope.json"
        assert any("unreadable" in p for p in check_trace_file(str(missing)))
        torn = tmp_path / "torn.json"
        torn.write_text('{"traceEvents": [')
        assert any("unreadable" in p for p in check_trace_file(str(torn)))
        wrong = tmp_path / "wrong.json"
        wrong.write_text("[1, 2, 3]")
        assert any("not an object" in p for p in check_trace_file(str(wrong)))


class TestCrashSafety:
    """Satellite: a run killed mid-write must never tear the target file."""

    def test_atomic_write_replaces_whole_file(self, tmp_path):
        path = tmp_path / "out.jsonl"
        path.write_text("previous contents\n")
        assert atomic_write_lines(path, ["a", "b"]) == 2
        assert path.read_text() == "a\nb\n"
        assert list(tmp_path.glob("*.tmp")) == []

    def test_kill_mid_write_leaves_previous_file_intact(self, tmp_path):
        path = tmp_path / "out.jsonl"
        path.write_text("previous contents\n")
        calls = {"n": 0}

        def dying_writer(handle, line):
            calls["n"] += 1
            if calls["n"] == 2:
                raise KeyboardInterrupt("simulated kill -9 moment")
            handle.write(line + "\n")

        with pytest.raises(KeyboardInterrupt):
            atomic_write_lines(path, ["a", "b", "c"], writer=dying_writer)
        # the reader's contract: complete old file, never a prefix
        assert path.read_text() == "previous contents\n"
        assert list(tmp_path.glob("*.tmp")) == []

    def test_trace_collector_export_goes_through_the_atomic_path(
        self, tmp_path, monkeypatch
    ):
        from repro.sim.obs import TraceCollector

        collector = TraceCollector()
        collector.emit("arrival", 0.0, 1)
        collector.emit("service_finish", 1.0, 1, server="Q_CPU")
        path = tmp_path / "trace.jsonl"
        path.write_text("stale\n")

        real_replace = os.replace
        seen = {"replaced": False}

        def spying_replace(src, dst):
            seen["replaced"] = True
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", spying_replace)
        assert collector.write_jsonl(path) == 2
        assert seen["replaced"], "write_jsonl must rename, not write in place"
        lines = path.read_text().splitlines()
        assert [json.loads(line)["kind"] for line in lines] == [
            "arrival",
            "service_finish",
        ]
