"""SpanTracer semantics: sampling, context, lifecycle, bounds, stitch.

Everything here drives the tracer directly under a manual clock, so the
tests are pure functions of their inputs — no engine, no threads.
"""

import pytest

from repro.obs import (
    SpanTracer,
    format_traceparent,
    head_sampled,
    parse_traceparent,
    stitch,
    trace_id_for,
)


class ManualClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def make_tracer(rate=1.0, seed=7, **kwargs):
    clock = ManualClock()
    tracer = SpanTracer(rate, seed=seed, clock=clock, **kwargs)
    return tracer, clock


class TestHeadSampling:
    def test_rate_one_samples_everything(self):
        assert all(head_sampled(7, 1.0, qid) for qid in range(200))

    def test_rate_zero_samples_nothing(self):
        assert not any(head_sampled(7, 0.0, qid) for qid in range(200))

    def test_decision_is_a_pure_function(self):
        first = {qid for qid in range(1000) if head_sampled(7, 0.3, qid)}
        second = {qid for qid in range(1000) if head_sampled(7, 0.3, qid)}
        assert first == second

    def test_rate_is_roughly_proportional(self):
        hits = sum(head_sampled(7, 0.25, qid) for qid in range(2000))
        assert 0.18 * 2000 < hits < 0.32 * 2000

    def test_different_seeds_sample_different_sets(self):
        a = {qid for qid in range(1000) if head_sampled(1, 0.5, qid)}
        b = {qid for qid in range(1000) if head_sampled(2, 0.5, qid)}
        assert a != b

    def test_trace_ids_are_distinct_and_stable(self):
        ids = {trace_id_for(7, qid) for qid in range(1000)}
        assert len(ids) == 1000
        assert trace_id_for(7, 42) == trace_id_for(7, 42)
        assert all(len(t) == 16 for t in ids)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            SpanTracer(-0.1)
        with pytest.raises(ValueError):
            SpanTracer(1.5)


class TestTraceparent:
    def test_round_trip(self):
        value = format_traceparent("aa" * 8, "bb" * 8)
        assert parse_traceparent(value) == ("aa" * 8, "bb" * 8, True)

    def test_unsampled_flag(self):
        value = format_traceparent("aa" * 8, "bb" * 8, sampled=False)
        assert parse_traceparent(value)[2] is False

    @pytest.mark.parametrize(
        "bad", ["", "xx", "01-aa-bb-01", "00-aa-01", "00--bb-01", "00-aa--01"]
    )
    def test_malformed_raises(self, bad):
        with pytest.raises(ValueError):
            parse_traceparent(bad)


class TestLifecycle:
    def test_open_record_close_builds_one_tree(self):
        tracer, clock = make_tracer()
        root_id = tracer.open(1, "serve.query", query_class="small")
        clock.t = 2.0
        tracer.record(1, "pool.service", 1.0, 2.0, track="Q_CPU", pool="Q_CPU")
        tracer.annotate(1, target="Q_CPU")
        tracer.close(1, met_deadline=True)
        spans = tracer.spans()
        assert [s.name for s in spans] == ["pool.service", "serve.query"]
        child, root = spans
        assert root.span_id == root_id and root.parent_id is None
        assert child.parent_id == root_id
        assert child.trace_id == root.trace_id == trace_id_for(7, 1)
        assert root.attributes == {
            "query_class": "small",
            "target": "Q_CPU",
            "met_deadline": True,
        }
        assert (root.start, root.end) == (0.0, 2.0)

    def test_unsampled_query_records_nothing(self):
        tracer, _ = make_tracer(rate=0.0)
        assert tracer.open(1, "serve.query") is None
        assert tracer.record(1, "pool.service", 0.0, 1.0) is None
        assert tracer.close(1) is None
        assert len(tracer) == 0 and tracer.sampled_count == 0

    def test_close_is_idempotent(self):
        tracer, _ = make_tracer()
        tracer.open(1, "serve.query")
        assert tracer.close(1) is not None
        assert tracer.close(1) is None
        assert len(tracer) == 1

    def test_resubmitted_id_keeps_the_first_root(self):
        tracer, _ = make_tracer()
        first = tracer.open(1, "serve.query")
        assert tracer.open(1, "serve.query") == first
        tracer.close(1)
        assert len(tracer) == 1

    def test_close_all_abandons_open_roots(self):
        tracer, clock = make_tracer()
        tracer.open(1, "serve.query")
        tracer.open(2, "serve.query")
        tracer.close(1)
        clock.t = 5.0
        assert tracer.close_all() == 1
        statuses = {s.query_id: s.status for s in tracer.spans()}
        assert statuses == {1: "ok", 2: "abandoned"}
        assert tracer.open_count() == 0

    def test_buffer_bound_counts_drops(self):
        tracer, _ = make_tracer(max_spans=2)
        tracer.open(1, "serve.query")
        for i in range(4):
            tracer.record(1, "stage", float(i), float(i))
        tracer.close(1)
        assert len(tracer) == 2
        assert tracer.dropped == 3  # two stage spans + the root itself

    def test_drain_pops_the_buffer(self):
        tracer, _ = make_tracer()
        tracer.open(1, "serve.query")
        tracer.close(1)
        assert len(tracer.drain()) == 1
        assert len(tracer) == 0

    def test_identically_clocked_runs_produce_identical_buffers(self):
        def run():
            tracer, clock = make_tracer()
            for qid in range(5):
                tracer.open(qid, "serve.query", start=float(qid))
                tracer.record(qid, "pool.service", qid + 0.1, qid + 0.5)
                tracer.close(qid, end=qid + 1.0)
            return [s.to_dict() for s in tracer.spans()]

        assert run() == run()


class TestAdoption:
    def test_adopted_context_overrides_sampling(self):
        upstream, _ = make_tracer(seed=7, process="frontdoor")
        root_id = upstream.open(1, "frontdoor.request")
        # rate 0: the shard would never sample on its own
        shard, _ = make_tracer(rate=0.0, seed=7, process="shard-0")
        shard.adopt(1, upstream.traceparent(1))
        child_root = shard.open(1, "serve.query")
        assert child_root is not None
        shard.close(1)
        (span,) = shard.spans()
        assert span.trace_id == trace_id_for(7, 1)
        assert span.parent_id == root_id
        assert span.process == "shard-0"

    def test_unsampled_traceparent_is_ignored(self):
        shard, _ = make_tracer(rate=0.0)
        shard.adopt(1, format_traceparent("aa" * 8, "bb" * 8, sampled=False))
        assert shard.open(1, "serve.query") is None

    def test_traceparent_is_none_without_an_open_root(self):
        tracer, _ = make_tracer(rate=0.0)
        tracer.open(1, "serve.query")
        assert tracer.traceparent(1) is None
        assert tracer.context(1) is None


class TestStitch:
    def _fleet_spans(self):
        front, _ = make_tracer(process="frontdoor")
        front.open(1, "frontdoor.request")
        front.record(1, "wire.roundtrip", 0.0, 1.0, shard=3)
        shard, _ = make_tracer(process="shard-3")
        shard.adopt(1, front.traceparent(1))
        shard.open(1, "serve.query")
        shard.close(1)
        front.close(1)
        return front.drain() + shard.drain()

    def test_merges_and_orders_deterministically(self):
        merged = stitch(self._fleet_spans())
        assert [s.process for s in merged] == [
            "frontdoor",
            "frontdoor",
            "shard-3",
        ]
        root = next(s for s in merged if s.parent_id is None)
        assert root.status == "ok"

    def test_crashed_shard_restamps_the_root_partial(self):
        merged = stitch(self._fleet_spans(), crashed=(3,))
        root = next(s for s in merged if s.parent_id is None)
        assert root.status == "partial"
        # non-root spans keep their own status
        assert all(
            s.status == "ok" for s in merged if s.parent_id is not None
        )

    def test_unrelated_crash_leaves_the_trace_alone(self):
        merged = stitch(self._fleet_spans(), crashed=(9,))
        root = next(s for s in merged if s.parent_id is None)
        assert root.status == "ok"
