"""The ``spans`` validation family against real runs and seeded breaks."""

import pytest

from repro.errors import InvariantViolation
from repro.obs import SpanTracer, head_sampled, stitch, trace_id_for
from repro.paper import paper_system_config, paper_workload
from repro.sim import HybridSystem, TraceCollector
from repro.sim.validate import (
    SEEDABLE_SPANS_VIOLATIONS,
    assert_spans_valid,
    seed_spans_violation,
    validate_spans,
)

SEED = 2012


@pytest.fixture(scope="module")
def traced_run():
    """One fully-sampled simulated run with spans, lifecycle, and report."""
    config = paper_system_config(threads=4, include_32gb=False)
    stream = paper_workload(
        include_32gb=False, text_prob=0.4, seed=9
    ).generate(40)
    tracer = SpanTracer(1.0, seed=SEED, process="sim")
    collector = TraceCollector()
    report = HybridSystem(config).run(stream, collector=collector, obs=tracer)
    submitted = [tq.query.query_id for tq in stream]
    return report, collector, tracer.spans(), submitted


class ManualClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


def fleet_style_spans():
    """A hand-built two-process wire trace (frontdoor + shard)."""
    front_clock = ManualClock()
    front = SpanTracer(1.0, seed=SEED, clock=front_clock, process="frontdoor")
    front.open(1, "frontdoor.request")
    front.record(1, "wire.roundtrip", 0.1, 0.9, track="wire-0", shard=0)
    shard_clock = ManualClock(50.0)
    shard = SpanTracer(1.0, seed=SEED, clock=shard_clock, process="shard-0")
    shard.adopt(1, front.traceparent(1))
    shard.open(1, "serve.query")
    shard.record(1, "pool.service", 50.1, 50.4, track="Q_CPU", pool="Q_CPU")
    shard_clock.t = 50.5
    shard.close(1)
    front_clock.t = 1.0
    front.close(1)
    return stitch(front.drain() + shard.drain())


class TestCleanRuns:
    def test_real_run_passes_with_full_context(self, traced_run):
        report, collector, spans, submitted = traced_run
        assert spans, "a fully-sampled run must record spans"
        result = validate_spans(
            spans,
            report=report,
            collector=collector,
            seed=SEED,
            sample_rate=1.0,
            submitted=submitted,
        )
        assert result.ok, result.summary()
        assert result.checked == ("spans",)

    def test_assert_returns_the_span_tuple(self, traced_run):
        _, _, spans, _ = traced_run
        assert assert_spans_valid(spans) == tuple(spans)

    def test_fleet_style_trace_passes(self):
        spans = fleet_style_spans()
        result = validate_spans(spans)
        assert result.ok, result.summary()

    def test_empty_set_is_vacuously_valid(self):
        assert validate_spans(()).ok


class TestSeededViolations:
    """Every corruption arm must be caught by the family that owns it."""

    def _corrupt_and_validate(self, kind, traced_run):
        report, collector, spans, submitted = traced_run
        if kind == "severed":
            spans = fleet_style_spans()
        corrupted = seed_spans_violation(spans, kind)
        kwargs = {}
        if kind == "unsampled":
            kwargs = dict(seed=SEED, sample_rate=1.0, submitted=submitted)
        elif kind == "books":
            kwargs = dict(report=report)
        return validate_spans(corrupted, **kwargs)

    @pytest.mark.parametrize("kind", SEEDABLE_SPANS_VIOLATIONS)
    def test_arm_is_caught(self, kind, traced_run):
        result = self._corrupt_and_validate(kind, traced_run)
        assert not result.ok, f"seeded {kind!r} violation went undetected"
        assert all(v.invariant == "spans" for v in result.violations)

    def test_unknown_kind_raises(self, traced_run):
        _, _, spans, _ = traced_run
        with pytest.raises(InvariantViolation, match="unknown violation"):
            seed_spans_violation(spans, "no-such-kind")

    def test_unseedable_arm_raises(self):
        lone = fleet_style_spans()[:1]  # a root with no children, no wire
        with pytest.raises(InvariantViolation, match="cannot seed"):
            seed_spans_violation(lone, "orphan")
        with pytest.raises(InvariantViolation, match="empty set"):
            seed_spans_violation((), "inverted")


class TestSamplingAccounting:
    def test_partial_rate_matches_the_formula_exactly(self):
        config = paper_system_config(threads=4, include_32gb=False)
        stream = paper_workload(
            include_32gb=False, text_prob=0.4, seed=11
        ).generate(60)
        tracer = SpanTracer(0.3, seed=SEED, process="sim")
        collector = TraceCollector()
        HybridSystem(config).run(stream, collector=collector, obs=tracer)
        submitted = [tq.query.query_id for tq in stream]
        spans = assert_spans_valid(
            tracer.spans(),
            seed=SEED,
            sample_rate=0.3,
            submitted=submitted,
        )
        traced = {s.trace_id for s in spans}
        expected = {
            trace_id_for(SEED, qid)
            for qid in submitted
            if head_sampled(SEED, 0.3, qid)
        }
        assert traced == expected
        assert 0 < len(traced) < len(submitted)

    def test_extra_trace_is_flagged_both_ways(self, traced_run):
        _, _, spans, submitted = traced_run
        # claim a smaller submitted set: recorded traces become "extra"
        result = validate_spans(
            spans, seed=SEED, sample_rate=1.0, submitted=submitted[:5]
        )
        assert any("recorded but no submitted" in v.message for v in result.violations)
        # claim a larger one: the formula expects traces the run lacks
        result = validate_spans(
            spans,
            seed=SEED,
            sample_rate=1.0,
            submitted=list(submitted) + [10_000_001],
        )
        assert any("recorded no spans" in v.message for v in result.violations)


class TestSeveredTrees:
    def test_partial_root_exempts_a_severed_trace(self):
        spans = fleet_style_spans()
        root = next(s for s in spans if s.parent_id is None)
        survivors = [
            s for s in spans if s.process == root.process
        ]  # shard spans lost with the crashed worker
        # without stitch's partial stamp this is a severed-tree violation
        unstitched = validate_spans(survivors)
        assert any("severed" in v.message for v in unstitched.violations)
        # stitch knows shard 0 crashed and stamps the root partial
        restamped = stitch(survivors, crashed=(0,))
        result = validate_spans(restamped)
        assert result.ok, result.summary()
        assert next(
            s for s in restamped if s.parent_id is None
        ).status == "partial"
