"""Unit tests for the bandwidth benchmark harness (Figure 3 source)."""

import numpy as np
import pytest

from repro.errors import CalibrationError
from repro.olap.bandwidth import BandwidthPoint, run_bandwidth_sweep


@pytest.fixture(scope="module")
def sweep():
    # tiny sizes keep the suite fast; shape checks only need relative data
    return run_bandwidth_sweep(sizes_mb=(1, 2, 4), thread_counts=(1, 2), repeats=2)


class TestSweep:
    def test_point_count(self, sweep):
        assert len(sweep.points) == 3 * 2

    def test_thread_counts(self, sweep):
        assert sweep.thread_counts == (1, 2)

    def test_sizes_per_thread(self, sweep):
        assert sweep.sizes_mb(1) == [1, 2, 4]

    def test_times_positive(self, sweep):
        assert all(t > 0 for t in sweep.times(1))
        assert all(t > 0 for t in sweep.times(2))

    def test_bandwidths_positive_and_finite(self, sweep):
        for bw in sweep.bandwidths(1) + sweep.bandwidths(2):
            assert np.isfinite(bw) and bw > 0

    def test_times_grow_with_size(self, sweep):
        # larger sub-cubes take longer for a fixed thread count
        times = sweep.times(1)
        assert times[-1] > times[0]

    def test_checksum_recorded(self, sweep):
        assert all(p.checksum != 0.0 for p in sweep.points)


class TestValidation:
    def test_zero_repeats_rejected(self):
        with pytest.raises(CalibrationError):
            run_bandwidth_sweep(sizes_mb=(1,), repeats=0)

    def test_empty_sizes_rejected(self):
        with pytest.raises(CalibrationError):
            run_bandwidth_sweep(sizes_mb=())

    def test_point_gbps(self):
        p = BandwidthPoint(size_mb=1024.0, num_threads=1, seconds=1.0, checksum=1.0)
        assert np.isclose(p.gbps, 1.0)
