"""Cross-checking tests for the three cube-construction algorithms."""

import numpy as np
import pytest

from repro.errors import CubeError
from repro.olap.buildalgs import (
    array_based_cube,
    buc_cube,
    full_cube_reference,
    pipesort_cube,
    project_coordinates,
)
from repro.olap.buildalgs.pipesort import plan_pipelines
from repro.relational import generate_dataset, tpcds_like_schema

ALGORITHMS = [array_based_cube, buc_cube, pipesort_cube]


@pytest.fixture(scope="module")
def small_table():
    schema = tpcds_like_schema(scale=0.3)
    return generate_dataset(schema, num_rows=2_000, seed=17).table


@pytest.fixture(scope="module")
def resolutions():
    return {"date": 1, "store": 1, "item": 1}


@pytest.fixture(scope="module")
def reference(small_table, resolutions):
    return full_cube_reference(small_table, "quantity", resolutions)


class TestAgainstReference:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_cuboid_set(self, algorithm, small_table, resolutions, reference):
        got = algorithm(small_table, "quantity", resolutions)
        assert set(got) == set(reference)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_cell_sets_and_values(self, algorithm, small_table, resolutions, reference):
        got = algorithm(small_table, "quantity", resolutions)
        for cuboid, cells in reference.items():
            assert set(got[cuboid]) == set(cells), cuboid
            for key, value in cells.items():
                assert np.isclose(got[cuboid][key], value), (cuboid, key)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_apex_is_grand_total(self, algorithm, small_table, resolutions):
        got = algorithm(small_table, "quantity", resolutions)
        assert np.isclose(
            got[frozenset()][()], small_table.column("quantity").sum()
        )

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_cuboid_totals_are_invariant(self, algorithm, small_table, resolutions):
        # every cuboid sums to the grand total (sum is fully additive)
        got = algorithm(small_table, "quantity", resolutions)
        total = small_table.column("quantity").sum()
        for cuboid, cells in got.items():
            assert np.isclose(sum(cells.values()), total), cuboid


class TestIceberg:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("min_support", [2, 5, 20])
    def test_iceberg_matches_reference(
        self, algorithm, min_support, small_table, resolutions
    ):
        ref = full_cube_reference(small_table, "quantity", resolutions, min_support)
        got = algorithm(small_table, "quantity", resolutions, min_support=min_support)
        for cuboid in ref:
            assert set(got[cuboid]) == set(ref[cuboid]), cuboid

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_iceberg_monotone(self, algorithm, small_table, resolutions):
        loose = algorithm(small_table, "quantity", resolutions, min_support=1)
        tight = algorithm(small_table, "quantity", resolutions, min_support=10)
        for cuboid in loose:
            assert set(tight[cuboid]) <= set(loose[cuboid])

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_invalid_min_support(self, algorithm, small_table, resolutions):
        with pytest.raises(CubeError):
            algorithm(small_table, "quantity", resolutions, min_support=0)


class TestSubsetsOfDimensions:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_two_dimension_cube(self, algorithm, small_table):
        res = {"date": 0, "store": 1}
        ref = full_cube_reference(small_table, "quantity", res)
        got = algorithm(small_table, "quantity", res)
        assert set(got) == set(ref)
        for cuboid in ref:
            assert got[cuboid] == pytest.approx(ref[cuboid])

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_mixed_resolutions(self, algorithm, small_table):
        res = {"date": 2, "store": 0, "item": 1}
        ref = full_cube_reference(small_table, "sales_price", res)
        got = algorithm(small_table, "sales_price", res)
        for cuboid in ref:
            assert set(got[cuboid]) == set(ref[cuboid])


class TestPipelinePlanner:
    def test_covers_all_cuboids(self):
        names = ["a", "b", "c", "d"]
        pipelines = plan_pipelines(names)
        covered = set()
        for order in pipelines:
            for plen in range(len(order) + 1):
                covered.add(frozenset(order[:plen]))
        assert len(covered) == 2 ** len(names)

    def test_first_pipeline_is_full_order(self):
        assert plan_pipelines(["b", "a"])[0] == ("a", "b")

    def test_pipeline_count_reasonable(self):
        # minimal cover size equals the middle binomial coefficient
        import math

        names = [f"d{i}" for i in range(5)]
        pipelines = plan_pipelines(names)
        assert len(pipelines) == math.comb(5, 2)


class TestProjectCoordinates:
    def test_column_order(self, small_table):
        coords = project_coordinates(small_table, ["store", "date"], {"store": 1, "date": 0})
        assert coords.shape == (len(small_table), 2)
        store_level = small_table.schema.dimension("store").level(1).name
        assert np.array_equal(
            coords[:, 0], small_table.column(f"store__{store_level}")
        )

    def test_empty_projection(self, small_table):
        coords = project_coordinates(small_table, [], {})
        assert coords.shape == (len(small_table), 0)
