"""Edge-case tests for the pipeline planner and BUC pruning.

Complements the cross-checking suite (``test_buildalgs.py``) and the
hypothesis suite (``test_prop_pipesort.py``) with deterministic corner
cases: degenerate dimension counts for :func:`plan_pipelines` and the
guarantee that BUC's iceberg pruning removes cells, never cuboids.
"""

import math

import pytest

from repro.errors import CubeError
from repro.olap.buildalgs import buc_cube, full_cube_reference
from repro.olap.buildalgs.pipesort import plan_pipelines
from repro.relational import generate_dataset, tpcds_like_schema


class TestPlanPipelinesEdges:
    def test_zero_dimensions(self):
        # the empty lattice has exactly one cuboid: the apex, covered by
        # the single empty pipeline
        assert plan_pipelines([]) == [()]

    def test_single_dimension(self):
        assert plan_pipelines(["x"]) == [("x",)]

    def test_duplicate_names_rejected(self):
        with pytest.raises(CubeError):
            plan_pipelines(["a", "b", "a"])

    def test_input_order_never_leaks(self):
        # orderings of the same name set plan identically
        names = ["d", "b", "c", "a"]
        expected = plan_pipelines(sorted(names))
        assert plan_pipelines(names) == expected
        assert plan_pipelines(list(reversed(names))) == expected

    def test_no_duplicate_pipelines(self):
        pipelines = plan_pipelines([f"d{i}" for i in range(6)])
        assert len(set(pipelines)) == len(pipelines)

    @pytest.mark.parametrize("d", range(7))
    def test_full_cover_and_optimality_up_to_six_dims(self, d):
        names = [f"d{i}" for i in range(d)]
        pipelines = plan_pipelines(names)
        covered = set()
        for order in pipelines:
            for plen in range(len(order) + 1):
                covered.add(frozenset(order[:plen]))
        assert len(covered) == 2**d
        assert len(pipelines) == math.comb(d, d // 2)


@pytest.fixture(scope="module")
def tiny_table():
    schema = tpcds_like_schema(scale=0.2)
    return generate_dataset(schema, num_rows=500, seed=23).table


class TestBUCPruning:
    RESOLUTIONS = {"date": 1, "store": 1, "item": 0}

    @pytest.mark.parametrize("min_support", [1, 3, 25, 10_000])
    def test_pruning_never_drops_a_nonempty_cuboid(self, tiny_table, min_support):
        ref = full_cube_reference(tiny_table, "quantity", self.RESOLUTIONS, min_support)
        got = buc_cube(tiny_table, "quantity", self.RESOLUTIONS, min_support=min_support)
        # every cuboid key survives pruning, populated or not...
        assert set(got) == set(ref)
        for cuboid, cells in ref.items():
            # ...and any cuboid with qualifying cells keeps exactly them
            if cells:
                assert got[cuboid], cuboid
            assert set(got[cuboid]) == set(cells), cuboid

    def test_support_above_row_count_leaves_all_cuboids_empty(self, tiny_table):
        got = buc_cube(
            tiny_table, "quantity", self.RESOLUTIONS, min_support=len(tiny_table) + 1
        )
        assert len(got) == 2 ** len(self.RESOLUTIONS)
        assert all(cells == {} for cells in got.values())
