"""Unit tests for chunked storage and chunk-offset compression."""

import numpy as np
import pytest

from repro.errors import CubeError
from repro.olap.chunks import (
    ChunkedCube,
    CompressedChunk,
    DenseChunk,
    ZHAO_FILL_THRESHOLD,
)


def sparse_array(shape, density, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.random(shape)
    a[rng.random(shape) > density] = 0.0
    return a


class TestRoundTrip:
    def test_dense_array_roundtrip(self):
        a = np.arange(60, dtype=float).reshape(6, 10) + 1
        cc = ChunkedCube.from_dense(a, (4, 4))
        assert np.array_equal(cc.to_dense(), a)

    def test_sparse_array_roundtrip(self):
        a = sparse_array((33, 17), density=0.1)
        cc = ChunkedCube.from_dense(a, (8, 8))
        assert np.array_equal(cc.to_dense(), a)

    def test_3d_roundtrip(self):
        a = sparse_array((9, 7, 11), density=0.3, seed=3)
        cc = ChunkedCube.from_dense(a, (4, 4, 4))
        assert np.array_equal(cc.to_dense(), a)

    def test_all_zero(self):
        a = np.zeros((10, 10))
        cc = ChunkedCube.from_dense(a, (4, 4))
        assert cc.num_compressed == cc.num_chunks
        assert np.array_equal(cc.to_dense(), a)

    def test_chunk_larger_than_array(self):
        a = sparse_array((3, 3), density=0.5, seed=1)
        cc = ChunkedCube.from_dense(a, (10, 10))
        assert cc.num_chunks == 1
        assert np.array_equal(cc.to_dense(), a)


class TestCompressionDecision:
    def test_dense_chunks_stay_dense(self):
        a = np.ones((8, 8))
        cc = ChunkedCube.from_dense(a, (4, 4))
        assert cc.num_compressed == 0

    def test_sparse_chunks_compress(self):
        a = np.zeros((8, 8))
        a[0, 0] = 1.0  # fill ratio 1/64 < 0.4
        cc = ChunkedCube.from_dense(a, (8, 8))
        assert cc.num_compressed == 1
        assert isinstance(cc.chunk_at((0, 0)), CompressedChunk)

    def test_threshold_is_strict(self):
        # exactly at the threshold: NOT compressed (strict <)
        a = np.zeros((10,))
        a[: int(10 * ZHAO_FILL_THRESHOLD)] = 1.0
        cc = ChunkedCube.from_dense(a, (10,))
        assert cc.num_compressed == 0

    def test_custom_threshold(self):
        a = np.zeros((10,))
        a[:3] = 1.0  # 30% full
        assert ChunkedCube.from_dense(a, (10,), fill_threshold=0.2).num_compressed == 0
        assert ChunkedCube.from_dense(a, (10,), fill_threshold=0.5).num_compressed == 1

    def test_compression_saves_bytes_when_sparse(self):
        a = sparse_array((64, 64), density=0.05, seed=7)
        cc = ChunkedCube.from_dense(a, (16, 16))
        assert cc.nbytes < cc.dense_nbytes
        assert cc.compression_ratio > 1.0

    def test_invalid_threshold(self):
        with pytest.raises(CubeError):
            ChunkedCube.from_dense(np.zeros((4,)), (2,), fill_threshold=1.5)


class TestAggregation:
    def test_sum_without_decompression(self):
        a = sparse_array((20, 20), density=0.2, seed=9)
        cc = ChunkedCube.from_dense(a, (7, 7))
        assert np.isclose(cc.sum(), a.sum())

    def test_chunk_sums(self):
        a = np.arange(16, dtype=float).reshape(4, 4)
        cc = ChunkedCube.from_dense(a, (2, 2))
        assert np.isclose(cc.chunk_at((0, 0)).sum(), a[:2, :2].sum())
        assert np.isclose(cc.chunk_at((1, 1)).sum(), a[2:, 2:].sum())


class TestChunkObjects:
    def test_compressed_chunk_validation(self):
        with pytest.raises(CubeError):
            CompressedChunk(
                index=(0,),
                shape=(4,),
                offsets=np.array([0, 5]),  # out of range
                values=np.array([1.0, 2.0]),
            )

    def test_compressed_offsets_must_increase(self):
        with pytest.raises(CubeError):
            CompressedChunk(
                index=(0,),
                shape=(4,),
                offsets=np.array([2, 1]),
                values=np.array([1.0, 2.0]),
            )

    def test_fill_ratios(self):
        dense = DenseChunk(index=(0,), data=np.array([1.0, 0.0, 2.0, 0.0]))
        assert dense.fill_ratio == 0.5
        comp = CompressedChunk(
            index=(0,),
            shape=(4,),
            offsets=np.array([1]),
            values=np.array([3.0]),
        )
        assert comp.fill_ratio == 0.25

    def test_grid_shape(self):
        cc = ChunkedCube.from_dense(np.zeros((10, 7)), (4, 4))
        assert cc.grid_shape == (3, 2)
        assert cc.num_chunks == 6

    def test_missing_chunk(self):
        cc = ChunkedCube.from_dense(np.zeros((4, 4)), (4, 4))
        with pytest.raises(CubeError):
            cc.chunk_at((5, 5))

    def test_rank_mismatch(self):
        with pytest.raises(CubeError):
            ChunkedCube.from_dense(np.zeros((4, 4)), (4,))
