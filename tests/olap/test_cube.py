"""Unit tests for dense OLAP cubes: construction, roll-up, aggregation."""

import numpy as np
import pytest

from repro.errors import CubeError, QueryError
from repro.olap.cube import AggregateOp, OLAPCube


@pytest.fixture(scope="module")
def base_cube(fact_table):
    return OLAPCube.from_fact_table(
        fact_table, "sales_price", resolutions=[1, 1, 1], with_minmax=True
    )


class TestConstruction:
    def test_shape_matches_resolutions(self, base_cube, small_schema):
        expected = tuple(d.cardinality(1) for d in small_schema.dimensions)
        assert base_cube.shape == expected

    def test_total_sum_equals_column_sum(self, base_cube, fact_table):
        assert np.isclose(
            base_cube.component("sum").sum(), fact_table.column("sales_price").sum()
        )

    def test_total_count_equals_rows(self, base_cube, fact_table):
        assert base_cube.component("count").sum() == fact_table.num_rows

    def test_minmax_components_present(self, base_cube):
        assert "min" in base_cube.components and "max" in base_cube.components

    def test_without_minmax(self, fact_table):
        cube = OLAPCube.from_fact_table(fact_table, "quantity", resolutions=[0, 0, 0])
        assert "min" not in cube.components
        with pytest.raises(CubeError):
            cube.component("min")

    def test_max_cells_guard(self, fact_table):
        with pytest.raises(CubeError, match="GPU side"):
            OLAPCube.from_fact_table(
                fact_table, "quantity", resolutions=[3, 3, 3], max_cells=1000
            )

    def test_resolution_count_mismatch(self, fact_table):
        with pytest.raises(CubeError):
            OLAPCube.from_fact_table(fact_table, "quantity", resolutions=[0, 0])

    def test_missing_components_rejected(self, small_schema):
        dims = small_schema.dimensions
        shape = tuple(d.cardinality(0) for d in dims)
        with pytest.raises(CubeError, match="sum"):
            OLAPCube(dims, [0, 0, 0], {"count": np.zeros(shape)})

    def test_wrong_shape_rejected(self, small_schema):
        dims = small_schema.dimensions
        with pytest.raises(CubeError, match="shape"):
            OLAPCube(
                dims,
                [0, 0, 0],
                {"sum": np.zeros((2, 2, 2)), "count": np.zeros((2, 2, 2))},
            )

    def test_unknown_component_rejected(self, small_schema):
        dims = small_schema.dimensions
        shape = tuple(d.cardinality(0) for d in dims)
        with pytest.raises(CubeError, match="unknown"):
            OLAPCube(
                dims,
                [0, 0, 0],
                {
                    "sum": np.zeros(shape),
                    "count": np.zeros(shape),
                    "median": np.zeros(shape),
                },
            )

    def test_cell_nbytes(self, base_cube):
        # sum + count + min + max as float64
        assert base_cube.cell_nbytes == 32

    def test_empty_table(self, small_schema):
        from repro.relational.table import FactTable

        cols = {c.name: np.empty(0, dtype=c.dtype) for c in small_schema.columns}
        empty = FactTable(small_schema, cols)
        cube = OLAPCube.from_fact_table(empty, "quantity", resolutions=[0, 0, 0])
        assert cube.component("sum").sum() == 0.0


class TestRollup:
    def test_rollup_equals_direct_build(self, fact_table, base_cube):
        rolled = base_cube.rollup([0, 0, 0])
        direct = OLAPCube.from_fact_table(
            fact_table, "sales_price", resolutions=[0, 0, 0], with_minmax=True
        )
        for comp in ("sum", "count", "min", "max"):
            assert np.allclose(rolled.component(comp), direct.component(comp))

    def test_partial_rollup(self, fact_table, base_cube):
        rolled = base_cube.rollup([0, 1, 0])
        direct = OLAPCube.from_fact_table(
            fact_table, "sales_price", resolutions=[0, 1, 0], with_minmax=True
        )
        assert np.allclose(rolled.component("sum"), direct.component("sum"))

    def test_rollup_to_finer_rejected(self, base_cube):
        with pytest.raises(CubeError, match="finer"):
            base_cube.rollup([2, 1, 1])

    def test_rollup_identity(self, base_cube):
        same = base_cube.rollup(list(base_cube.resolutions))
        assert np.allclose(same.component("sum"), base_cube.component("sum"))

    def test_rollup_preserves_totals(self, base_cube):
        rolled = base_cube.rollup([0, 0, 0])
        assert np.isclose(
            rolled.component("sum").sum(), base_cube.component("sum").sum()
        )


class TestAggregate:
    def test_full_cube_sum(self, base_cube, fact_table):
        sel = [slice(None)] * 3
        assert np.isclose(
            base_cube.aggregate(sel, "sum"), fact_table.column("sales_price").sum()
        )

    def test_count(self, base_cube, fact_table):
        sel = [slice(None)] * 3
        assert base_cube.aggregate(sel, AggregateOp.COUNT) == fact_table.num_rows

    def test_avg_is_row_weighted(self, base_cube, fact_table):
        sel = [slice(None)] * 3
        assert np.isclose(
            base_cube.aggregate(sel, "avg"), fact_table.column("sales_price").mean()
        )

    def test_min_max_match_table(self, base_cube, fact_table):
        sel = [slice(None)] * 3
        col = fact_table.column("sales_price")
        assert np.isclose(base_cube.aggregate(sel, "min"), col.min())
        assert np.isclose(base_cube.aggregate(sel, "max"), col.max())

    def test_slice_selection(self, base_cube, fact_table, small_schema):
        d0 = small_schema.dimensions[0]
        col = fact_table.column(f"{d0.name}__{d0.level(1).name}")
        mask = (col >= 2) & (col < 5)
        expected = fact_table.column("sales_price")[mask].sum()
        sel = [slice(2, 5), slice(None), slice(None)]
        assert np.isclose(base_cube.aggregate(sel, "sum"), expected)

    def test_index_array_selection(self, base_cube, fact_table, small_schema):
        d1 = small_schema.dimensions[1]
        col = fact_table.column(f"{d1.name}__{d1.level(1).name}")
        codes = np.array([0, 3, 7])
        expected = fact_table.column("sales_price")[np.isin(col, codes)].sum()
        sel = [slice(None), codes, slice(None)]
        assert np.isclose(base_cube.aggregate(sel, "sum"), expected)

    def test_empty_selection_sum_is_zero(self, base_cube):
        # a coordinate range that matches no rows still sums to 0
        sel = [slice(0, 1), np.array([], dtype=np.intp), slice(None)]
        assert base_cube.aggregate(sel, "sum") == 0.0

    def test_empty_selection_avg_is_nan(self, base_cube):
        sel = [slice(0, 1), np.array([], dtype=np.intp), slice(None)]
        assert np.isnan(base_cube.aggregate(sel, "avg"))

    def test_min_ignores_empty_cells(self, base_cube):
        # min over the full cube must not return +inf from empty cells
        value = base_cube.aggregate([slice(None)] * 3, "min")
        assert np.isfinite(value)

    def test_wrong_selector_count(self, base_cube):
        with pytest.raises(QueryError):
            base_cube.aggregate([slice(None)], "sum")

    def test_axis_of_and_resolution_of(self, base_cube, small_schema):
        name = small_schema.dimensions[1].name
        assert base_cube.axis_of(name) == 1
        assert base_cube.resolution_of(name) == 1

    def test_unknown_dimension(self, base_cube):
        from repro.errors import DimensionError

        with pytest.raises(DimensionError):
            base_cube.axis_of("nope")


class TestAggregateOp:
    def test_components_needed(self):
        assert AggregateOp.AVG.components == ("sum", "count")
        assert AggregateOp.MIN.components == ("min",)

    def test_from_string(self):
        assert AggregateOp("sum") is AggregateOp.SUM

    def test_invalid_name(self):
        with pytest.raises(ValueError):
            AggregateOp("median")
