"""Unit tests for dimension hierarchies."""

import pytest

from repro.errors import DimensionError, ResolutionError
from repro.olap.hierarchy import DimensionHierarchy, Level


class TestLevel:
    def test_valid_level(self):
        lvl = Level("year", 10)
        assert lvl.name == "year"
        assert lvl.cardinality == 10

    def test_empty_name_rejected(self):
        with pytest.raises(DimensionError):
            Level("", 10)

    def test_zero_cardinality_rejected(self):
        with pytest.raises(DimensionError):
            Level("year", 0)

    def test_negative_cardinality_rejected(self):
        with pytest.raises(DimensionError):
            Level("year", -3)


class TestConstruction:
    def test_single_level(self):
        d = DimensionHierarchy("x", [Level("only", 7)])
        assert d.num_levels == 1
        assert d.finest_resolution == 0

    def test_refinement_chain(self, time_dim):
        assert [l.cardinality for l in time_dim] == [4, 48, 1440]

    def test_non_multiple_cardinality_rejected(self):
        with pytest.raises(DimensionError):
            DimensionHierarchy("t", [Level("a", 4), Level("b", 10)])

    def test_non_increasing_rejected(self):
        with pytest.raises(DimensionError):
            DimensionHierarchy("t", [Level("a", 4), Level("b", 4)])

    def test_duplicate_level_names_rejected(self):
        with pytest.raises(DimensionError):
            DimensionHierarchy("t", [Level("a", 4), Level("a", 8)])

    def test_empty_levels_rejected(self):
        with pytest.raises(DimensionError):
            DimensionHierarchy("t", [])

    def test_empty_name_rejected(self):
        with pytest.raises(DimensionError):
            DimensionHierarchy("", [Level("a", 4)])

    def test_equality_and_hash(self, time_dim):
        clone = DimensionHierarchy(
            "time", [Level("year", 4), Level("month", 48), Level("day", 1440)]
        )
        assert clone == time_dim
        assert hash(clone) == hash(time_dim)

    def test_inequality(self, time_dim):
        other = DimensionHierarchy("time", [Level("year", 4)])
        assert other != time_dim


class TestLookups:
    def test_level_by_resolution(self, time_dim):
        assert time_dim.level(1).name == "month"

    def test_resolution_of(self, time_dim):
        assert time_dim.resolution_of("day") == 2

    def test_resolution_of_unknown(self, time_dim):
        with pytest.raises(ResolutionError):
            time_dim.resolution_of("hour")

    def test_cardinality(self, time_dim):
        assert time_dim.cardinality(2) == 1440

    def test_check_resolution_bounds(self, time_dim):
        with pytest.raises(ResolutionError):
            time_dim.check_resolution(3)
        with pytest.raises(ResolutionError):
            time_dim.check_resolution(-1)

    def test_fanout(self, time_dim):
        assert time_dim.fanout(0) == 4  # from the virtual root
        assert time_dim.fanout(1) == 12  # months per year
        assert time_dim.fanout(2) == 30  # days per month


class TestCoordinateConversion:
    def test_coarsen_month_to_year(self, time_dim):
        assert time_dim.coarsen_coord(35, from_res=1, to_res=0) == 2

    def test_coarsen_identity(self, time_dim):
        assert time_dim.coarsen_coord(7, from_res=1, to_res=1) == 7

    def test_coarsen_to_finer_rejected(self, time_dim):
        with pytest.raises(ResolutionError):
            time_dim.coarsen_coord(0, from_res=0, to_res=1)

    def test_coarsen_out_of_range(self, time_dim):
        with pytest.raises(ResolutionError):
            time_dim.coarsen_coord(48, from_res=1, to_res=0)

    def test_refine_range_exact_blocks(self, time_dim):
        lo, hi = time_dim.refine_range(1, 3, from_res=0, to_res=1)
        assert (lo, hi) == (12, 36)

    def test_refine_range_identity(self, time_dim):
        assert time_dim.refine_range(5, 9, 1, 1) == (5, 9)

    def test_refine_to_coarser_rejected(self, time_dim):
        with pytest.raises(ResolutionError):
            time_dim.refine_range(0, 1, from_res=1, to_res=0)

    def test_refine_invalid_range(self, time_dim):
        with pytest.raises(ResolutionError):
            time_dim.refine_range(3, 2, 0, 1)
        with pytest.raises(ResolutionError):
            time_dim.refine_range(0, 5, 0, 1)  # hi beyond cardinality 4


class TestConvenienceConstructors:
    def test_from_fanouts(self):
        d = DimensionHierarchy.from_fanouts("t", ["y", "m", "d"], [8, 12, 30])
        assert [l.cardinality for l in d] == [8, 96, 2880]

    def test_from_fanouts_length_mismatch(self):
        with pytest.raises(DimensionError):
            DimensionHierarchy.from_fanouts("t", ["y", "m"], [8])

    def test_from_fanouts_fanout_one_rejected_between_levels(self):
        with pytest.raises(DimensionError):
            DimensionHierarchy.from_fanouts("t", ["a", "b"], [4, 1])

    def test_uniform(self):
        d = DimensionHierarchy.uniform("u", num_levels=3, fanout=4)
        assert [l.cardinality for l in d] == [4, 16, 64]

    def test_uniform_with_base(self):
        d = DimensionHierarchy.uniform("u", num_levels=2, fanout=5, base=10)
        assert [l.cardinality for l in d] == [10, 50]

    def test_uniform_zero_levels_rejected(self):
        with pytest.raises(DimensionError):
            DimensionHierarchy.uniform("u", num_levels=0, fanout=2)
