"""Tests for incremental cube maintenance and chunked range aggregation."""

import numpy as np
import pytest

from repro.errors import CubeError
from repro.olap.chunks import ChunkedCube
from repro.olap.cube import OLAPCube
from repro.olap.pyramid import CubePyramid
from repro.relational import generate_dataset, tpcds_like_schema
from repro.relational.table import FactTable


@pytest.fixture(scope="module")
def halves(small_schema):
    full = generate_dataset(small_schema, num_rows=6000, seed=44)
    mid = 3000
    cols_a = {c.name: full.table.column(c.name)[:mid] for c in small_schema.columns}
    cols_b = {c.name: full.table.column(c.name)[mid:] for c in small_schema.columns}
    return (
        full.table,
        FactTable(small_schema, cols_a),
        FactTable(small_schema, cols_b),
    )


class TestCubeIngest:
    def test_ingest_equals_full_build(self, halves):
        full, a, b = halves
        cube = OLAPCube.from_fact_table(a, "quantity", resolutions=[1, 1, 1])
        assert cube.ingest(b) == len(b)
        fresh = OLAPCube.from_fact_table(full, "quantity", resolutions=[1, 1, 1])
        assert np.allclose(cube.component("sum"), fresh.component("sum"))
        assert np.array_equal(cube.component("count"), fresh.component("count"))

    def test_ingest_with_minmax(self, halves):
        full, a, b = halves
        cube = OLAPCube.from_fact_table(
            a, "sales_price", resolutions=[0, 1, 0], with_minmax=True
        )
        cube.ingest(b)
        fresh = OLAPCube.from_fact_table(
            full, "sales_price", resolutions=[0, 1, 0], with_minmax=True
        )
        assert np.allclose(cube.component("min"), fresh.component("min"))
        assert np.allclose(cube.component("max"), fresh.component("max"))

    def test_ingest_empty_batch(self, halves, small_schema):
        _, a, _ = halves
        cube = OLAPCube.from_fact_table(a, "quantity", resolutions=[0, 0, 0])
        empty = FactTable(
            small_schema,
            {c.name: np.empty(0, dtype=c.dtype) for c in small_schema.columns},
        )
        before = cube.component("sum").copy()
        assert cube.ingest(empty) == 0
        assert np.array_equal(cube.component("sum"), before)

    def test_ingest_schema_mismatch(self, halves):
        _, a, _ = halves
        cube = OLAPCube.from_fact_table(a, "quantity", resolutions=[0, 0, 0])
        other_schema = tpcds_like_schema(scale=0.25)
        other = generate_dataset(other_schema, num_rows=10, seed=1).table
        with pytest.raises(CubeError, match="dimension"):
            cube.ingest(other)

    def test_ingest_repeatedly(self, halves):
        full, a, b = halves
        cube = OLAPCube.from_fact_table(a, "quantity", resolutions=[1, 0, 1])
        cube.ingest(b)
        cube.ingest(b)  # b twice: totals = a + 2b
        expected = (
            full.column("quantity").sum() + b.column("quantity").sum()
        )
        assert np.isclose(cube.component("sum").sum(), expected)


class TestPyramidIngest:
    def test_all_levels_updated(self, halves):
        full, a, b = halves
        pyr = CubePyramid.from_fact_table(a, "quantity", [0, 1, 2])
        pyr.ingest(b)
        fresh = CubePyramid.from_fact_table(full, "quantity", [0, 1, 2])
        for l1, l2 in zip(pyr.levels, fresh.levels):
            assert np.allclose(l1.cube.component("sum"), l2.cube.component("sum"))

    def test_queries_after_ingest(self, halves, small_schema):
        from repro.query.model import Condition, Query

        full, a, b = halves
        pyr = CubePyramid.from_fact_table(a, "quantity", [0, 1, 2])
        pyr.ingest(b)
        q = Query(conditions=(Condition("date", 1, lo=0, hi=8),), measures=("quantity",))
        assert np.isclose(pyr.answer(q), full.execute(q).value())

    def test_analytic_pyramid_rejected(self, small_schema, halves):
        _, a, _ = halves
        pyr = CubePyramid.analytic(small_schema.dimensions, [0, 1])
        with pytest.raises(CubeError, match="analytic"):
            pyr.ingest(a)


class TestChunkedRangeSum:
    @pytest.fixture()
    def array(self, rng):
        a = rng.random((23, 17, 9))
        a[a < 0.6] = 0.0
        return a

    def test_matches_dense_slice(self, array):
        cc = ChunkedCube.from_dense(array, (8, 8, 4))
        ranges = [(3, 19), (0, 11), (2, 9)]
        expected = array[3:19, 0:11, 2:9].sum()
        assert np.isclose(cc.sum_range(ranges), expected)

    def test_full_range_equals_sum(self, array):
        cc = ChunkedCube.from_dense(array, (8, 8, 4))
        full = [(0, s) for s in array.shape]
        assert np.isclose(cc.sum_range(full), cc.sum())

    def test_empty_range(self, array):
        cc = ChunkedCube.from_dense(array, (8, 8, 4))
        assert cc.sum_range([(5, 5), (0, 17), (0, 9)]) == 0.0

    def test_single_cell(self, array):
        cc = ChunkedCube.from_dense(array, (4, 4, 4))
        assert np.isclose(
            cc.sum_range([(10, 11), (4, 5), (7, 8)]), array[10, 4, 7]
        )

    def test_only_compressed_chunks(self, rng):
        a = np.zeros((16, 16))
        a[3, 3] = 5.0
        a[12, 9] = 7.0
        cc = ChunkedCube.from_dense(a, (8, 8))
        assert cc.num_compressed == cc.num_chunks
        assert np.isclose(cc.sum_range([(0, 8), (0, 8)]), 5.0)
        assert np.isclose(cc.sum_range([(8, 16), (8, 16)]), 7.0)
        assert np.isclose(cc.sum_range([(0, 16), (0, 16)]), 12.0)

    def test_validation(self, array):
        cc = ChunkedCube.from_dense(array, (8, 8, 4))
        with pytest.raises(CubeError):
            cc.sum_range([(0, 5)])  # wrong rank
        with pytest.raises(CubeError):
            cc.sum_range([(0, 99), (0, 17), (0, 9)])  # out of bounds
        with pytest.raises(CubeError):
            cc.sum_range([(5, 3), (0, 17), (0, 9)])  # inverted
