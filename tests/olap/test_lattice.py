"""Unit tests for the group-by lattice and smallest-parent planning."""

import networkx as nx
import pytest

from repro.errors import CubeError
from repro.olap.hierarchy import DimensionHierarchy
from repro.olap.lattice import CubeLattice


@pytest.fixture()
def dims():
    return [
        DimensionHierarchy.uniform("a", 2, 4),  # cards 4, 16
        DimensionHierarchy.uniform("b", 2, 3),  # cards 3, 9
        DimensionHierarchy.uniform("c", 1, 5),  # card 5
    ]


@pytest.fixture()
def lattice(dims):
    return CubeLattice(dims)


class TestStructure:
    def test_num_cuboids_is_power_of_two(self, lattice):
        assert lattice.num_cuboids == 8

    def test_base_and_apex(self, lattice):
        assert lattice.base == frozenset({"a", "b", "c"})
        assert lattice.apex == frozenset()

    def test_edges_drop_one_dimension(self, lattice):
        for parent, child in lattice.graph.edges:
            assert child < parent
            assert len(parent - child) == 1

    def test_parents_and_children(self, lattice):
        node = frozenset({"a"})
        assert frozenset({"a", "b"}) in lattice.parents(node)
        assert lattice.children(node) == [frozenset()]

    def test_cuboids_ordered_coarse_first(self, lattice):
        order = lattice.cuboids()
        assert order[0] == frozenset()
        assert order[-1] == lattice.base

    def test_duplicate_dims_rejected(self, dims):
        with pytest.raises(CubeError):
            CubeLattice([dims[0], dims[0]])

    def test_empty_dims_rejected(self):
        with pytest.raises(CubeError):
            CubeLattice([])


class TestSizes:
    def test_cuboid_size_product(self, lattice):
        assert lattice.cuboid_size(frozenset({"a", "b"})) == 16 * 9
        assert lattice.cuboid_size(frozenset()) == 1

    def test_size_uses_given_resolutions(self, dims):
        lat = CubeLattice(dims, resolutions=[0, 0, 0])
        assert lat.cuboid_size(frozenset({"a", "b"})) == 4 * 3

    def test_unknown_dimension_rejected(self, lattice):
        with pytest.raises(CubeError):
            lattice.cuboid_size(frozenset({"z"}))


class TestSmallestParentTree:
    def test_is_spanning_arborescence(self, lattice):
        tree = lattice.smallest_parent_tree()
        assert tree.number_of_nodes() == lattice.num_cuboids
        assert tree.number_of_edges() == lattice.num_cuboids - 1
        assert nx.is_arborescence(tree)

    def test_every_node_from_smallest_parent(self, lattice):
        tree = lattice.smallest_parent_tree()
        for node in lattice.graph.nodes:
            if node == lattice.base:
                continue
            (parent,) = tree.predecessors(node)
            smallest = min(lattice.cuboid_size(p) for p in lattice.parents(node))
            assert lattice.cuboid_size(parent) == smallest

    def test_computation_order_is_valid(self, lattice):
        computed = set()
        for cuboid, source in lattice.computation_order():
            if source is None:
                assert cuboid == lattice.base
            else:
                assert source in computed
            computed.add(cuboid)
        assert len(computed) == lattice.num_cuboids

    def test_total_tree_cost_minimal_among_parents(self, lattice):
        # tree cost must be <= the cost of always using the base cuboid
        base_cost = (lattice.num_cuboids - 1) * lattice.cuboid_size(lattice.base)
        assert lattice.total_tree_cost() <= base_cost

    def test_single_dimension_lattice(self):
        lat = CubeLattice([DimensionHierarchy.uniform("x", 1, 7)])
        assert lat.num_cuboids == 2
        order = lat.computation_order()
        assert order[0] == (frozenset({"x"}), None)
        assert order[1] == (frozenset(), frozenset({"x"}))
