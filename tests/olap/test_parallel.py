"""Unit tests for the thread-parallel aggregation engine."""

import numpy as np
import pytest

from repro.errors import CubeError, QueryError
from repro.olap.cube import OLAPCube
from repro.olap.parallel import ParallelAggregator
from repro.query.model import Condition, Query


@pytest.fixture(scope="module")
def cube(fact_table):
    return OLAPCube.from_fact_table(
        fact_table, "sales_price", resolutions=[1, 1, 1], with_minmax=True
    )


class TestReduceArray:
    @pytest.mark.parametrize("threads", [1, 2, 4, 8])
    def test_sum_matches_numpy(self, threads, rng):
        a = rng.random((1000, 7))
        agg = ParallelAggregator(num_threads=threads)
        assert np.isclose(agg.reduce_array(a, "add"), a.sum())

    @pytest.mark.parametrize("threads", [1, 3])
    def test_min_max(self, threads, rng):
        a = rng.normal(size=5000)
        agg = ParallelAggregator(num_threads=threads)
        assert agg.reduce_array(a, "min") == a.min()
        assert agg.reduce_array(a, "max") == a.max()

    def test_empty_sum_is_zero(self):
        agg = ParallelAggregator(num_threads=2)
        assert agg.reduce_array(np.empty(0), "add") == 0.0

    def test_empty_min_rejected(self):
        agg = ParallelAggregator(num_threads=2)
        with pytest.raises(QueryError):
            agg.reduce_array(np.empty(0), "min")

    def test_unknown_reduction(self):
        with pytest.raises(QueryError):
            ParallelAggregator().reduce_array(np.ones(4), "mean")

    def test_more_threads_than_rows(self, rng):
        a = rng.random(3)
        agg = ParallelAggregator(num_threads=16)
        assert np.isclose(agg.reduce_array(a, "add"), a.sum())

    def test_invalid_thread_count(self):
        with pytest.raises(CubeError):
            ParallelAggregator(num_threads=0)


class TestAggregate:
    @pytest.mark.parametrize("threads", [1, 4])
    @pytest.mark.parametrize("agg_name", ["sum", "count", "avg", "min", "max"])
    def test_matches_sequential_cube(self, cube, threads, agg_name, small_schema):
        d0 = small_schema.dimensions[0].name
        measures = () if agg_name == "count" else ("sales_price",)
        q = Query(
            conditions=(Condition(d0, 1, lo=1, hi=9),),
            measures=measures,
            agg=agg_name,
        )
        from repro.olap.subcube import answer_with_cube

        sequential = answer_with_cube(cube, q)
        parallel = ParallelAggregator(num_threads=threads).aggregate(cube, q).value
        assert np.isclose(parallel, sequential, equal_nan=True)

    def test_bytes_streamed_matches_spec(self, cube, small_schema):
        from repro.olap.subcube import spec_for_query

        d0 = small_schema.dimensions[0].name
        q = Query(conditions=(Condition(d0, 1, lo=0, hi=4),), measures=("sales_price",))
        result = ParallelAggregator(num_threads=2).aggregate(cube, q)
        assert result.bytes_streamed == spec_for_query(cube, q).nbytes

    def test_codes_selection(self, cube, small_schema, fact_table):
        d1 = small_schema.dimensions[1]
        q = Query(
            conditions=(Condition(d1.name, 1, codes=(0, 5, 9)),),
            measures=("sales_price",),
        )
        result = ParallelAggregator(num_threads=4).aggregate(cube, q)
        assert np.isclose(result.value, fact_table.execute(q).value("sales_price"))

    def test_result_metadata(self, cube):
        q = Query(conditions=(), measures=("sales_price",))
        result = ParallelAggregator(num_threads=4).aggregate(cube, q)
        assert result.num_threads == 4
        assert result.num_blocks >= 1
