"""Unit tests for the multi-resolution cube pyramid (Figure 1)."""

import numpy as np
import pytest

from repro.errors import CubeError, CubeNotAvailableError
from repro.olap.pyramid import CubePyramid, PyramidLevel
from repro.query.model import Condition, Query
from repro.units import MB


class TestConstruction:
    def test_levels_sorted_by_size(self, pyramid):
        sizes = [pyramid.level_nbytes(l) for l in pyramid.levels]
        assert sizes == sorted(sizes)

    def test_materialised(self, pyramid):
        assert all(l.materialised for l in pyramid.levels)

    def test_analytic_pyramid_shapes(self, small_schema):
        pyr = CubePyramid.analytic(small_schema.dimensions, [0, 1, 2], cell_nbytes=8)
        assert len(pyr.levels) == 3
        assert not any(l.materialised for l in pyr.levels)
        coarsest = pyr.levels[0]
        expected = 8
        for d, r in zip(pyr.dimensions, coarsest.resolutions):
            expected *= d.cardinality(r)
        assert pyr.level_nbytes(coarsest) == expected

    def test_empty_levels_rejected(self, small_schema):
        with pytest.raises(CubeError):
            CubePyramid(small_schema.dimensions, [])

    def test_resolution_mismatch_rejected(self, small_schema):
        with pytest.raises(CubeError):
            CubePyramid(
                small_schema.dimensions,
                [PyramidLevel(resolutions=(0, 0), cell_nbytes=8)],
            )

    def test_total_nbytes(self, pyramid):
        assert pyramid.total_nbytes == sum(
            pyramid.level_nbytes(l) for l in pyramid.levels
        )

    def test_rollup_levels_match_direct(self, fact_table):
        pyr = CubePyramid.from_fact_table(fact_table, "quantity", [0, 2])
        from repro.olap.cube import OLAPCube

        direct = OLAPCube.from_fact_table(fact_table, "quantity", resolutions=[0, 0, 0])
        assert np.allclose(
            pyr.levels[0].cube.component("sum"), direct.component("sum")
        )


class TestSelection:
    def test_selects_smallest_sufficient(self, pyramid, small_schema):
        d0 = small_schema.dimensions[0].name
        q = Query(conditions=(Condition(d0, 1, lo=0, hi=2),), measures=("sales_price",))
        level = pyramid.select_level(q)
        assert max(level.resolutions) == 1

    def test_unconstrained_uses_coarsest(self, pyramid):
        q = Query(conditions=(), measures=("sales_price",))
        assert pyramid.select_level(q) is pyramid.levels[0]

    def test_too_fine_raises(self, pyramid, small_schema):
        d0 = small_schema.dimensions[0].name
        q = Query(conditions=(Condition(d0, 3, lo=0, hi=5),), measures=("sales_price",))
        with pytest.raises(CubeNotAvailableError):
            pyramid.select_level(q)

    def test_unknown_dimension_raises(self, pyramid):
        q = Query(
            conditions=(Condition("cust", 0, lo=0, hi=1),), measures=("sales_price",)
        )
        with pytest.raises(CubeNotAvailableError):
            pyramid.select_level(q)

    def test_eq2_max_over_conditions(self, pyramid, small_schema):
        d = [d.name for d in small_schema.dimensions]
        q = Query(
            conditions=(
                Condition(d[0], 0, lo=0, hi=1),
                Condition(d[1], 2, lo=0, hi=5),
            ),
            measures=("sales_price",),
        )
        level = pyramid.select_level(q)
        assert max(level.resolutions) == 2


class TestSubcubeSize:
    def test_full_scan_size(self, pyramid):
        q = Query(conditions=(), measures=("sales_price",))
        level = pyramid.levels[0]
        assert np.isclose(
            pyramid.subcube_size_mb(q), pyramid.level_nbytes(level) / MB
        )

    def test_range_width(self, pyramid, small_schema):
        d0 = small_schema.dimensions[0]
        q = Query(
            conditions=(Condition(d0.name, 1, lo=0, hi=6),), measures=("sales_price",)
        )
        level = pyramid.select_level(q)
        other = 1
        for d, r in zip(pyramid.dimensions, level.resolutions):
            if d.name != d0.name:
                other *= d.cardinality(r)
        expected = 6 * other * level.cell_nbytes / MB
        assert np.isclose(pyramid.subcube_size_mb(q), expected)

    def test_text_condition_width_is_literal_count(self, pyramid, small_schema):
        # text literals resolve to one member each on the CPU path
        d1 = small_schema.dimensions[1]
        q = Query(
            conditions=(Condition(d1.name, 2, text_values=("a", "b"),),),
            measures=("sales_price",),
        )
        level = pyramid.select_level(q)
        other = 1
        for d, r in zip(pyramid.dimensions, level.resolutions):
            if d.name != d1.name:
                other *= d.cardinality(r)
        expected = 2 * other * level.cell_nbytes / MB
        assert np.isclose(pyramid.subcube_size_mb(q), expected)

    def test_scanned_bytes_matches_spec(self, pyramid, small_schema):
        d0 = small_schema.dimensions[0].name
        q = Query(conditions=(Condition(d0, 1, lo=1, hi=4),), measures=("sales_price",))
        assert pyramid.scanned_bytes(q) > 0


class TestAnswer:
    def test_answer_matches_table(self, pyramid, fact_table, small_schema):
        d0 = small_schema.dimensions[0].name
        q = Query(
            conditions=(Condition(d0, 1, lo=2, hi=8),),
            measures=("sales_price",),
            agg="sum",
        )
        assert np.isclose(
            pyramid.answer(q), fact_table.execute(q).value("sales_price")
        )

    def test_analytic_level_cannot_answer(self, small_schema):
        pyr = CubePyramid.analytic(small_schema.dimensions, [0])
        q = Query(conditions=(), measures=("value",))
        with pytest.raises(CubeError, match="analytic"):
            pyr.answer(q)


class TestLevelsMAndG:
    def test_level_m_budget(self, small_schema):
        pyr = CubePyramid.analytic(small_schema.dimensions, [0, 1, 2], cell_nbytes=8)
        sizes = [pyr.level_nbytes(l) for l in pyr.levels]
        m = pyr.level_m(sizes[1])
        assert pyr.level_nbytes(m) == sizes[1]

    def test_level_m_none_when_budget_tiny(self, small_schema):
        pyr = CubePyramid.analytic(small_schema.dimensions, [0, 1, 2], cell_nbytes=8)
        assert pyr.level_m(1) is None

    def test_level_g_equilibrium(self, small_schema):
        pyr = CubePyramid.analytic(small_schema.dimensions, [0, 1, 2], cell_nbytes=8)
        # CPU: 1 ms per MB; GPU flat 10 ms -> level G is the finest level
        # under 10 MB
        g = pyr.level_g(lambda mb: mb * 1e-3, 10e-3)
        assert g is not None
        assert pyr.level_nbytes(g) <= 10 * MB

    def test_level_g_none_when_gpu_always_wins(self, small_schema):
        pyr = CubePyramid.analytic(small_schema.dimensions, [0, 1, 2], cell_nbytes=8)
        assert pyr.level_g(lambda mb: 1.0 + mb, 1e-9) is None
