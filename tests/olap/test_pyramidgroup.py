"""Tests for multi-measure pyramid groups."""

import numpy as np
import pytest

from repro.errors import CubeError, CubeNotAvailableError
from repro.olap.pyramid import CubePyramid, PyramidGroup
from repro.query.model import Condition, Query


@pytest.fixture(scope="module")
def group(fact_table):
    return PyramidGroup.from_fact_table(
        fact_table, ["quantity", "sales_price"], [0, 1, 2]
    )


class TestDispatch:
    def test_measures(self, group):
        assert group.measures == ("quantity", "sales_price")

    def test_answers_per_measure(self, group, fact_table):
        for measure in ("quantity", "sales_price"):
            q = Query(
                conditions=(Condition("date", 1, lo=0, hi=8),), measures=(measure,)
            )
            assert np.isclose(group.answer(q), fact_table.execute(q).value())

    def test_count_uses_any_pyramid(self, group, fact_table):
        q = Query(conditions=(Condition("store", 1, lo=0, hi=9),), measures=(), agg="count")
        assert group.answer(q) == fact_table.execute(q).value()

    def test_unknown_measure_is_cube_not_available(self, group):
        q = Query(conditions=(), measures=("net_profit",))
        with pytest.raises(CubeNotAvailableError, match="net_profit"):
            group.answer(q)

    def test_subcube_size_matches_member(self, group, fact_table):
        q = Query(conditions=(Condition("date", 1, lo=0, hi=4),), measures=("quantity",))
        single = CubePyramid.from_fact_table(fact_table, "quantity", [0, 1, 2])
        assert group.subcube_size_mb(q) == single.subcube_size_mb(q)

    def test_select_level(self, group):
        q = Query(conditions=(Condition("date", 2, lo=0, hi=4),), measures=("quantity",))
        assert max(group.select_level(q).resolutions) == 2


class TestConstruction:
    def test_from_sequence(self, fact_table):
        pyramids = [
            CubePyramid.from_fact_table(fact_table, m, [0, 1])
            for m in ("quantity", "net_profit")
        ]
        group = PyramidGroup(pyramids)
        assert group.measures == ("net_profit", "quantity")

    def test_empty_rejected(self):
        with pytest.raises(CubeError):
            PyramidGroup({})

    def test_mismatched_registration(self, fact_table):
        p = CubePyramid.from_fact_table(fact_table, "quantity", [0])
        with pytest.raises(CubeError, match="registered"):
            PyramidGroup({"sales_price": p})

    def test_total_nbytes_sums_members(self, group, fact_table):
        single = CubePyramid.from_fact_table(fact_table, "quantity", [0, 1, 2])
        assert group.total_nbytes == 2 * single.total_nbytes

    def test_levels_union(self, group):
        assert len(group.levels) == 6  # 3 levels x 2 measures


class TestIngest:
    def test_ingest_updates_all_measures(self, small_schema):
        from repro.relational import generate_dataset

        full = generate_dataset(small_schema, num_rows=4000, seed=55)
        from repro.relational.table import FactTable

        mid = 2000
        a = FactTable(
            small_schema,
            {c.name: full.table.column(c.name)[:mid] for c in small_schema.columns},
        )
        b = FactTable(
            small_schema,
            {c.name: full.table.column(c.name)[mid:] for c in small_schema.columns},
        )
        group = PyramidGroup.from_fact_table(a, ["quantity", "sales_price"], [0, 1])
        group.ingest(b)
        for measure in ("quantity", "sales_price"):
            q = Query(conditions=(), measures=(measure,))
            assert np.isclose(group.answer(q), full.table.execute(q).value())


class TestSystemIntegration:
    def test_multi_measure_workload(self, fact_table, group, small_schema, dataset):
        """A workload mixing measures runs end-to-end with a PyramidGroup."""
        from repro.core.perfmodel import XEON_X5667_8T
        from repro.gpu import SimulatedGPU, paper_partition_scheme
        from repro.gpu.timing import TESLA_C2070_TIMING
        from repro.query.workload import QueryClass, WorkloadSpec
        from repro.sim import HybridSystem, SystemConfig
        from repro.text import TranslationService, build_dictionaries
        from repro.units import GB

        device = SimulatedGPU(global_memory_bytes=GB, timing=TESLA_C2070_TIMING)
        device.load_table(fact_table)
        config = SystemConfig(
            cpu_model=XEON_X5667_8T.with_overhead(0.002),
            pyramid=group,
            device=device,
            scheme=paper_partition_scheme(),
            translation_service=TranslationService(
                build_dictionaries(dataset.vocabularies), small_schema.hierarchies
            ),
            time_constraint=0.5,
        )
        wl = WorkloadSpec(
            small_schema.dimensions,
            [QueryClass("mixed", 1.0, resolution=1, coverage=(0.1, 0.6))],
            measures=("quantity", "sales_price"),
            seed=66,
        )
        stream = wl.generate(150)
        report = HybridSystem(config).run(stream)
        assert report.completed == 150
        # verify every answer against the reference scan
        by_id = {e.query.query_id: e.query for e in stream}
        for record in report.records:
            q = by_id[record.query_id]
            expected = fact_table.execute(q).value()
            assert np.isclose(record.answer, expected, equal_nan=True)
