"""Unit tests for the rollup router + materialised answer cache.

Covers the catalog (materialise / install / coverage walk / coherence),
the executor (answer parity with the pyramid), the admission policy
(greedy frequency × cost / bytes under budget) and the router façade
(hit records, miss bookkeeping, background maintenance).
"""

import threading
import time

import numpy as np
import pytest

from repro.errors import RollupError
from repro.olap import (
    ROLLUP_TARGET,
    AdmissionPolicy,
    CuboidSpec,
    RollupCatalog,
    RollupExecutor,
    RollupRouter,
)
from repro.query.model import Condition, Query
from repro.relational.table import FactTable
from repro.serve import FakeClock, WorkerPool
from repro.serve.pool import EngineState


def q(dim, res, lo, hi, **kw):
    kw.setdefault("measures", ("sales_price",))
    return Query(conditions=(Condition(dim, res, lo=lo, hi=hi),), **kw)


def split_table(table, at=None):
    """The table's rows as two stacked FactTables (ingest test input)."""
    at = table.num_rows // 2 if at is None else at
    names = [c.name for c in table.schema.columns]
    first = FactTable(table.schema, {n: table.column(n)[:at] for n in names})
    second = FactTable(table.schema, {n: table.column(n)[at:] for n in names})
    return first, second


@pytest.fixture
def catalog(fact_table):
    return RollupCatalog(fact_table, "sales_price")


@pytest.fixture
def full_catalog(catalog, small_schema):
    """Catalog with the all-dims resolution-2 cuboid installed."""
    names = tuple(d.name for d in small_schema.dimensions)
    catalog.materialise_and_install(
        CuboidSpec(dims=names, resolutions=(2,) * len(names))
    )
    return catalog


class TestCuboidSpec:
    def test_dims_sorted_with_resolutions(self):
        spec = CuboidSpec(dims=("store", "date"), resolutions=(2, 1))
        assert spec.dims == ("date", "store")
        assert spec.resolutions == (1, 2)
        assert spec.key == frozenset({"date", "store"})

    def test_resolution_of(self):
        spec = CuboidSpec(dims=("date",), resolutions=(1,))
        assert spec.resolution_of("date") == 1
        with pytest.raises(RollupError):
            spec.resolution_of("store")

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(dims=(), resolutions=()),
            dict(dims=("date", "date"), resolutions=(1, 1)),
            dict(dims=("date",), resolutions=(1, 2)),
            dict(dims=("date",), resolutions=(1,), min_support=0),
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(RollupError):
            CuboidSpec(**kwargs)


class TestCatalog:
    def test_unknown_measure_rejected(self, fact_table):
        with pytest.raises(Exception):
            RollupCatalog(fact_table, "no_such_measure")

    def test_materialise_and_install(self, catalog):
        spec = CuboidSpec(dims=("date",), resolutions=(1,))
        cuboid = catalog.materialise_and_install(spec)
        assert len(catalog) == 1
        assert ("date",) in catalog
        assert catalog.get(("date",)) is cuboid
        assert cuboid.built_rows == catalog.row_count
        assert cuboid.pruned_cells == 0
        assert catalog.total_nbytes == cuboid.nbytes

    def test_install_last_wins(self, catalog):
        a = catalog.materialise(CuboidSpec(dims=("date",), resolutions=(1,)))
        b = catalog.materialise(CuboidSpec(dims=("date",), resolutions=(2,)))
        catalog.install(a)
        catalog.install(b)
        assert len(catalog) == 1
        assert catalog.get(("date",)) is b

    def test_drop_and_invalidate(self, full_catalog):
        assert full_catalog.invalidate() == 1
        assert len(full_catalog) == 0
        assert not full_catalog.drop(("date",))

    def test_estimated_nbytes_matches_shape(self, catalog, small_schema):
        spec = CuboidSpec(dims=("date", "store"), resolutions=(1, 1))
        by_dim = {d.name: d for d in small_schema.dimensions}
        cells = 1
        for name, res in zip(spec.dims, spec.resolutions):
            dim = by_dim[name]
            cells *= dim.cardinality(dim.check_resolution(res))
        assert catalog.estimated_nbytes(spec) == cells * 32
        with pytest.raises(RollupError):
            catalog.estimated_nbytes(
                CuboidSpec(dims=("nope",), resolutions=(1,))
            )

    def test_cuboid_sums_match_pyramid(self, full_catalog, pyramid):
        query = q("date", 1, 0, 3)
        cuboid = full_catalog.covers(query)
        assert cuboid is not None
        got = RollupExecutor(full_catalog).answer(query, cuboid)
        assert got == pytest.approx(pyramid.answer(query), rel=1e-12)


class TestCovers:
    def test_subset_dims_covered(self, full_catalog):
        assert full_catalog.covers(q("date", 1, 0, 2)) is not None
        assert full_catalog.covers(q("store", 2, 0, 5)) is not None

    def test_coarser_cuboid_does_not_cover_finer_query(self, catalog):
        catalog.materialise_and_install(
            CuboidSpec(dims=("date",), resolutions=(1,))
        )
        assert catalog.covers(q("date", 1, 0, 2)) is not None
        assert catalog.covers(q("date", 2, 0, 2)) is None

    def test_walk_prefers_coarsest_sufficient(self, catalog):
        catalog.materialise_and_install(
            CuboidSpec(dims=("date",), resolutions=(2,))
        )
        catalog.materialise_and_install(
            CuboidSpec(dims=("date", "store"), resolutions=(2, 2))
        )
        hit = catalog.covers(q("date", 1, 0, 2))
        assert hit.spec.dims == ("date",)

    def test_text_query_never_covered(self, full_catalog):
        query = Query(
            conditions=(Condition("store", 1, text_values=("x",)),),
            measures=("sales_price",),
        )
        assert query.needs_translation
        assert full_catalog.covers(query) is None

    def test_measure_mismatch_not_covered(self, full_catalog):
        assert full_catalog.covers(
            q("date", 1, 0, 2, measures=("quantity",))
        ) is None

    def test_count_ignores_measure(self, full_catalog):
        query = q("date", 1, 0, 2, measures=("quantity",), agg="count")
        assert full_catalog.covers(query) is not None

    def test_unknown_dimension_not_covered(self, full_catalog):
        query = Query(
            conditions=(Condition("martian", 1, lo=0, hi=2),),
            measures=("sales_price",),
        )
        assert full_catalog.covers(query) is None

    def test_group_by_resolution_counts(self, catalog):
        catalog.materialise_and_install(
            CuboidSpec(dims=("date", "store"), resolutions=(1, 1))
        )
        fine_group = Query(
            conditions=(Condition("date", 1, lo=0, hi=2),),
            measures=("sales_price",),
            group_by=(("store", 2),),
        )
        assert catalog.covers(fine_group) is None

    def test_would_cover(self, full_catalog):
        assert full_catalog.would_cover({"date": 2})
        assert not full_catalog.would_cover({"date": 3})


class TestCoherence:
    def test_iceberg_pruning_blocks_coverage(self, catalog, pyramid):
        spec = CuboidSpec(
            dims=("date", "store", "item"),
            resolutions=(2, 2, 2),
            min_support=10_000,
        )
        cuboid = catalog.materialise_and_install(spec)
        assert cuboid.pruned_cells > 0
        assert catalog.covers(q("date", 1, 0, 2)) is None

    def test_mark_stale_blocks_coverage(self, full_catalog):
        query = q("date", 1, 0, 2)
        assert full_catalog.covers(query) is not None
        full_catalog.mark_stale(full_catalog.row_count + 5)
        assert full_catalog.covers(query) is None
        with pytest.raises(RollupError):
            full_catalog.mark_stale(0)

    def test_ingest_fold_equals_rebuild(self, small_schema, dataset):
        table = dataset.table
        first, second = split_table(table)
        catalog = RollupCatalog(first, "sales_price")
        spec = CuboidSpec(dims=("date", "store"), resolutions=(1, 1))
        catalog.materialise_and_install(spec)
        catalog.ingest(second)
        folded = catalog.get(("date", "store"))
        assert folded.built_rows == table.num_rows

        whole = RollupCatalog(table, "sales_price")
        rebuilt = whole.materialise(spec)
        for comp in ("sum", "count", "min", "max"):
            np.testing.assert_allclose(
                folded.cube.component(comp), rebuilt.cube.component(comp)
            )

    def test_ingest_drops_iceberg_cuboids(self, small_schema, dataset):
        first, second = split_table(dataset.table)
        catalog = RollupCatalog(first, "sales_price")
        catalog.materialise_and_install(
            CuboidSpec(dims=("date",), resolutions=(1,))
        )
        catalog.materialise_and_install(
            CuboidSpec(dims=("store",), resolutions=(1,), min_support=100)
        )
        catalog.ingest(second)
        assert ("date",) in catalog
        assert ("store",) not in catalog

    def test_materialise_after_ingest_sees_all_rows(self, dataset):
        table = dataset.table
        first, second = split_table(table)
        catalog = RollupCatalog(first, "sales_price")
        catalog.ingest(second)
        built = catalog.materialise(CuboidSpec(dims=("date",), resolutions=(1,)))
        assert built.built_rows == table.num_rows
        whole = RollupCatalog(table, "sales_price").materialise(
            CuboidSpec(dims=("date",), resolutions=(1,))
        )
        np.testing.assert_allclose(
            built.cube.component("sum"), whole.cube.component("sum")
        )


class TestAdmissionPolicy:
    def test_spec_for_merges_conditions_and_group_by(self):
        query = Query(
            conditions=(Condition("store", 1, lo=0, hi=2),),
            measures=("sales_price",),
            group_by=(("store", 2), ("date", 1)),
        )
        spec = AdmissionPolicy.spec_for(query)
        assert spec.dims == ("date", "store")
        assert spec.resolutions == (1, 2)

    def test_spec_for_text_and_unconstrained(self):
        text = Query(
            conditions=(Condition("store", 1, text_values=("x",)),),
            measures=("sales_price",),
        )
        assert AdmissionPolicy.spec_for(text) is None
        assert AdmissionPolicy.spec_for(
            Query(conditions=(), measures=("sales_price",))
        ) is None

    def test_min_frequency_gates_plan(self, catalog):
        policy = AdmissionPolicy(byte_budget=1 << 30, min_frequency=2)
        policy.observe(q("date", 1, 0, 2))
        assert policy.plan(catalog) == []
        policy.observe(q("date", 1, 0, 3))
        plans = policy.plan(catalog)
        assert plans == [CuboidSpec(dims=("date",), resolutions=(1,))]

    def test_plan_skips_already_covered(self, full_catalog):
        policy = AdmissionPolicy(byte_budget=1 << 30)
        for _ in range(3):
            policy.observe(q("date", 1, 0, 2))
        assert policy.plan(full_catalog) == []

    def test_plan_respects_budget(self, catalog):
        policy = AdmissionPolicy(byte_budget=0)
        for _ in range(3):
            policy.observe(q("date", 1, 0, 2))
        assert policy.plan(catalog) == []

    def test_plan_greedy_order_prefers_cheap_frequent(self, catalog):
        policy = AdmissionPolicy(byte_budget=1 << 30)
        for _ in range(2):
            policy.observe(q("date", 2, 0, 2))  # bigger cuboid, fewer hits
        for _ in range(10):
            policy.observe(q("store", 1, 0, 2))  # small cuboid, many hits
        plans = policy.plan(catalog)
        assert plans[0] == CuboidSpec(dims=("store",), resolutions=(1,))
        # budget that only fits the small one drops the big one
        small = catalog.estimated_nbytes(plans[0])
        tight = AdmissionPolicy(byte_budget=small, min_frequency=2)
        for _ in range(2):
            tight.observe(q("date", 2, 0, 2))
        for _ in range(10):
            tight.observe(q("store", 1, 0, 2))
        assert tight.plan(catalog) == [plans[0]]

    def test_plan_ignores_unknown_dimensions(self, catalog):
        policy = AdmissionPolicy(byte_budget=1 << 30)
        alien = Query(
            conditions=(Condition("martian", 1, lo=0, hi=2),),
            measures=("sales_price",),
        )
        for _ in range(3):
            policy.observe(alien)
        assert policy.plan(catalog) == []

    def test_observed_cost_feeds_mean(self, catalog):
        policy = AdmissionPolicy(byte_budget=1 << 30)
        policy.observe(q("date", 1, 0, 2), cost=0.2)
        policy.observe(q("date", 1, 0, 3), cost=0.4)
        (stats,) = policy.shapes()
        assert stats.count == 2
        assert stats.mean_cost == pytest.approx(0.3)


class TestExecutor:
    def test_answer_raises_on_miss(self, catalog):
        with pytest.raises(RollupError):
            RollupExecutor(catalog).answer(q("date", 1, 0, 2))

    @pytest.mark.parametrize("agg", ["sum", "avg", "min", "max", "count"])
    def test_agg_parity_with_reference_scan(self, full_catalog, fact_table, agg):
        query = q("date", 1, 0, 3, agg=agg)
        got = RollupExecutor(full_catalog).answer(query)
        assert got == pytest.approx(
            fact_table.execute(query).value(), rel=1e-9
        )


class TestRouter:
    def test_hit_returns_zero_cost_record(self, full_catalog, pyramid):
        router = RollupRouter(full_catalog)
        query = q("date", 1, 0, 3)
        rec = router.serve(query, "small", now=4.0, deadline=4.5)
        assert rec is not None
        assert rec.target == ROLLUP_TARGET
        assert rec.submit_time == rec.finish_time == 4.0
        assert rec.estimated_time == rec.measured_time == 0.0
        assert rec.answer == pytest.approx(pyramid.answer(query), rel=1e-12)
        assert router.hits == 1 and router.misses == 0
        assert router.hit_rate == 1.0

    def test_miss_feeds_policy(self, catalog):
        policy = AdmissionPolicy(byte_budget=1 << 30)
        router = RollupRouter(catalog, policy=policy)
        assert router.serve(q("date", 1, 0, 2)) is None
        assert router.misses == 1 and router.hit_rate == 0.0
        (stats,) = policy.shapes()
        assert stats.count == 1

    def test_maintain_requires_policy(self, catalog):
        with pytest.raises(RollupError):
            RollupRouter(catalog).maintain()

    def test_maintain_then_hit(self, catalog):
        router = RollupRouter(
            catalog, policy=AdmissionPolicy(byte_budget=1 << 30)
        )
        query = q("date", 1, 0, 2)
        for _ in range(2):
            assert router.serve(query) is None
        assert router.maintain() == 1
        assert router.materialized == 1
        assert router.serve(query) is not None

    def test_maintain_on_background_pool(self, catalog):
        router = RollupRouter(
            catalog, policy=AdmissionPolicy(byte_budget=1 << 30)
        )
        query = q("date", 1, 0, 2)
        for _ in range(2):
            router.serve(query)
        state = EngineState(FakeClock())
        pool = WorkerPool("maintenance", state, capacity=1)
        pool.start()
        try:
            assert router.maintain(pool=pool) == 1
            deadline = threading.Event()
            for _ in range(200):
                if len(catalog):
                    break
                deadline.wait(0.01)
        finally:
            pool.stop(finish_queued=True)
        assert router.materialized == 1
        assert router.serve(query) is not None

    def test_metrics_counters(self, full_catalog):
        from repro.metrics import MetricsRegistry, RollupMetrics

        registry = MetricsRegistry()
        router = RollupRouter(full_catalog, metrics=RollupMetrics(registry))
        router.serve(q("date", 1, 0, 3))
        router.serve(q("date", 3, 0, 3))  # finer than the catalog: miss
        snap = registry.collect(now=1.0)
        assert snap.family("repro_rollup_hits_total").total() == 1
        assert snap.family("repro_rollup_misses_total").total() == 1
        hist = snap.histogram("repro_rollup_hit_latency_seconds")
        assert hist.count == 1


class TestReadStability:
    """Regression: answers were read from live arrays mid-ingest-fold.

    ``ingest`` mutates installed component arrays in place under the
    catalog lock; the executor used to aggregate straight from those
    arrays with no lock, so an ``avg`` could see sum already folded but
    count not yet.  ``read_view`` now snapshots the components under the
    lock before aggregating.
    """

    def test_read_view_is_a_stable_copy(self, full_catalog):
        query = q("date", 2, 0, 2, agg="avg")
        cuboid = full_catalog.covers(query)
        baseline = np.array(cuboid.cube.component("sum"))
        view = full_catalog.read_view(cuboid)
        assert view.cube is not cuboid.cube
        view.cube.component("sum")[...] = -1.0
        assert np.array_equal(cuboid.cube.component("sum"), baseline)

    def test_answer_blocks_on_half_applied_fold(self, full_catalog):
        query = q("date", 2, 0, 2, agg="avg")
        executor = RollupExecutor(full_catalog)
        clean = executor.answer(query)

        sums = full_catalog.covers(query).cube.component("sum")
        torn = threading.Barrier(2)
        answers = []

        def writer():
            with full_catalog._lock:
                # half-applied fold: sum advanced, count untouched
                sums[...] *= 2.0
                torn.wait()
                # hold the torn state long enough for the reader to be
                # blocked on the lock, then complete the fold
                time.sleep(0.03)
                sums[...] /= 2.0

        def reader():
            torn.wait()
            answers.append(executor.answer(query))

        threads = [
            threading.Thread(target=writer),
            threading.Thread(target=reader),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        # pre-fix the reader aggregated the doubled sums (answer == 2x);
        # with the locked snapshot it only ever sees consistent state
        assert answers == [pytest.approx(clean)]
