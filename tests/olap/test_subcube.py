"""Unit tests for sub-cube extraction and the eq.-3 size law."""

import numpy as np
import pytest

from repro.errors import QueryError, ResolutionError
from repro.olap.cube import OLAPCube
from repro.olap.subcube import (
    answer_with_cube,
    spec_for_query,
    subcube_size_bytes,
    subcube_size_mb,
)
from repro.query.model import Condition, Query


@pytest.fixture(scope="module")
def cube(fact_table):
    return OLAPCube.from_fact_table(fact_table, "sales_price", resolutions=[1, 1, 1])


class TestSizeLaw:
    def test_eq3_bytes(self):
        # 10 x 20 x 30 cells of 8 bytes
        assert subcube_size_bytes([10, 20, 30], 8) == 48_000

    def test_eq3_mb_uses_binary_megabytes(self):
        assert subcube_size_mb([1024, 1024], 1) == 1.0

    def test_zero_width_rejected(self):
        with pytest.raises(QueryError):
            subcube_size_bytes([10, 0], 8)

    def test_zero_cell_size_rejected(self):
        with pytest.raises(QueryError):
            subcube_size_bytes([10], 0)

    def test_empty_widths_is_single_cell(self):
        assert subcube_size_bytes([], 8) == 8


class TestSpecForQuery:
    def test_unconstrained_covers_full_axes(self, cube):
        spec = spec_for_query(cube, Query(conditions=(), measures=("sales_price",)))
        assert spec.widths == cube.shape
        assert spec.nbytes == cube.num_cells * cube.cell_nbytes

    def test_range_condition_width(self, cube, small_schema):
        d0 = small_schema.dimensions[0].name
        q = Query(conditions=(Condition(d0, 1, lo=2, hi=7),), measures=("sales_price",))
        spec = spec_for_query(cube, q)
        assert spec.widths[0] == 5

    def test_coarse_condition_refined(self, cube, small_schema):
        d0 = small_schema.dimensions[0]
        fanout = d0.cardinality(1) // d0.cardinality(0)
        q = Query(conditions=(Condition(d0.name, 0, lo=1, hi=2),), measures=("sales_price",))
        spec = spec_for_query(cube, q)
        assert spec.widths[0] == fanout

    def test_codes_condition(self, cube, small_schema):
        d1 = small_schema.dimensions[1].name
        q = Query(
            conditions=(Condition(d1, 1, codes=(0, 2, 4)),), measures=("sales_price",)
        )
        spec = spec_for_query(cube, q)
        assert spec.widths[1] == 3

    def test_coarse_codes_expand_to_children(self, cube, small_schema):
        d1 = small_schema.dimensions[1]
        fanout = d1.cardinality(1) // d1.cardinality(0)
        q = Query(
            conditions=(Condition(d1.name, 0, codes=(1,)),), measures=("sales_price",)
        )
        spec = spec_for_query(cube, q)
        assert spec.widths[1] == fanout

    def test_condition_finer_than_cube_rejected(self, cube, small_schema):
        d0 = small_schema.dimensions[0].name
        q = Query(conditions=(Condition(d0, 3, lo=0, hi=5),), measures=("sales_price",))
        with pytest.raises(ResolutionError):
            spec_for_query(cube, q)

    def test_text_condition_rejected(self, cube, small_schema):
        d0 = small_schema.dimensions[0].name
        q = Query(
            conditions=(Condition(d0, 1, text_values=("x",)),),
            measures=("sales_price",),
        )
        with pytest.raises(QueryError, match="untranslated"):
            spec_for_query(cube, q)

    def test_unknown_dimension_rejected(self, cube):
        q = Query(
            conditions=(Condition("nope", 0, lo=0, hi=1),), measures=("sales_price",)
        )
        with pytest.raises(QueryError):
            spec_for_query(cube, q)

    def test_size_mb_consistent_with_bytes(self, cube, small_schema):
        d0 = small_schema.dimensions[0].name
        q = Query(conditions=(Condition(d0, 1, lo=0, hi=4),), measures=("sales_price",))
        spec = spec_for_query(cube, q)
        assert np.isclose(spec.size_mb, spec.nbytes / 2**20)


class TestAnswerWithCube:
    def test_matches_reference_scan(self, cube, fact_table, small_schema):
        d0 = small_schema.dimensions[0].name
        q = Query(
            conditions=(Condition(d0, 1, lo=3, hi=9),),
            measures=("sales_price",),
            agg="sum",
        )
        assert np.isclose(
            answer_with_cube(cube, q), fact_table.execute(q).value("sales_price")
        )

    def test_count_agg(self, cube, fact_table, small_schema):
        d2 = small_schema.dimensions[2].name
        q = Query(conditions=(Condition(d2, 1, lo=0, hi=10),), measures=(), agg="count")
        assert answer_with_cube(cube, q) == fact_table.execute(q).value("count")

    def test_wrong_measure_rejected(self, cube):
        q = Query(conditions=(), measures=("quantity",), agg="sum")
        with pytest.raises(QueryError, match="measure"):
            answer_with_cube(cube, q)

    def test_avg_matches_reference(self, cube, fact_table, small_schema):
        d1 = small_schema.dimensions[1].name
        q = Query(
            conditions=(Condition(d1, 0, lo=0, hi=3),),
            measures=("sales_price",),
            agg="avg",
        )
        assert np.isclose(
            answer_with_cube(cube, q), fact_table.execute(q).value("sales_price")
        )
