"""Property tests for the adapt plane's two structural guarantees.

1. **Atomic epoch accounting** — every estimate the scheduler serves is
   booked against exactly one installed :class:`ModelEpoch`: versions
   are consecutive from 0, the per-epoch decision books only reference
   installed versions, and they sum to the plane's total.  A torn model
   swap (a decision charged to a version that never existed, or lost
   from the books) would break one of these identities.

2. **A disabled plane is invisible** — attaching
   ``AdaptivePlane(recalibrate=False, control=False)`` to a run must
   leave the :class:`~repro.sim.metrics.SystemReport` *equal field for
   field* to the same run with ``adapt=None``, across random workloads
   and schedulers.  This is the contract that makes ``adapt=`` safe to
   thread through every host: the hooks themselves cost nothing.

Both properties run the full simulated system under hypothesis-drawn
workload seeds, so they also exercise the ``attach_sim`` wiring and the
conftest-level ``assert_adapt_valid`` audit on every example.
"""

from functools import lru_cache

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adapt.controller import ControllerLimits
from repro.adapt.plane import AdaptivePlane
from repro.adapt.recalibrate import RecalGuards
from repro.core.baselines import MCTScheduler, RoundRobinScheduler
from repro.core.scheduler import HybridScheduler
from repro.paper import paper_system_config, paper_workload
from repro.query.workload import ArrivalProcess
from repro.sim.system import HybridSystem
from repro.sim.validate import validate_adapt

SCHEDULERS = {
    "hybrid": HybridScheduler,
    "mct": MCTScheduler,
    "round_robin": RoundRobinScheduler,
}

#: permissive envelope so hypothesis-sized runs actually install epochs
RELAXED_GUARDS = RecalGuards(
    min_samples=8, min_r2=0.0, max_step=0.5, refit_interval=8, window=64
)
FAST_LIMITS = ControllerLimits(cooldown=0.2, max_reconfigs=32)


@lru_cache(maxsize=None)
def _config(scheduler_name="hybrid"):
    return paper_system_config(
        include_32gb=False,
        scheduler_factory=SCHEDULERS[scheduler_name],
        time_constraint=0.35,
        noise_sigma=0.3,
        seed=2012,
    )


def _stream(seed, n, text_prob=0.2, rate=80.0):
    workload = paper_workload(include_32gb=False, text_prob=text_prob, seed=seed)
    return workload.generate(n, ArrivalProcess("uniform", rate=rate))


def _plane():
    return AdaptivePlane(
        target=0.9, window=1.0, guards=RELAXED_GUARDS, limits=FAST_LIMITS
    )


class TestEpochAccounting:
    @given(seed=st.integers(0, 2**16 - 1), n=st.integers(40, 120))
    @settings(max_examples=15, deadline=None)
    def test_decisions_book_against_installed_epochs(self, seed, n):
        plane = _plane()
        HybridSystem(_config()).run(_stream(seed, n), adapt=plane)
        report = plane.report()

        versions = [epoch.version for epoch in report.epochs]
        assert versions == list(range(len(versions)))
        assert report.epochs[0].trigger == "init"
        assert set(report.decisions_by_epoch) <= set(versions)
        assert all(count > 0 for count in report.decisions_by_epoch.values())
        assert sum(report.decisions_by_epoch.values()) == report.total_decisions
        assert report.total_decisions > 0
        assert validate_adapt(report).ok

    @given(seed=st.integers(0, 2**16 - 1))
    @settings(max_examples=5, deadline=None)
    def test_adaptive_history_is_deterministic(self, seed):
        """Same stream, fresh planes: identical epoch and reconfig
        histories down to every coefficient — hot swaps are not racy
        even in principle."""
        stream = _stream(seed, 80)

        def arm():
            plane = _plane()
            HybridSystem(_config()).run(stream, adapt=plane)
            report = plane.report()
            return (
                tuple(
                    (e.version, e.time, e.families, dict(e.coefficients))
                    for e in report.epochs
                ),
                tuple(
                    (r.seq, r.time, r.action, r.value_after)
                    for r in report.reconfigs
                ),
                report.total_decisions,
                dict(report.decisions_by_epoch),
            )

        assert arm() == arm()

    def test_relaxed_guards_are_not_vacuous(self):
        """Anchor for the property above: under the relaxed envelope a
        moderately long run really does install refit epochs, so the
        accounting identities are being checked against live swaps."""
        plane = _plane()
        HybridSystem(_config()).run(_stream(7, 160), adapt=plane)
        report = plane.report()
        assert [e for e in report.epochs if e.trigger == "refit"]


class TestDisabledPlaneIsInvisible:
    @given(
        seed=st.integers(0, 2**16 - 1),
        n=st.integers(30, 90),
        text_prob=st.sampled_from([0.0, 0.2, 0.5]),
        scheduler_name=st.sampled_from(sorted(SCHEDULERS)),
    )
    @settings(max_examples=10, deadline=None)
    def test_disabled_plane_matches_frozen_run(
        self, seed, n, text_prob, scheduler_name
    ):
        config = _config(scheduler_name)
        stream = _stream(seed, n, text_prob=text_prob)
        baseline = HybridSystem(config).run(stream)
        plane = AdaptivePlane(recalibrate=False, control=False)
        adapted = HybridSystem(config).run(stream, adapt=plane)

        # frozen dataclass equality: records, makespan, utilisations,
        # submission books, feedback stats — the whole audit surface
        assert adapted == baseline

        report = plane.report()
        assert report.epochs == ()
        assert report.reconfigs == ()
        assert report.total_decisions == 0
        assert dict(report.decisions_by_epoch) == {}

    def test_disabled_plane_leaves_estimator_models_untouched(self):
        config = _config()
        plane = AdaptivePlane(recalibrate=False, control=False)
        system = HybridSystem(config)
        before = system.estimator.models()
        system.run(_stream(11, 60), adapt=plane)
        assert system.estimator.models() is before
