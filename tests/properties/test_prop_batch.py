"""Property tests: batched admission is the sequential hot path, exactly.

``BaseScheduler.schedule_batch`` exists purely for throughput — one
vectorised step-2 pass and one book update per batch — so its contract
is byte-identity: the decisions, the :math:`T_Q` books, the rejection
set, and the per-query observer stream must all equal a sequential
``schedule`` loop over the same queries at the same instant.  These
properties drive both schedulers (Figure 10 and its admission-control
extension) through randomly drawn estimate mixtures in several batches
at increasing ``now`` values and assert exact ``==`` on every float —
no tolerance anywhere, because the implementation promises identical
operation order, not merely close results.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.admission import AdmissionControlScheduler
from repro.core.partitions import PartitionQueue, QueueKind
from repro.core.scheduler import HybridScheduler, QueryEstimates
from repro.errors import AdmissionRejected
from repro.query.model import Query


class DrawnEstimator:
    """Replays a drawn estimate sequence (shared by both schedulers)."""

    def __init__(self, estimates):
        self._estimates = list(estimates)
        self._i = 0

    def estimate(self, query):
        est = self._estimates[self._i % len(self._estimates)]
        self._i += 1
        return est


class BatchingEstimator(DrawnEstimator):
    """Adds the ``estimate_batch`` surface over the same sequence."""

    def estimate_batch(self, queries):
        return [self.estimate(query) for query in queries]


class RecordingObserver:
    """Captures the scheduler observer stream for exact comparison."""

    def __init__(self):
        self.batches = []
        self.estimated = []
        self.decisions = []

    def on_batch(self, n, now):
        self.batches.append((n, now))

    def on_estimated(self, query, est, deadline, now):
        self.estimated.append((query.query_id, est.t_cpu, est.t_trans, now))

    def on_decision(self, decision, candidates, now):
        self.decisions.append(
            (
                decision.query.query_id,
                decision.target.name,
                tuple((q.name, t_r) for q, t_r in candidates),
                now,
            )
        )


@st.composite
def estimates(draw):
    has_cpu = draw(st.booleans())
    t_cpu = draw(st.floats(1e-4, 2.0)) if has_cpu else None
    base = draw(st.floats(1e-3, 0.5))
    t_gpu = {
        1: base,
        2: base * draw(st.floats(0.4, 0.9)),
        4: base * draw(st.floats(0.1, 0.4)),
    }
    t_trans = draw(st.one_of(st.just(0.0), st.floats(1e-5, 0.05)))
    return QueryEstimates(t_cpu=t_cpu, t_gpu=t_gpu, t_trans=t_trans)


def build_scheduler(factory, estimator, t_c, **kwargs):
    cpu_q = PartitionQueue("Q_CPU", QueueKind.CPU)
    trans_q = PartitionQueue("Q_TRANS", QueueKind.TRANSLATION)
    gpu_qs = [
        PartitionQueue(f"Q_G{i + 1}", QueueKind.GPU, n_sm=n)
        for i, n in enumerate([1, 1, 2, 2, 4, 4])
    ]
    return factory(cpu_q, gpu_qs, trans_q, estimator, t_c, **kwargs)


def decision_key(decision):
    """Every number a decision carries, for exact equality checks."""
    if isinstance(decision, AdmissionRejected):
        return ("rejected", str(decision))
    translation = decision.translation
    return (
        decision.target.name,
        decision.processing.submit_time,
        decision.processing.estimated_start,
        decision.processing.estimated_finish,
        decision.processing.estimated_time,
        decision.estimated_response,
        decision.deadline,
        None
        if translation is None
        else (
            translation.estimated_start,
            translation.estimated_finish,
            translation.estimated_time,
        ),
    )


def books(scheduler):
    """The scheduler's entire mutable state: the per-queue books."""
    return {
        q.name: (
            q.t_q,
            tuple(
                (s.query_id, s.submit_time, s.estimated_start, s.estimated_finish)
                for s in q.submissions
            ),
        )
        for q in [
            scheduler.cpu_queue,
            *scheduler.gpu_queues,
            scheduler.trans_queue,
        ]
    }


def queries_for(ests):
    return [Query(conditions=(), measures=("v",)) for _ in ests]


def chunked(items, size):
    return [items[i : i + size] for i in range(0, len(items), size)]


class TestScheduleBatchEquivalence:
    @given(
        st.lists(estimates(), min_size=1, max_size=40),
        st.floats(0.05, 2.0),
        st.integers(1, 7),
        st.booleans(),
    )
    @settings(max_examples=80, deadline=None)
    def test_hybrid_batches_match_sequential_loop(
        self, ests, t_c, batch_size, vectorised
    ):
        est_cls = BatchingEstimator if vectorised else DrawnEstimator
        seq = build_scheduler(HybridScheduler, DrawnEstimator(ests), t_c)
        bat = build_scheduler(HybridScheduler, est_cls(ests), t_c)
        seq_obs, bat_obs = RecordingObserver(), RecordingObserver()
        seq.observer, bat.observer = seq_obs, bat_obs

        queries = queries_for(ests)
        seq_decisions, bat_decisions = [], []
        for i, chunk in enumerate(chunked(queries, batch_size)):
            now = 0.25 * i
            for query in chunk:
                seq_decisions.append(seq.schedule(query, now))
            bat_decisions.extend(bat.schedule_batch(chunk, now))
            # identical books after every batch, not just at the end
            assert books(seq) == books(bat)

        assert list(map(decision_key, seq_decisions)) == list(
            map(decision_key, bat_decisions)
        )
        # the per-query observer stream is identical; the batch path
        # additionally announces each pass via on_batch
        assert seq_obs.estimated == bat_obs.estimated
        assert seq_obs.decisions == bat_obs.decisions
        assert seq_obs.batches == []
        assert bat_obs.batches == [
            (len(chunk), 0.25 * i)
            for i, chunk in enumerate(chunked(queries, batch_size))
        ]

    @given(
        st.lists(estimates(), min_size=1, max_size=40),
        st.floats(0.05, 0.4),
        st.integers(1, 7),
        st.floats(0.0, 0.5),
    )
    @settings(max_examples=80, deadline=None)
    def test_admission_control_rejections_match(
        self, ests, t_c, batch_size, lateness
    ):
        seq = build_scheduler(
            AdmissionControlScheduler,
            DrawnEstimator(ests),
            t_c,
            lateness_factor=lateness,
        )
        bat = build_scheduler(
            AdmissionControlScheduler,
            BatchingEstimator(ests),
            t_c,
            lateness_factor=lateness,
        )

        queries = queries_for(ests)
        seq_decisions, bat_decisions = [], []
        for i, chunk in enumerate(chunked(queries, batch_size)):
            now = 0.25 * i
            for query in chunk:
                try:
                    seq_decisions.append(seq.schedule(query, now))
                except AdmissionRejected as exc:
                    seq_decisions.append(exc)
            bat_decisions.extend(bat.schedule_batch(chunk, now))

        assert list(map(decision_key, seq_decisions)) == list(
            map(decision_key, bat_decisions)
        )
        assert books(seq) == books(bat)
        assert seq.rejected_count == bat.rejected_count


class TestEstimateBatchEquivalence:
    """The real estimator's vectorised pass is bit-identical to scalar."""

    @given(st.integers(0, 2**16), st.integers(1, 30))
    @settings(max_examples=15, deadline=None)
    def test_estimate_batch_bit_identical(self, seed, n):
        from repro.paper import paper_system_config, paper_workload
        from repro.sim.system import SystemEstimator

        config = paper_system_config(include_32gb=False)
        queries = [t.query for t in paper_workload(seed=seed).generate(n)]
        batch = SystemEstimator(config).estimate_batch(queries)
        scalar_est = SystemEstimator(config)
        for query, b in zip(queries, batch):
            s = scalar_est.estimate(query)
            assert s.t_cpu == b.t_cpu
            assert s.t_gpu == b.t_gpu
            assert s.t_trans == b.t_trans
