"""Property-based tests: calibration recovers known models exactly."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.calibration import (
    fit_dict_cost,
    fit_gpu_timing,
    fit_linear,
    fit_piecewise_cpu,
    fit_power_law,
)

finite = dict(allow_nan=False, allow_infinity=False)


class TestExactRecovery:
    @given(
        st.floats(1e-6, 1e-2, **finite),
        st.floats(0.5, 1.5, **finite),
    )
    @settings(max_examples=100)
    def test_power_law_recovery(self, a, p):
        x = np.logspace(0, 3, 12)
        y = a * x**p
        fit = fit_power_law(x, y)
        assert np.isclose(fit.model.a, a, rtol=1e-6)
        assert np.isclose(fit.model.p, p, rtol=1e-6)
        assert fit.r2 > 0.999

    @given(
        st.floats(1e-7, 1e-3, **finite),
        st.floats(0.0, 0.1, **finite),
    )
    @settings(max_examples=100)
    def test_linear_recovery(self, a, b):
        x = np.linspace(1, 1000, 15)
        fit = fit_linear(x, a * x + b)
        assert np.isclose(fit.model.a, a, rtol=1e-6)
        assert np.isclose(fit.model.b, b, atol=1e-9)

    @given(st.floats(1e-9, 1e-5, **finite))
    @settings(max_examples=100)
    def test_dict_cost_recovery(self, cost):
        lengths = np.array([1e3, 1e4, 1e5, 1e6])
        model = fit_dict_cost(lengths, cost * lengths)
        assert np.isclose(model.cost_per_entry, cost, rtol=1e-9)

    @given(
        st.floats(1e-5, 1e-3, **finite),
        st.floats(0.8, 1.1, **finite),
        st.floats(1e-6, 1e-4, **finite),
        st.floats(1e-3, 5e-2, **finite),
    )
    @settings(max_examples=60, deadline=None)
    def test_piecewise_recovery(self, a, p, slope, intercept):
        sizes = np.array([1, 4, 16, 64, 256, 512, 2048, 8192, 32768], dtype=float)
        times = np.where(sizes < 512.0, a * sizes**p, slope * sizes + intercept)
        model = fit_piecewise_cpu(sizes, times)
        for mb in sizes:
            expected = a * mb**p if mb < 512.0 else slope * mb + intercept
            assert np.isclose(model.time(mb), expected, rtol=1e-4)

    @given(
        st.dictionaries(
            st.integers(1, 14),
            st.tuples(st.floats(1e-5, 1e-2, **finite), st.floats(0.0, 0.1, **finite)),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=60)
    def test_gpu_timing_recovery(self, coefficients):
        fracs = np.linspace(0.05, 1.0, 10)
        measurements = {
            n_sm: (list(fracs), [a * f + b for f in fracs])
            for n_sm, (a, b) in coefficients.items()
        }
        fitted = fit_gpu_timing(measurements)
        for n_sm, (a, b) in coefficients.items():
            ga, gb = fitted.coefficients[n_sm]
            assert np.isclose(ga, a, rtol=1e-5, atol=1e-12)
            assert np.isclose(gb, b, rtol=1e-5, atol=1e-9)


class TestNoiseRobustness:
    @given(st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_piecewise_fit_under_noise(self, seed):
        rng = np.random.default_rng(seed)
        sizes = np.logspace(0, 4.5, 18)
        from repro.core.perfmodel import XEON_X5667_8T

        truth = np.array([XEON_X5667_8T.time(mb) for mb in sizes])
        noisy = truth * rng.lognormal(0.0, 0.05, len(sizes))
        model = fit_piecewise_cpu(sizes, noisy, threads=8)
        # exponent recovered within a generous band under 5% noise
        assert 0.85 < model.model.below.p < 1.1
        # large-size predictions stay within 25%
        assert np.isclose(model.time(32768.0), truth[-1], rtol=0.25)
