"""Property-based tests for chunked storage."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.olap.chunks import ChunkedCube


@st.composite
def arrays_and_chunks(draw):
    ndim = draw(st.integers(1, 3))
    shape = tuple(draw(st.integers(1, 12)) for _ in range(ndim))
    density = draw(st.floats(0.0, 1.0))
    values = draw(
        hnp.arrays(
            dtype=np.float64,
            shape=shape,
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        )
    )
    mask = draw(
        hnp.arrays(dtype=np.bool_, shape=shape, elements=st.booleans())
    )
    array = np.where(mask & (np.abs(values) > (1 - density) * 1e6), values, 0.0)
    chunk_shape = tuple(draw(st.integers(1, 6)) for _ in range(ndim))
    threshold = draw(st.floats(0.0, 1.0))
    return array, chunk_shape, threshold


class TestChunkProperties:
    @given(arrays_and_chunks())
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_exact(self, case):
        array, chunk_shape, threshold = case
        cc = ChunkedCube.from_dense(array, chunk_shape, fill_threshold=threshold)
        assert np.array_equal(cc.to_dense(), array)

    @given(arrays_and_chunks())
    @settings(max_examples=100, deadline=None)
    def test_sum_preserved(self, case):
        array, chunk_shape, threshold = case
        cc = ChunkedCube.from_dense(array, chunk_shape, fill_threshold=threshold)
        assert np.isclose(cc.sum(), array.sum(), atol=1e-6)

    @given(arrays_and_chunks())
    @settings(max_examples=100, deadline=None)
    def test_chunk_grid_covers_shape(self, case):
        array, chunk_shape, threshold = case
        cc = ChunkedCube.from_dense(array, chunk_shape, fill_threshold=threshold)
        expected = 1
        for s, c in zip(array.shape, chunk_shape):
            expected *= -(-s // c)
        assert cc.num_chunks == expected

    @given(arrays_and_chunks())
    @settings(max_examples=60, deadline=None)
    def test_compressed_chunks_below_threshold(self, case):
        array, chunk_shape, threshold = case
        cc = ChunkedCube.from_dense(array, chunk_shape, fill_threshold=threshold)
        from repro.olap.chunks import CompressedChunk, DenseChunk

        for chunk in cc.iter_chunks():
            if isinstance(chunk, CompressedChunk):
                assert chunk.fill_ratio < threshold
            else:
                assert isinstance(chunk, DenseChunk)
                assert chunk.fill_ratio >= threshold


class TestRangeSumProperty:
    @given(arrays_and_chunks(), st.data())
    @settings(max_examples=100, deadline=None)
    def test_sum_range_matches_dense_slice(self, case, data):
        array, chunk_shape, threshold = case
        cc = ChunkedCube.from_dense(array, chunk_shape, fill_threshold=threshold)
        ranges = []
        for extent in array.shape:
            lo = data.draw(st.integers(0, extent), label="lo")
            hi = data.draw(st.integers(lo, extent), label="hi")
            ranges.append((lo, hi))
        expected = array[tuple(slice(lo, hi) for lo, hi in ranges)].sum()
        assert np.isclose(cc.sum_range(ranges), expected, atol=1e-6)
