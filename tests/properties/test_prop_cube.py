"""Property-based tests on cube invariants.

The load-bearing invariant of the MOLAP substrate: aggregation commutes
with roll-up (decomposable aggregates), and cube answers always equal
the reference scan.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.olap.cube import OLAPCube
from repro.olap.hierarchy import DimensionHierarchy
from repro.query.model import Condition, Query
from repro.olap.subcube import answer_with_cube
from repro.relational.schema import TableSchema
from repro.relational.table import FactTable


DIMS = [
    DimensionHierarchy.from_fanouts("x", ["x0", "x1"], [3, 4]),
    DimensionHierarchy.from_fanouts("y", ["y0", "y1"], [2, 5]),
]
SCHEMA = TableSchema(DIMS, measures=("v",))


@st.composite
def tables(draw):
    n = draw(st.integers(0, 60))
    x = draw(st.lists(st.integers(0, 11), min_size=n, max_size=n))
    y = draw(st.lists(st.integers(0, 9), min_size=n, max_size=n))
    v = draw(
        st.lists(
            st.floats(-100, 100, allow_nan=False, allow_infinity=False),
            min_size=n,
            max_size=n,
        )
    )
    cols = {
        "x__x1": np.array(x, dtype=np.int32),
        "x__x0": np.array(x, dtype=np.int32) // 4,
        "y__y1": np.array(y, dtype=np.int32),
        "y__y0": np.array(y, dtype=np.int32) // 5,
        "v": np.array(v),
    }
    return FactTable(SCHEMA, cols)


@st.composite
def range_conditions(draw):
    conds = []
    if draw(st.booleans()):
        r = draw(st.integers(0, 1))
        card = DIMS[0].cardinality(r)
        lo = draw(st.integers(0, card - 1))
        hi = draw(st.integers(lo + 1, card))
        conds.append(Condition("x", r, lo=lo, hi=hi))
    if draw(st.booleans()):
        r = draw(st.integers(0, 1))
        card = DIMS[1].cardinality(r)
        lo = draw(st.integers(0, card - 1))
        hi = draw(st.integers(lo + 1, card))
        conds.append(Condition("y", r, lo=lo, hi=hi))
    return tuple(conds)


class TestCubeInvariants:
    @given(tables())
    @settings(max_examples=60, deadline=None)
    def test_rollup_commutes_with_build(self, table):
        fine = OLAPCube.from_fact_table(table, "v", resolutions=[1, 1])
        coarse_direct = OLAPCube.from_fact_table(table, "v", resolutions=[0, 0])
        coarse_rolled = fine.rollup([0, 0])
        assert np.allclose(
            coarse_rolled.component("sum"), coarse_direct.component("sum")
        )
        assert np.array_equal(
            coarse_rolled.component("count"), coarse_direct.component("count")
        )

    @given(tables(), range_conditions(), st.sampled_from(["sum", "count", "avg"]))
    @settings(max_examples=80, deadline=None)
    def test_cube_answer_equals_reference_scan(self, table, conditions, agg):
        measures = () if agg == "count" else ("v",)
        q = Query(conditions=conditions, measures=measures, agg=agg)
        cube = OLAPCube.from_fact_table(table, "v", resolutions=[1, 1])
        cube_answer = answer_with_cube(cube, q)
        reference = table.execute(q).value()
        assert np.isclose(cube_answer, reference, equal_nan=True, atol=1e-9)

    @given(tables())
    @settings(max_examples=40, deadline=None)
    def test_total_mass_conserved(self, table):
        cube = OLAPCube.from_fact_table(table, "v", resolutions=[1, 1])
        assert np.isclose(cube.component("sum").sum(), table.column("v").sum())
        assert cube.component("count").sum() == len(table)

    @given(tables(), range_conditions())
    @settings(max_examples=60, deadline=None)
    def test_disjoint_ranges_are_additive(self, table, conditions):
        # splitting any x-range in two must preserve the sum
        cube = OLAPCube.from_fact_table(table, "v", resolutions=[1, 1])
        card = DIMS[0].cardinality(1)
        mid = card // 2
        left = Query(
            conditions=(Condition("x", 1, lo=0, hi=mid),), measures=("v",)
        )
        right = Query(
            conditions=(Condition("x", 1, lo=mid, hi=card),), measures=("v",)
        )
        total = Query(conditions=(), measures=("v",))
        assert np.isclose(
            answer_with_cube(cube, left) + answer_with_cube(cube, right),
            answer_with_cube(cube, total),
            atol=1e-9,
        )
