"""Property-based tests for dictionaries and the Aho-Corasick automaton."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.ahocorasick import AhoCorasick
from repro.text.dictionary import BACKENDS, ColumnDictionary

tokens = st.text(alphabet="abcdef", min_size=1, max_size=8)
vocabularies = st.lists(tokens, min_size=1, max_size=40, unique=True)


class TestDictionaryProperties:
    @given(vocabularies, st.sampled_from(sorted(BACKENDS)))
    @settings(max_examples=100)
    def test_encode_decode_roundtrip(self, vocab, backend):
        d = ColumnDictionary("c", vocab, backend=backend)
        for code, token in enumerate(vocab):
            assert d.encode(token) == code
            assert d.decode(code) == token

    @given(vocabularies, tokens, st.sampled_from(sorted(BACKENDS)))
    @settings(max_examples=100)
    def test_membership_consistent_with_vocab(self, vocab, probe, backend):
        d = ColumnDictionary("c", vocab, backend=backend)
        assert (probe in d) == (probe in vocab)

    @given(vocabularies)
    @settings(max_examples=50)
    def test_all_backends_agree(self, vocab):
        dicts = [ColumnDictionary("c", vocab, backend=b) for b in BACKENDS]
        for token in vocab:
            codes = {d.encode(token) for d in dicts}
            assert len(codes) == 1


class TestAhoCorasickProperties:
    @given(
        st.lists(tokens, min_size=1, max_size=10, unique=True),
        st.text(alphabet="abcdef", max_size=60),
    )
    @settings(max_examples=150)
    def test_matches_equal_naive_search(self, keywords, text):
        ac = AhoCorasick(keywords)
        expected = set()
        for kw in keywords:
            start = 0
            while True:
                pos = text.find(kw, start)
                if pos == -1:
                    break
                expected.add((pos, kw))
                start = pos + 1
        got = {(m.start, m.keyword) for m in ac.search(text)}
        assert got == expected

    @given(
        st.lists(tokens, min_size=1, max_size=10, unique=True),
        st.text(alphabet="abcdef", max_size=60),
    )
    @settings(max_examples=100)
    def test_match_substrings_are_exact(self, keywords, text):
        ac = AhoCorasick(keywords)
        for m in ac.search(text):
            assert text[m.start : m.end] == m.keyword

    @given(
        st.lists(tokens, min_size=1, max_size=8, unique=True),
        st.text(alphabet="abcdef", max_size=50),
    )
    @settings(max_examples=100)
    def test_longest_matches_disjoint(self, keywords, text):
        ac = AhoCorasick(keywords)
        chosen = ac.longest_matches(text)
        for a, b in zip(chosen, chosen[1:]):
            assert a.end <= b.start
