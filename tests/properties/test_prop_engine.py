"""Property-based tests for the simulation engine and servers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import SimulationEngine
from repro.sim.resources import Job, Server


class TestEngineProperties:
    @given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=50))
    @settings(max_examples=100)
    def test_events_observed_in_sorted_order(self, times):
        engine = SimulationEngine()
        observed = []
        for t in times:
            engine.schedule_at(t, lambda: observed.append(engine.now))
        engine.run()
        assert observed == sorted(times)
        assert engine.events_processed == len(times)

    @given(st.lists(st.floats(0.0, 10.0), min_size=1, max_size=30), st.floats(0.0, 10.0))
    @settings(max_examples=100)
    def test_run_until_never_passes_boundary(self, times, until):
        engine = SimulationEngine()
        for t in times:
            engine.schedule_at(t, lambda: None)
        engine.run(until=until)
        assert engine.now <= max(until, max(times))
        assert all(t > until for t, _, _ in engine._heap)


class TestServerProperties:
    @given(st.lists(st.floats(0.0, 5.0), min_size=1, max_size=30))
    @settings(max_examples=100)
    def test_fifo_completion_times(self, services):
        engine = SimulationEngine()
        server = Server(engine, "S")
        finishes = []
        for i, s in enumerate(services):
            server.submit(
                Job(query_id=i, service_time=s, on_complete=lambda t, j: finishes.append(t))
            )
        engine.run()
        # completion times are the prefix sums of service times
        assert np.allclose(finishes, np.cumsum(services))
        assert server.completed == len(services)
        assert np.isclose(server.busy_time, sum(services))

    @given(
        st.lists(
            st.tuples(st.floats(0.0, 10.0), st.floats(0.0, 2.0)),
            min_size=1,
            max_size=25,
        )
    )
    @settings(max_examples=100)
    def test_work_conservation_with_arrivals(self, arrivals):
        """Server is never idle while work is queued."""
        engine = SimulationEngine()
        server = Server(engine, "S")
        finishes = {}

        def submit(qid, service):
            def _do():
                server.submit(
                    Job(
                        query_id=qid,
                        service_time=service,
                        on_complete=lambda t, j: finishes.__setitem__(qid, (j.started_at, t)),
                    )
                )

            return _do

        for qid, (arrival, service) in enumerate(arrivals):
            engine.schedule_at(arrival, submit(qid, service))
        engine.run()
        assert len(finishes) == len(arrivals)
        # total busy time equals total service; makespan >= busy time
        total_service = sum(s for _, s in arrivals)
        assert np.isclose(server.busy_time, total_service)
        # no two service intervals overlap (single server)
        intervals = sorted(finishes.values())
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2 + 1e-9
