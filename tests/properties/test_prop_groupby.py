"""Property-based tests: grouped execution agrees across all paths."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.groupby import groupby_from_table, groupby_with_cube, run_groupby_kernel
from repro.olap.cube import OLAPCube
from repro.olap.hierarchy import DimensionHierarchy
from repro.query.model import Condition, Query, decompose
from repro.relational.schema import TableSchema
from repro.relational.table import FactTable

DIMS = [
    DimensionHierarchy.from_fanouts("x", ["x0", "x1"], [3, 4]),
    DimensionHierarchy.from_fanouts("y", ["y0", "y1"], [2, 5]),
]
SCHEMA = TableSchema(DIMS, measures=("v",))


@st.composite
def tables(draw):
    n = draw(st.integers(1, 80))
    x = draw(st.lists(st.integers(0, 11), min_size=n, max_size=n))
    y = draw(st.lists(st.integers(0, 9), min_size=n, max_size=n))
    v = draw(
        st.lists(
            st.floats(-50, 50, allow_nan=False, allow_infinity=False),
            min_size=n,
            max_size=n,
        )
    )
    return FactTable(
        SCHEMA,
        {
            "x__x1": np.array(x, dtype=np.int32),
            "x__x0": np.array(x, dtype=np.int32) // 4,
            "y__y1": np.array(y, dtype=np.int32),
            "y__y0": np.array(y, dtype=np.int32) // 5,
            "v": np.array(v),
        },
    )


@st.composite
def grouped_queries(draw):
    group_by = []
    if draw(st.booleans()):
        group_by.append(("x", draw(st.integers(0, 1))))
    if draw(st.booleans()) or not group_by:
        group_by.append(("y", draw(st.integers(0, 1))))
    conditions = []
    if draw(st.booleans()):
        r = draw(st.integers(0, 1))
        card = DIMS[0].cardinality(r)
        lo = draw(st.integers(0, card - 1))
        hi = draw(st.integers(lo + 1, card))
        conditions.append(Condition("x", r, lo=lo, hi=hi))
    agg = draw(st.sampled_from(["sum", "count", "avg", "min", "max"]))
    measures = () if agg == "count" else ("v",)
    return Query(
        conditions=tuple(conditions),
        measures=measures,
        agg=agg,
        group_by=tuple(group_by),
    )


class TestCrossPathAgreement:
    @given(tables(), grouped_queries(), st.integers(1, 6))
    @settings(max_examples=120, deadline=None)
    def test_table_cube_gpu_agree(self, table, query, n_sm):
        ref = groupby_from_table(table, query)
        cube = OLAPCube.from_fact_table(
            table, "v", resolutions=[1, 1], with_minmax=True
        )
        cube_result = groupby_with_cube(cube, query)
        gpu_result = run_groupby_kernel(
            table, decompose(query, SCHEMA.hierarchies), n_sm
        )
        for other in (cube_result, gpu_result):
            assert set(other.cells) == set(ref.cells)
            for k, v in ref.cells.items():
                assert np.isclose(other.cells[k], v, atol=1e-9), (query.agg, k)

    @given(tables(), grouped_queries())
    @settings(max_examples=80, deadline=None)
    def test_sum_groups_partition_the_total(self, table, query):
        if query.agg != "sum":
            return
        ref = groupby_from_table(table, query)
        # the grouped sums partition the filtered total exactly
        scalar = Query(
            conditions=query.conditions, measures=("v",), agg="sum"
        )
        total = table.execute(scalar).value()
        assert np.isclose(ref.total(), total, atol=1e-9)

    @given(tables(), grouped_queries())
    @settings(max_examples=60, deadline=None)
    def test_group_count_bounded_by_group_space(self, table, query):
        ref = groupby_from_table(table, query)
        space = 1
        for dim, res in query.group_by:
            d = next(x for x in DIMS if x.name == dim)
            space *= d.cardinality(res)
        assert ref.num_groups <= min(space, len(table))
