"""Property-based tests for dimension hierarchies."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.olap.hierarchy import DimensionHierarchy


@st.composite
def hierarchies(draw):
    n_levels = draw(st.integers(1, 4))
    fanouts = [draw(st.integers(2, 12)) for _ in range(n_levels)]
    names = [f"L{i}" for i in range(n_levels)]
    return DimensionHierarchy.from_fanouts("dim", names, fanouts)


class TestRefinementRoundTrip:
    @given(hierarchies(), st.data())
    @settings(max_examples=100)
    def test_coarsen_inverts_refine_for_block_starts(self, dim, data):
        from_res = data.draw(st.integers(0, dim.finest_resolution), label="from")
        to_res = data.draw(st.integers(from_res, dim.finest_resolution), label="to")
        card = dim.cardinality(from_res)
        lo = data.draw(st.integers(0, card - 1), label="lo")
        hi = data.draw(st.integers(lo + 1, card), label="hi")
        f_lo, f_hi = dim.refine_range(lo, hi, from_res, to_res)
        # refining preserves the covered fraction exactly
        frac_coarse = (hi - lo) / card
        frac_fine = (f_hi - f_lo) / dim.cardinality(to_res)
        assert abs(frac_coarse - frac_fine) < 1e-12
        # coarsening the endpoints returns the original block
        assert dim.coarsen_coord(f_lo, to_res, from_res) == lo
        assert dim.coarsen_coord(f_hi - 1, to_res, from_res) == hi - 1

    @given(hierarchies(), st.data())
    @settings(max_examples=100)
    def test_coarsen_is_monotone(self, dim, data):
        fine = dim.finest_resolution
        coarse = data.draw(st.integers(0, fine))
        card = dim.cardinality(fine)
        a = data.draw(st.integers(0, card - 1))
        b = data.draw(st.integers(0, card - 1))
        ca = dim.coarsen_coord(a, fine, coarse)
        cb = dim.coarsen_coord(b, fine, coarse)
        if a <= b:
            assert ca <= cb

    @given(hierarchies())
    def test_fanouts_multiply_to_cardinality(self, dim):
        product = 1
        for r in range(dim.num_levels):
            product *= dim.fanout(r)
            assert product == dim.cardinality(r)

    @given(hierarchies(), st.data())
    @settings(max_examples=50)
    def test_every_fine_coord_has_exactly_one_parent(self, dim, data):
        if dim.num_levels < 2:
            return
        r = data.draw(st.integers(1, dim.finest_resolution))
        parents = [
            dim.coarsen_coord(c, r, r - 1) for c in range(dim.cardinality(r))
        ]
        # each parent appears exactly fanout times, in order
        fanout = dim.fanout(r)
        for parent in range(dim.cardinality(r - 1)):
            assert parents.count(parent) == fanout
        assert parents == sorted(parents)
