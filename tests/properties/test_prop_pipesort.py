"""Property-based tests for the PipeSort pipeline planner (SCD cover)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.olap.buildalgs.pipesort import plan_pipelines

names_strategy = st.lists(
    st.text(alphabet="abcdefgh", min_size=1, max_size=3),
    min_size=1,
    max_size=6,
    unique=True,
)


class TestPlannerProperties:
    @given(names_strategy)
    @settings(max_examples=100)
    def test_every_cuboid_covered(self, names):
        pipelines = plan_pipelines(names)
        covered = set()
        for order in pipelines:
            for plen in range(len(order) + 1):
                covered.add(frozenset(order[:plen]))
        assert len(covered) == 2 ** len(names)

    @given(names_strategy)
    @settings(max_examples=100)
    def test_pipeline_count_is_optimal(self, names):
        # symmetric chain decomposition: exactly C(n, n//2) pipelines
        n = len(names)
        assert len(plan_pipelines(names)) == math.comb(n, n // 2)

    @given(names_strategy)
    @settings(max_examples=100)
    def test_orders_are_permutations_of_their_sets(self, names):
        for order in plan_pipelines(names):
            assert len(set(order)) == len(order)
            assert set(order) <= set(names)

    @given(names_strategy)
    @settings(max_examples=100)
    def test_full_order_present_exactly_once(self, names):
        pipelines = plan_pipelines(names)
        full = [o for o in pipelines if len(o) == len(names)]
        assert len(full) == 1

    @given(names_strategy)
    @settings(max_examples=50)
    def test_deterministic(self, names):
        assert plan_pipelines(names) == plan_pipelines(list(reversed(names)))
