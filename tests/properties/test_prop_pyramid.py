"""Property-based tests for pyramid selection and the eq.-3 size law."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CubeNotAvailableError
from repro.olap.hierarchy import DimensionHierarchy
from repro.olap.pyramid import CubePyramid
from repro.query.model import Condition, Query

DIMS = [
    DimensionHierarchy.from_fanouts("a", ["a0", "a1", "a2", "a3"], [4, 5, 4, 3]),
    DimensionHierarchy.from_fanouts("b", ["b0", "b1", "b2", "b3"], [3, 4, 5, 2]),
    DimensionHierarchy.from_fanouts("c", ["c0", "c1", "c2", "c3"], [2, 6, 3, 4]),
]

PYRAMID = CubePyramid.analytic(DIMS, [0, 1, 2, 3], cell_nbytes=8)


@st.composite
def queries(draw, max_resolution=3):
    conditions = []
    for d in DIMS:
        if not draw(st.booleans()):
            continue
        r = draw(st.integers(0, max_resolution))
        card = d.cardinality(r)
        lo = draw(st.integers(0, card - 1))
        hi = draw(st.integers(lo + 1, card))
        conditions.append(Condition(d.name, r, lo=lo, hi=hi))
    return Query(conditions=tuple(conditions), measures=("value",))


class TestSelection:
    @given(queries())
    @settings(max_examples=150)
    def test_selected_level_is_sufficient_and_minimal(self, query):
        level = PYRAMID.select_level(query)
        res_of = {d.name: r for d, r in zip(PYRAMID.dimensions, level.resolutions)}
        # sufficient: every condition's resolution is reachable
        for cond in query.conditions:
            assert res_of[cond.dimension] >= cond.resolution
        # minimal: no smaller level suffices
        for smaller in PYRAMID.levels:
            if PYRAMID.level_nbytes(smaller) >= PYRAMID.level_nbytes(level):
                break
            s_res = {
                d.name: r for d, r in zip(PYRAMID.dimensions, smaller.resolutions)
            }
            assert any(
                s_res[c.dimension] < c.resolution for c in query.conditions
            )

    @given(queries())
    @settings(max_examples=100)
    def test_subcube_never_exceeds_level(self, query):
        level = PYRAMID.select_level(query)
        assert PYRAMID.subcube_size_mb(query) <= (
            PYRAMID.level_nbytes(level) / 2**20
        ) * (1 + 1e-12)

    @given(queries())
    @settings(max_examples=100)
    def test_narrowing_a_condition_never_grows_the_subcube(self, query):
        if not query.conditions:
            return
        base = PYRAMID.subcube_size_mb(query)
        cond = query.conditions[0]
        assert cond.lo is not None and cond.hi is not None
        if cond.hi - cond.lo < 2:
            return
        from dataclasses import replace as dc_replace

        narrower = dc_replace(cond, hi=cond.hi - 1)
        narrowed = query.with_conditions([narrower, *query.conditions[1:]])
        assert PYRAMID.subcube_size_mb(narrowed) <= base + 1e-12

    @given(queries(max_resolution=3))
    @settings(max_examples=100)
    def test_truncated_pyramid_raises_exactly_when_too_coarse(self, query):
        truncated = CubePyramid.analytic(DIMS, [0, 1], cell_nbytes=8)
        needs = query.required_resolution
        if needs <= 1:
            truncated.select_level(query)  # must not raise
        else:
            with np.testing.assert_raises(CubeNotAvailableError):
                truncated.select_level(query)

    @given(queries())
    @settings(max_examples=60)
    def test_eq3_factorises_over_dimensions(self, query):
        """SC_size = E_size * prod(per-dim widths): adding an
        unconstrained dimension multiplies by its full cardinality."""
        level = PYRAMID.select_level(query)
        size = PYRAMID.subcube_size_mb(query)
        widths = []
        for d, r in zip(PYRAMID.dimensions, level.resolutions):
            cond = query.condition_on(d.name)
            if cond is None:
                widths.append(d.cardinality(r))
            else:
                refined = cond.at_resolution(r, d)
                widths.append(refined.hi - refined.lo)
        expected = 8 * np.prod([float(w) for w in widths]) / 2**20
        assert np.isclose(size, expected)
