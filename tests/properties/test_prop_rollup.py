"""Property tests for the rollup cache tier.

Two contracts, both against random catalogs × random queries:

1. **Answer exactness** — a cache hit equals the uncached
   :class:`~repro.serve.executors.MaterialisedExecutor` answer
   *byte-for-byte*.  The ``quantity`` measure is integer-valued by
   construction (see ``tests/conftest.py``), so float64 sums are exact
   in any aggregation order and equality is ``==``, not ``approx``.
2. **Coverage soundness** — ``covers()`` agrees with an independent
   brute-force walk over every installed cuboid: it never claims
   coverage the brute force denies, and never misses one it grants.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partitions import PartitionQueue, QueueKind
from repro.core.perfmodel import XEON_X5667_8T
from repro.gpu import SimulatedGPU
from repro.gpu.partitioning import paper_partition_scheme
from repro.gpu.timing import TESLA_C2070_TIMING
from repro.olap import CubePyramid, CuboidSpec, RollupCatalog, RollupExecutor
from repro.query.model import Condition, Query
from repro.relational import tpcds_like_schema
from repro.serve import MaterialisedExecutor
from repro.sim.system import SystemConfig
from repro.units import GB

SCHEMA = tpcds_like_schema(scale=0.5)
DIMS = list(SCHEMA.dimensions)
NAMES = [d.name for d in DIMS]
MAX_RES = 2  # keep cuboids laptop-sized (the pyramid stops at 2 too)


@st.composite
def cuboid_specs(draw):
    idxs = draw(
        st.lists(
            st.integers(0, len(DIMS) - 1), min_size=1, max_size=len(DIMS),
            unique=True,
        )
    )
    dims = tuple(NAMES[i] for i in idxs)
    resolutions = tuple(
        draw(st.integers(0, MAX_RES)) for _ in dims
    )
    return CuboidSpec(dims=dims, resolutions=resolutions)


@st.composite
def queries(draw):
    conditions = []
    for d in DIMS:
        if not draw(st.booleans()):
            continue
        r = draw(st.integers(0, MAX_RES + 1))  # res 3 exceeds any cuboid
        card = d.cardinality(r)
        lo = draw(st.integers(0, card - 1))
        hi = draw(st.integers(lo + 1, card))
        conditions.append(Condition(d.name, r, lo=lo, hi=hi))
    agg = draw(st.sampled_from(["sum", "count", "avg", "min", "max"]))
    return Query(conditions=tuple(conditions), measures=("quantity",), agg=agg)


@pytest.fixture(scope="module")
def quantity_world(fact_table, translator):
    """Uncached executor + catalog factory over the integer measure."""
    device = SimulatedGPU(global_memory_bytes=GB, timing=TESLA_C2070_TIMING)
    device.load_table(fact_table)
    pyramid = CubePyramid.from_fact_table(
        fact_table, "quantity", [0, 1, 2], with_minmax=True
    )
    config = SystemConfig(
        cpu_model=XEON_X5667_8T,
        pyramid=pyramid,
        device=device,
        scheme=paper_partition_scheme(),
        translation_service=translator,
    )
    executor = MaterialisedExecutor(config, cpu_threads=1)
    cpu_queue = PartitionQueue("Q_CPU", QueueKind.CPU)

    built: dict[CuboidSpec, object] = {}

    def make_catalog(spec_list):
        catalog = RollupCatalog(fact_table, "quantity")
        for spec in spec_list:
            if spec not in built:
                built[spec] = catalog.materialise(spec)
            catalog.install(built[spec])
        return catalog

    return executor, cpu_queue, make_catalog


def brute_force_covers(catalog, query):
    """Independent re-derivation of the coverage rule (no lattice walk)."""
    if query.needs_translation:
        return None
    if (
        query.agg != "count"
        and query.measures
        and catalog.measure not in query.measures
    ):
        return None
    needed: dict[str, int] = {}
    for cond in query.conditions:
        needed[cond.dimension] = max(
            needed.get(cond.dimension, 0), cond.resolution
        )
    for dim, res in query.group_by:
        needed[dim] = max(needed.get(dim, 0), res)
    if any(name not in NAMES for name in needed):
        return None
    for entry in catalog.cuboids():
        if entry.pruned_cells or entry.built_rows != catalog.row_count:
            continue
        if not set(needed) <= entry.spec.key:
            continue
        if all(
            entry.spec.resolution_of(d) >= r for d, r in needed.items()
        ):
            return entry
    return None


class TestRollupProperties:
    @given(spec_list=st.lists(cuboid_specs(), max_size=3), query=queries())
    @settings(max_examples=60, deadline=None)
    def test_hit_answers_byte_identical_to_uncached(
        self, quantity_world, spec_list, query
    ):
        executor, cpu_queue, make_catalog = quantity_world
        catalog = make_catalog(spec_list)
        cuboid = catalog.covers(query)
        if cuboid is None:
            return
        cached = RollupExecutor(catalog).answer(query, cuboid)
        uncached = executor.execute(cpu_queue, query)
        if math.isnan(cached):  # empty selection: NaN on both paths
            assert math.isnan(uncached)
        else:
            assert cached == uncached  # byte-identical, no tolerance

    @given(spec_list=st.lists(cuboid_specs(), max_size=4), query=queries())
    @settings(max_examples=80, deadline=None)
    def test_covers_agrees_with_brute_force(
        self, quantity_world, spec_list, query
    ):
        _, _, make_catalog = quantity_world
        catalog = make_catalog(spec_list)
        claimed = catalog.covers(query)
        denied = brute_force_covers(catalog, query) is None
        if claimed is not None:
            # soundness: never claim what the brute force denies, and
            # the returned cuboid itself must genuinely cover the query
            assert not denied
            needed = {}
            for cond in query.conditions:
                needed[cond.dimension] = max(
                    needed.get(cond.dimension, 0), cond.resolution
                )
            assert set(needed) <= claimed.spec.key
            assert all(
                claimed.spec.resolution_of(d) >= r
                for d, r in needed.items()
            )
        else:
            # completeness: a miss means no installed cuboid covers it
            assert denied
