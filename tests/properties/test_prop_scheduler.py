"""Property-based tests on scheduler invariants (Figure 10)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partitions import PartitionQueue, QueueKind
from repro.core.scheduler import HybridScheduler, QueryEstimates
from repro.query.model import Query


class DrawnEstimator:
    def __init__(self, estimates):
        self._estimates = list(estimates)
        self._i = 0

    def estimate(self, query):
        est = self._estimates[self._i % len(self._estimates)]
        self._i += 1
        return est


@st.composite
def estimates(draw):
    has_cpu = draw(st.booleans())
    t_cpu = draw(st.floats(1e-4, 2.0)) if has_cpu else None
    base = draw(st.floats(1e-3, 0.5))
    # GPU times decrease with SM count (physical monotonicity)
    t_gpu = {1: base, 2: base * draw(st.floats(0.4, 0.9)), 4: base * draw(st.floats(0.1, 0.4))}
    t_trans = draw(st.one_of(st.just(0.0), st.floats(1e-5, 0.05)))
    return QueryEstimates(t_cpu=t_cpu, t_gpu=t_gpu, t_trans=t_trans)


def build_scheduler(estimator, t_c):
    cpu_q = PartitionQueue("Q_CPU", QueueKind.CPU)
    trans_q = PartitionQueue("Q_TRANS", QueueKind.TRANSLATION)
    gpu_qs = [
        PartitionQueue(f"Q_G{i + 1}", QueueKind.GPU, n_sm=n)
        for i, n in enumerate([1, 1, 2, 2, 4, 4])
    ]
    return HybridScheduler(cpu_q, gpu_qs, trans_q, estimator, t_c)


class TestSchedulerInvariants:
    @given(st.lists(estimates(), min_size=1, max_size=30), st.floats(0.05, 2.0))
    @settings(max_examples=100, deadline=None)
    def test_every_query_is_placed_and_books_are_consistent(self, ests, t_c):
        sched = build_scheduler(DrawnEstimator(ests), t_c)
        n = len(ests)
        for i in range(n):
            sched.schedule(Query(conditions=(), measures=("v",)), now=0.1 * i)
        # every query placed on exactly one processing queue
        placed = sum(q.jobs_submitted for q in [sched.cpu_queue, *sched.gpu_queues])
        assert placed == n
        # T_Q of every queue equals the sum of its submissions' windows
        for queue in [sched.cpu_queue, *sched.gpu_queues, sched.trans_queue]:
            if queue.submissions:
                last = queue.submissions[-1]
                assert queue.t_q == last.estimated_finish

    @given(st.lists(estimates(), min_size=1, max_size=30), st.floats(0.05, 2.0))
    @settings(max_examples=100, deadline=None)
    def test_translation_iff_gpu_and_text(self, ests, t_c):
        sched = build_scheduler(DrawnEstimator(ests), t_c)
        for i, est in enumerate(ests):
            decision = sched.schedule(
                Query(conditions=(), measures=("v",)), now=0.1 * i
            )
            if decision.target.kind is QueueKind.GPU and est.needs_translation:
                assert decision.translation is not None
            else:
                assert decision.translation is None

    @given(st.lists(estimates(), min_size=1, max_size=30), st.floats(0.05, 2.0))
    @settings(max_examples=100, deadline=None)
    def test_response_estimate_is_achievable(self, ests, t_c):
        # the estimated response never precedes now + the pure
        # processing time of the chosen partition
        sched = build_scheduler(DrawnEstimator(ests), t_c)
        for i, est in enumerate(ests):
            now = 0.05 * i
            decision = sched.schedule(Query(conditions=(), measures=("v",)), now=now)
            assert (
                decision.estimated_response
                >= now + decision.processing.estimated_time - 1e-12
            )

    @given(st.lists(estimates(), min_size=2, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_deadline_flag_matches_step4(self, ests):
        sched = build_scheduler(DrawnEstimator(ests), 0.3)
        for i in range(len(ests)):
            decision = sched.schedule(Query(conditions=(), measures=("v",)), now=0.0)
            # inclusive boundary: finishing exactly at T_D makes the
            # deadline (step 4's P_BD test and QueryRecord.met_deadline)
            assert decision.meets_deadline == (
                decision.deadline - decision.estimated_response >= 0
            )
