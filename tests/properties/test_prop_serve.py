"""Property: the serving engine is the Figure-10 scheduler, verbatim.

For any drawn estimate sequence, batch-submitting through a fake-clock
:class:`~repro.serve.ServeEngine` must produce exactly the decision
sequence a bare scheduler produces over an identical queue scheme —
same partition, same branch (translated or not), same estimated
response, same admission verdict.  The serving layer adds wall-clock
execution; it must never add scheduling behaviour.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.admission import AdmissionControlScheduler, AdmissionRejected
from repro.core.partitions import PartitionQueue, QueueKind
from repro.paper import paper_system_config
from repro.query.model import Query
from repro.serve import FakeClock, NullExecutor, ServeEngine

from tests.properties.test_prop_scheduler import DrawnEstimator, estimates

CONFIG = paper_system_config(include_32gb=False)


def reference_scheduler(config, estimator, factory=None):
    """The same wiring ServeEngine uses, minus the serving machinery."""
    cpu_q = PartitionQueue("Q_CPU", QueueKind.CPU)
    trans_q = PartitionQueue(
        "Q_TRANS", QueueKind.TRANSLATION, capacity=config.translation_workers
    )
    gpu_qs = [
        PartitionQueue(f"Q_{p.name}", QueueKind.GPU, n_sm=p.n_sm)
        for p in config.scheme
    ]
    factory = factory if factory is not None else config.scheduler_factory
    return factory(cpu_q, gpu_qs, trans_q, estimator, config.time_constraint)


class TestServeMatchesScheduler:
    @given(st.lists(estimates(), min_size=1, max_size=25))
    @settings(max_examples=50, deadline=None)
    def test_same_partition_and_branch(self, ests):
        reference = reference_scheduler(CONFIG, DrawnEstimator(ests))
        expected = [
            reference.schedule(Query(conditions=(), measures=("v",)), now=0.0)
            for _ in ests
        ]

        engine = ServeEngine(
            CONFIG,
            clock=FakeClock(),
            executor=NullExecutor(),
            estimator=DrawnEstimator(ests),
        )
        # batch-submit before start: the fake clock stays at 0, so every
        # serve decision sees now=0.0 exactly like the reference
        outcomes = [
            engine.submit(Query(conditions=(), measures=("v",)))
            for _ in ests
        ]
        try:
            for want, outcome in zip(expected, outcomes):
                got = outcome.decision
                assert got.target.name == want.target.name
                assert (got.translation is None) == (want.translation is None)
                assert got.estimated_response == want.estimated_response
                assert got.meets_deadline == want.meets_deadline
                assert got.deadline == want.deadline
        finally:
            engine.stop(finish_queued=False)

    @given(
        st.lists(estimates(), min_size=1, max_size=25),
        st.floats(0.0, 2.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_same_admission_verdicts(self, ests, lateness_factor):
        import functools

        factory = functools.partial(
            AdmissionControlScheduler, lateness_factor=lateness_factor
        )
        config = paper_system_config(
            include_32gb=False, scheduler_factory=factory
        )
        reference = reference_scheduler(config, DrawnEstimator(ests), factory)
        verdicts = []
        for _ in ests:
            try:
                d = reference.schedule(
                    Query(conditions=(), measures=("v",)), now=0.0
                )
                verdicts.append(d.target.name)
            except AdmissionRejected:
                verdicts.append(None)

        engine = ServeEngine(
            config,
            clock=FakeClock(),
            executor=NullExecutor(),
            estimator=DrawnEstimator(ests),
        )
        try:
            for want in verdicts:
                outcome = engine.submit(Query(conditions=(), measures=("v",)))
                if want is None:
                    assert not outcome.accepted
                else:
                    assert outcome.accepted
                    assert outcome.decision.target.name == want
        finally:
            engine.stop(finish_queued=False)
