"""Property-based audits: random workloads never break the sim invariants.

Whatever the scheduler, arrival process, text fraction, noise level or
translation-worker count, every realised schedule the discrete-event
layer produces must satisfy the :mod:`repro.sim.validate` families —
dependency order, FIFO/capacity discipline, job conservation, and (for
deterministic capacity-1 runs) bounded estimate-vs-realised drift.
"""

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import (
    FastestFirstScheduler,
    GPUOnlyScheduler,
    MCTScheduler,
    METScheduler,
    RoundRobinScheduler,
)
from repro.core.scheduler import HybridScheduler
from repro.paper import paper_system_config, paper_workload
from repro.query.workload import ArrivalProcess
from repro.sim.system import HybridSystem
from repro.sim.validate import validate_report

SCHEDULERS = [
    HybridScheduler,
    MCTScheduler,
    METScheduler,
    RoundRobinScheduler,
    FastestFirstScheduler,
    GPUOnlyScheduler,  # paper workloads always carry GPU estimates
]


@st.composite
def system_runs(draw):
    scheduler = draw(st.sampled_from(SCHEDULERS))
    n = draw(st.integers(5, 50))
    text_prob = draw(st.sampled_from([0.0, 0.2, 0.6]))
    noise = draw(st.sampled_from([0.0, 0.25]))
    workers = draw(st.sampled_from([1, 2]))
    arrivals = draw(
        st.sampled_from(
            [ArrivalProcess("closed"), ArrivalProcess("poisson", rate=40.0)]
        )
    )
    seed = draw(st.integers(0, 10_000))
    config = replace(
        paper_system_config(
            include_32gb=False,
            scheduler_factory=scheduler,
            noise_sigma=noise,
            seed=seed,
        ),
        translation_workers=workers,
    )
    stream = paper_workload(text_prob=text_prob, seed=seed).generate(
        n, arrivals=arrivals
    )
    return config, stream


class TestEveryRunIsValid:
    @given(system_runs())
    @settings(max_examples=30, deadline=None)
    def test_invariants_hold(self, run):
        config, stream = run
        report = HybridSystem(config).run(stream)
        result = validate_report(report)
        assert result.ok, result.summary()
        assert report.completed == len(list(stream))

    @given(st.integers(0, 10_000), st.integers(10, 80))
    @settings(max_examples=20, deadline=None)
    def test_deterministic_runs_audit_drift(self, seed, n):
        # noise off, capacity 1 everywhere: the books must upper-bound
        # the realised schedule — the invariant the historical
        # translated-query T_Q under-count violated
        config = paper_system_config(include_32gb=False, seed=seed)
        stream = paper_workload(text_prob=0.5, seed=seed).generate(n)
        result = validate_report(HybridSystem(config).run(stream))
        assert "drift" in result.checked
        assert result.ok, result.summary()

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_truncated_runs_conserve_jobs(self, seed):
        config = paper_system_config(include_32gb=False, seed=seed)
        stream = paper_workload(text_prob=0.4, seed=seed).generate(60)
        report = HybridSystem(config).run(stream, max_events=70)
        result = validate_report(report)
        assert result.ok, result.summary()
