"""Property-based tests for workload generation invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.olap.hierarchy import DimensionHierarchy
from repro.query.model import required_resolution
from repro.query.workload import ArrivalProcess, QueryClass, WorkloadSpec

DIMS = [
    DimensionHierarchy.from_fanouts("a", ["a0", "a1", "a2"], [4, 5, 6]),
    DimensionHierarchy.from_fanouts("b", ["b0", "b1", "b2"], [3, 4, 5]),
    DimensionHierarchy.from_fanouts("c", ["c0", "c1", "c2"], [2, 3, 7]),
]


@st.composite
def query_classes(draw):
    resolution = draw(st.integers(0, 2))
    lo = draw(st.integers(1, 3))
    hi = draw(st.integers(lo, 3))
    clo = draw(st.floats(0.05, 0.95))
    chi = draw(st.floats(clo, 1.0))
    return QueryClass(
        name=draw(st.sampled_from(["q1", "q2", "q3"])),
        weight=draw(st.floats(0.1, 5.0)),
        resolution=resolution,
        dims_constrained=(lo, hi),
        coverage=(clo, chi),
    )


class TestWorkloadInvariants:
    @given(st.lists(query_classes(), min_size=1, max_size=3), st.integers(0, 2**31))
    @settings(max_examples=80, deadline=None)
    def test_generated_queries_honour_class_contracts(self, classes, seed):
        # unique names per class list
        named = {c.name: c for c in classes}
        spec = WorkloadSpec(
            DIMS, list(named.values()), measures=("v",), seed=seed % (2**31)
        )
        stream = spec.generate(40)
        for entry in stream:
            cls = named[entry.query_class]
            q = entry.query
            # eq. 2 over the generated conditions equals the class resolution
            assert required_resolution(q.conditions) == cls.resolution
            # constrained-dimension count within the class bounds
            lo, hi = cls.dims_constrained
            assert lo <= len(q.conditions) <= min(hi, len(DIMS))
            # every range respects the coverage band (after rounding)
            for cond in q.conditions:
                d = next(x for x in DIMS if x.name == cond.dimension)
                card = d.cardinality(cond.resolution)
                width = cond.width()
                min_w = max(1, round(cls.coverage[0] * card))
                max_w = min(card, round(cls.coverage[1] * card))
                assert min_w - 1 <= width <= max_w + 1
                # ranges stay inside the axis
                assert cond.lo is not None and 0 <= cond.lo
                assert cond.hi is not None and cond.hi <= card

    @given(st.integers(0, 2**31), st.integers(1, 60))
    @settings(max_examples=40, deadline=None)
    def test_streams_deterministic(self, seed, n):
        spec = WorkloadSpec(
            DIMS,
            [QueryClass("c", 1.0, resolution=1)],
            measures=("v",),
            seed=seed % (2**31),
        )
        key = lambda e: (e.query.conditions, e.query.agg, e.time)
        assert [key(e) for e in spec.generate(n)] == [
            key(e) for e in spec.generate(n)
        ]

    @given(
        st.floats(0.5, 500.0),
        st.integers(1, 100),
        st.sampled_from(["uniform", "poisson"]),
    )
    @settings(max_examples=60)
    def test_arrival_times_nonnegative_and_sorted(self, rate, n, kind):
        rng = np.random.default_rng(0)
        times = ArrivalProcess(kind, rate=rate).times(n, rng)
        assert len(times) == n
        assert np.all(times >= 0)
        assert np.all(np.diff(times) >= 0)
