"""Unit tests for the query algebra (eq. 1, 2, 11, 12, 16)."""

import pytest

from repro.errors import DimensionError, QueryError, ResolutionError
from repro.olap.hierarchy import DimensionHierarchy
from repro.query.model import (
    Condition,
    Query,
    decompose,
    dimension_column,
    required_resolution,
)


@pytest.fixture()
def hierarchies(time_dim):
    geo = DimensionHierarchy.from_fanouts("geo", ["country", "city"], [10, 20])
    return {"time": time_dim, "geo": geo}


class TestCondition:
    def test_range_form(self):
        c = Condition("time", 1, lo=3, hi=9)
        assert c.is_range and not c.is_text and not c.is_codes
        assert c.width() == 6

    def test_text_form(self):
        c = Condition("geo", 1, text_values=("Rome",))
        assert c.is_text
        with pytest.raises(QueryError):
            c.width()

    def test_codes_form(self):
        c = Condition("geo", 1, codes=(4, 4, 7))
        assert c.is_codes
        assert c.width() == 2  # duplicates collapse

    def test_no_parameters_rejected(self):
        with pytest.raises(QueryError):
            Condition("time", 0)

    def test_mixed_forms_rejected(self):
        with pytest.raises(QueryError):
            Condition("time", 0, lo=0, hi=1, text_values=("x",))
        with pytest.raises(QueryError):
            Condition("time", 0, codes=(1,), text_values=("x",))

    def test_half_range_rejected(self):
        with pytest.raises(QueryError):
            Condition("time", 0, lo=3)

    def test_invalid_range(self):
        with pytest.raises(QueryError):
            Condition("time", 0, lo=5, hi=5)
        with pytest.raises(QueryError):
            Condition("time", 0, lo=-1, hi=3)

    def test_negative_resolution(self):
        with pytest.raises(ResolutionError):
            Condition("time", -1, lo=0, hi=1)

    def test_at_resolution_refines(self, time_dim):
        c = Condition("time", 0, lo=1, hi=3)
        fine = c.at_resolution(1, time_dim)
        assert (fine.lo, fine.hi) == (12, 36)
        assert fine.resolution == 1

    def test_at_resolution_wrong_dimension(self, time_dim):
        c = Condition("geo", 0, lo=0, hi=1)
        with pytest.raises(DimensionError):
            c.at_resolution(1, time_dim)

    def test_at_resolution_identity(self, time_dim):
        c = Condition("time", 1, lo=0, hi=5)
        assert c.at_resolution(1, time_dim) is c

    def test_translated(self):
        c = Condition("geo", 1, text_values=("a", "b"))
        t = c.translated([9, 2, 9])
        assert t.codes == (2, 9)
        assert not t.is_text

    def test_translated_on_non_text(self):
        c = Condition("geo", 1, lo=0, hi=1)
        with pytest.raises(QueryError):
            c.translated([1])

    def test_translated_empty_codes(self):
        c = Condition("geo", 1, text_values=("a",))
        with pytest.raises(QueryError):
            c.translated([])

    def test_str_forms(self):
        assert "[0, 4)" in str(Condition("t", 0, lo=0, hi=4))
        assert "'x'" in str(Condition("t", 0, text_values=("x",)))
        assert "codes" in str(Condition("t", 0, codes=(1,)))


class TestRequiredResolution:
    def test_eq2_is_max(self):
        conds = [Condition("a", 0, lo=0, hi=1), Condition("b", 3, lo=0, hi=1)]
        assert required_resolution(conds) == 3

    def test_empty_is_zero(self):
        assert required_resolution([]) == 0


class TestQuery:
    def test_ids_unique(self):
        a = Query(conditions=(), measures=("v",))
        b = Query(conditions=(), measures=("v",))
        assert a.query_id != b.query_id

    def test_duplicate_dimension_rejected(self):
        with pytest.raises(QueryError):
            Query(
                conditions=(
                    Condition("t", 0, lo=0, hi=1),
                    Condition("t", 1, lo=0, hi=2),
                ),
                measures=("v",),
            )

    def test_invalid_agg(self):
        with pytest.raises(QueryError):
            Query(conditions=(), measures=("v",), agg="median")

    def test_sum_requires_measure(self):
        with pytest.raises(QueryError):
            Query(conditions=(), measures=(), agg="sum")

    def test_count_without_measures(self):
        q = Query(conditions=(), measures=(), agg="count")
        assert q.agg == "count"

    def test_condition_on(self):
        c = Condition("t", 0, lo=0, hi=1)
        q = Query(conditions=(c,), measures=("v",))
        assert q.condition_on("t") is c
        assert q.condition_on("missing") is None

    def test_needs_translation(self):
        q = Query(
            conditions=(Condition("t", 0, text_values=("x",)),), measures=("v",)
        )
        assert q.needs_translation
        assert len(q.text_conditions) == 1

    def test_with_conditions_preserves_identity(self):
        q = Query(conditions=(), measures=("v",))
        q2 = q.with_conditions([Condition("t", 0, lo=0, hi=1)])
        assert q2.query_id == q.query_id
        assert len(q2.conditions) == 1


class TestDecomposition:
    def test_columns_selected_by_dim_and_level(self, hierarchies):
        q = Query(
            conditions=(
                Condition("time", 1, lo=0, hi=6),
                Condition("geo", 0, lo=2, hi=4),
            ),
            measures=("v",),
        )
        d = decompose(q, hierarchies)
        cols = [p.column for p in d.predicates]
        assert cols == ["time__month", "geo__country"]

    def test_eq12_column_count(self, hierarchies):
        q = Query(
            conditions=(Condition("time", 2, lo=0, hi=10),),
            measures=("v", "w"),
        )
        d = decompose(q, hierarchies)
        assert d.num_filtration_conditions == 1
        assert d.num_data_columns == 2
        assert d.columns_accessed == 3

    def test_count_query_reads_no_data_columns(self, hierarchies):
        q = Query(conditions=(Condition("time", 0, lo=0, hi=1),), measures=(), agg="count")
        d = decompose(q, hierarchies)
        assert d.num_data_columns == 0
        assert d.columns_accessed == 1

    def test_eq16_text_condition_count(self, hierarchies):
        q = Query(
            conditions=(
                Condition("time", 1, lo=0, hi=2),
                Condition("geo", 1, text_values=("Rome", "Oslo")),
            ),
            measures=("v",),
        )
        d = decompose(q, hierarchies)
        assert d.num_text_conditions == 1
        assert d.text_columns == ("geo__city",)
        assert d.needs_translation

    def test_column_fraction(self, hierarchies):
        q = Query(conditions=(Condition("time", 0, lo=0, hi=1),), measures=("v",))
        d = decompose(q, hierarchies)
        assert d.column_fraction(10) == 0.2
        with pytest.raises(QueryError):
            d.column_fraction(0)

    def test_unknown_dimension(self, hierarchies):
        q = Query(conditions=(Condition("zzz", 0, lo=0, hi=1),), measures=("v",))
        with pytest.raises(DimensionError):
            decompose(q, hierarchies)

    def test_bad_resolution(self, hierarchies):
        q = Query(conditions=(Condition("geo", 5, lo=0, hi=1),), measures=("v",))
        with pytest.raises(ResolutionError):
            decompose(q, hierarchies)

    def test_dimension_column_helper(self):
        assert dimension_column("store", "city") == "store__city"
