"""Unit tests for the textual query language."""

import pytest

from repro.errors import ParseError
from repro.olap.hierarchy import DimensionHierarchy
from repro.query.parser import parse_query, tokenize


@pytest.fixture()
def hierarchies(time_dim):
    geo = DimensionHierarchy.from_fanouts("geo", ["country", "city"], [10, 20])
    return {"time": time_dim, "geo": geo}


class TestTokenizer:
    def test_basic_tokens(self):
        kinds = [t.kind for t in tokenize("SELECT sum(v)")]
        assert kinds == ["SELECT", "NAME", "OP", "NAME", "OP", "EOF"]

    def test_string_literal(self):
        toks = tokenize("'New York'")
        assert toks[0].kind == "STRING"

    def test_escaped_quote(self):
        toks = tokenize(r"'O\'Brien'")
        assert toks[0].kind == "STRING"

    def test_keywords_case_insensitive(self):
        assert tokenize("select")[0].kind == "SELECT"
        assert tokenize("WHERE")[0].kind == "WHERE"

    def test_unknown_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            tokenize("SELECT sum(v) WHERE a.b = #")


class TestParse:
    def test_minimal_query(self, hierarchies):
        q = parse_query("SELECT sum(v)", hierarchies)
        assert q.agg == "sum"
        assert q.measures == ("v",)
        assert q.conditions == ()

    def test_range_condition(self, hierarchies):
        q = parse_query("SELECT sum(v) WHERE time.month IN [3, 9)", hierarchies)
        (c,) = q.conditions
        assert (c.dimension, c.resolution, c.lo, c.hi) == ("time", 1, 3, 9)

    def test_between_is_inclusive(self, hierarchies):
        q = parse_query("SELECT sum(v) WHERE time.year BETWEEN 1 AND 2", hierarchies)
        (c,) = q.conditions
        assert (c.lo, c.hi) == (1, 3)

    def test_numeric_equality(self, hierarchies):
        q = parse_query("SELECT sum(v) WHERE geo.country = 4", hierarchies)
        (c,) = q.conditions
        assert (c.lo, c.hi) == (4, 5)

    def test_string_equality(self, hierarchies):
        q = parse_query("SELECT sum(v) WHERE geo.city = 'Rome'", hierarchies)
        (c,) = q.conditions
        assert c.text_values == ("Rome",)

    def test_string_in_list(self, hierarchies):
        q = parse_query(
            "SELECT avg(v) WHERE geo.city IN ('Rome', 'Oslo')", hierarchies
        )
        (c,) = q.conditions
        assert c.text_values == ("Rome", "Oslo")

    def test_integer_in_list_becomes_codes(self, hierarchies):
        q = parse_query("SELECT sum(v) WHERE geo.city IN (3, 5)", hierarchies)
        (c,) = q.conditions
        assert c.codes == (3, 5)

    def test_multiple_conditions(self, hierarchies):
        q = parse_query(
            "SELECT sum(v) WHERE time.day IN [0, 30) AND geo.country = 2",
            hierarchies,
        )
        assert len(q.conditions) == 2
        assert q.required_resolution == 2

    def test_count_star(self, hierarchies):
        q = parse_query("SELECT count(*)", hierarchies)
        assert q.agg == "count"
        assert q.measures == ()

    def test_count_star_only_for_count(self, hierarchies):
        with pytest.raises(ParseError):
            parse_query("SELECT sum(*)", hierarchies)

    def test_multiple_measures(self, hierarchies):
        q = parse_query("SELECT sum(v, w)", hierarchies)
        assert q.measures == ("v", "w")

    def test_all_aggregates(self, hierarchies):
        for agg in ("sum", "count", "avg", "min", "max"):
            q = parse_query(f"SELECT {agg}(v)", hierarchies)
            assert q.agg == agg

    def test_case_insensitive_keywords(self, hierarchies):
        q = parse_query("select SUM(v) where time.year = 0", hierarchies)
        assert q.agg == "sum"


class TestErrors:
    def test_unknown_dimension(self, hierarchies):
        with pytest.raises(ParseError, match="unknown dimension"):
            parse_query("SELECT sum(v) WHERE planet.x = 1", hierarchies)

    def test_unknown_level(self, hierarchies):
        with pytest.raises(ParseError, match="no level"):
            parse_query("SELECT sum(v) WHERE time.hour = 1", hierarchies)

    def test_missing_where_body(self, hierarchies):
        with pytest.raises(ParseError):
            parse_query("SELECT sum(v) WHERE", hierarchies)

    def test_trailing_garbage(self, hierarchies):
        with pytest.raises(ParseError):
            parse_query("SELECT sum(v) extra", hierarchies)

    def test_mixed_value_list(self, hierarchies):
        with pytest.raises(ParseError, match="mixes"):
            parse_query("SELECT sum(v) WHERE geo.city IN ('Rome', 3)", hierarchies)

    def test_bad_comparator(self, hierarchies):
        with pytest.raises(ParseError):
            parse_query("SELECT sum(v) WHERE geo.city > 3", hierarchies)

    def test_invalid_agg_is_query_error(self, hierarchies):
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            parse_query("SELECT median(v)", hierarchies)

    def test_duplicate_dimension_rejected(self, hierarchies):
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            parse_query(
                "SELECT sum(v) WHERE time.year = 1 AND time.month = 2", hierarchies
            )


class TestRoundTrip:
    def test_parsed_query_runs_on_table(self, fact_table, small_schema, dataset):
        city = dataset.vocabularies["store__city"][4].replace("'", r"\'")
        text = f"SELECT sum(quantity) WHERE date.quarter IN [0, 4) AND store.city = '{city}'"
        q = parse_query(text, small_schema.hierarchies)
        assert q.needs_translation
        assert q.condition_on("date").resolution == 1
