"""Unit tests for workload generation."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.query.workload import ArrivalProcess, QueryClass, TimedQuery, WorkloadSpec


@pytest.fixture()
def spec(small_schema, dataset):
    return WorkloadSpec(
        small_schema.dimensions,
        [
            QueryClass("small", 0.7, resolution=1, coverage=(0.1, 0.5)),
            QueryClass(
                "big",
                0.3,
                resolution=2,
                dims_constrained=(1, 2),
                coverage=(0.8, 1.0),
                text_prob=0.5,
            ),
        ],
        measures=small_schema.measures,
        text_levels=list(small_schema.text_levels),
        vocabularies=dataset.vocabularies,
        seed=5,
    )


class TestQueryClass:
    def test_negative_weight(self):
        with pytest.raises(WorkloadError):
            QueryClass("x", -1, resolution=0)

    def test_bad_coverage(self):
        with pytest.raises(WorkloadError):
            QueryClass("x", 1, resolution=0, coverage=(0.0, 0.5))
        with pytest.raises(WorkloadError):
            QueryClass("x", 1, resolution=0, coverage=(0.8, 0.2))

    def test_bad_text_prob(self):
        with pytest.raises(WorkloadError):
            QueryClass("x", 1, resolution=0, text_prob=1.5)

    def test_bad_dims_constrained(self):
        with pytest.raises(WorkloadError):
            QueryClass("x", 1, resolution=0, dims_constrained=(3, 1))


class TestArrivalProcess:
    def test_closed_all_zero(self, rng):
        times = ArrivalProcess("closed").times(5, rng)
        assert np.all(times == 0.0)

    def test_uniform_spacing(self, rng):
        times = ArrivalProcess("uniform", rate=10.0).times(4, rng)
        assert np.allclose(np.diff(times), 0.1)

    def test_poisson_monotone(self, rng):
        times = ArrivalProcess("poisson", rate=100.0).times(50, rng)
        assert np.all(np.diff(times) >= 0)
        assert times[0] == 0.0

    def test_unknown_kind(self):
        with pytest.raises(WorkloadError):
            ArrivalProcess("burst")

    def test_rate_required(self):
        with pytest.raises(WorkloadError):
            ArrivalProcess("poisson", rate=0.0)

    def test_negative_n(self, rng):
        with pytest.raises(WorkloadError):
            ArrivalProcess("closed").times(-1, rng)


class TestGeneration:
    def test_deterministic(self, spec):
        s1 = spec.generate(100)
        s2 = spec.generate(100)
        # query_ids differ (global counter); structure must be identical
        key = lambda e: (e.query.conditions, e.query.measures, e.query.agg, e.time)
        assert [key(e) for e in s1] == [key(e) for e in s2]

    def test_class_mix_approximates_weights(self, spec):
        counts = spec.generate(2000).class_counts()
        assert 0.6 < counts["small"] / 2000 < 0.8
        assert 0.2 < counts["big"] / 2000 < 0.4

    def test_resolution_forced(self, spec):
        stream = spec.generate(300)
        for entry in stream:
            cls_res = 1 if entry.query_class == "small" else 2
            numeric = [c for c in entry.query.conditions if not c.is_text]
            assert max(c.resolution for c in numeric) == cls_res

    def test_text_conditions_present(self, spec):
        stream = spec.generate(400)
        translated = [e for e in stream if e.query.needs_translation]
        big = [e for e in stream if e.query_class == "big"]
        # text_prob=0.5, minus cases where every text dimension was
        # already range-constrained
        assert 0.2 < len(translated) / len(big) < 0.8
        assert all(e.query_class == "big" for e in translated)

    def test_text_literals_are_valid(self, spec, dataset, translator):
        stream = spec.generate(300)
        for entry in stream:
            if entry.query.needs_translation:
                translator.translate(entry.query)  # must not raise

    def test_text_as_codes(self, small_schema, dataset):
        spec = WorkloadSpec(
            small_schema.dimensions,
            [QueryClass("c", 1, resolution=1, text_prob=1.0, text_as_codes=True)],
            measures=small_schema.measures,
            text_levels=list(small_schema.text_levels),
            vocabularies=dataset.vocabularies,
        )
        stream = spec.generate(100)
        assert not any(e.query.needs_translation for e in stream)
        assert any(
            any(c.is_codes for c in e.query.conditions) for e in stream
        )

    def test_coverage_bounds_respected(self, small_schema):
        spec = WorkloadSpec(
            small_schema.dimensions,
            [QueryClass("c", 1, resolution=1, coverage=(0.5, 0.5), dims_constrained=(1, 1))],
            measures=("quantity",),
        )
        for entry in spec.generate(50):
            (cond,) = entry.query.conditions
            card = small_schema.dimension(cond.dimension).cardinality(cond.resolution)
            assert cond.width() == round(0.5 * card)

    def test_range_dimensions_restriction(self, small_schema):
        spec = WorkloadSpec(
            small_schema.dimensions,
            [QueryClass("c", 1, resolution=1, dims_constrained=(1, 3))],
            measures=("quantity",),
            range_dimensions=["date"],
        )
        for entry in spec.generate(50):
            assert all(c.dimension == "date" for c in entry.query.conditions)

    def test_unknown_range_dimension(self, small_schema):
        with pytest.raises(WorkloadError):
            WorkloadSpec(
                small_schema.dimensions,
                [QueryClass("c", 1, resolution=0)],
                measures=("quantity",),
                range_dimensions=["nope"],
            )

    def test_text_prob_without_vocab_rejected(self, small_schema):
        with pytest.raises(WorkloadError):
            WorkloadSpec(
                small_schema.dimensions,
                [QueryClass("c", 1, resolution=0, text_prob=0.5)],
                measures=("quantity",),
            )

    def test_resolution_deeper_than_dims_rejected(self, small_schema):
        with pytest.raises(WorkloadError):
            WorkloadSpec(
                small_schema.dimensions,
                [QueryClass("c", 1, resolution=9)],
                measures=("quantity",),
            )

    def test_arrival_times_sorted_in_stream(self, spec):
        stream = spec.generate(100, ArrivalProcess("poisson", rate=50))
        times = [e.time for e in stream]
        assert times == sorted(times)

    def test_stream_indexing(self, spec):
        stream = spec.generate(10)
        assert isinstance(stream[0], TimedQuery)
        assert len(stream.queries) == 10

    def test_empty_stream(self, spec):
        assert len(spec.generate(0)) == 0


class TestValidationErrors:
    def test_no_classes(self, small_schema):
        with pytest.raises(WorkloadError):
            WorkloadSpec(small_schema.dimensions, [], measures=("v",))

    def test_zero_total_weight(self, small_schema):
        with pytest.raises(WorkloadError):
            WorkloadSpec(
                small_schema.dimensions,
                [QueryClass("c", 0.0, resolution=0)],
                measures=("v",),
            )

    def test_no_measures(self, small_schema):
        with pytest.raises(WorkloadError):
            WorkloadSpec(
                small_schema.dimensions,
                [QueryClass("c", 1, resolution=0)],
                measures=(),
            )
