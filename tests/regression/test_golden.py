"""Golden-master regression suite for the six schedulers.

Each fixture in ``tests/regression/golden/`` pins the headline
:class:`~repro.sim.metrics.SystemReport` numbers for one scheduler on
a fixed Table-3-style workload (fixed seeds, lognormal service noise
so feedback bias is non-trivial).  Any change to scheduling, queueing,
feedback, or workload generation that moves these numbers fails here —
deliberate behaviour changes must regenerate the fixtures:

    PYTHONPATH=src python -m pytest tests/regression -q --regen-golden

and the regenerated JSON diff must be reviewed alongside the code.
"""

import json
from pathlib import Path

import pytest

from repro.core.baselines import (
    FastestFirstScheduler,
    GPUOnlyScheduler,
    MCTScheduler,
    METScheduler,
    RoundRobinScheduler,
)
from repro.core.scheduler import HybridScheduler
from repro.paper import TABLE3_TEXT_PROB, paper_system_config, paper_workload
from repro.query.workload import ArrivalProcess
from repro.sim import HybridSystem

GOLDEN_DIR = Path(__file__).parent / "golden"

#: fixed experiment shape — changing any of these invalidates the fixtures
N_QUERIES = 300
RATE = 100.0
NOISE_SIGMA = 0.25
CONFIG_SEED = 2012
WORKLOAD_SEED = 7

SCHEDULERS = {
    "hybrid": HybridScheduler,
    "mct": MCTScheduler,
    "met": METScheduler,
    "round_robin": RoundRobinScheduler,
    "fastest_first": FastestFirstScheduler,
    "gpu_only": GPUOnlyScheduler,
}

REL_TOL = 1e-6


def run_pinned_experiment(scheduler_name):
    config = paper_system_config(
        include_32gb=True,
        scheduler_factory=SCHEDULERS[scheduler_name],
        noise_sigma=NOISE_SIGMA,
        seed=CONFIG_SEED,
    )
    workload = paper_workload(
        include_32gb=True, text_prob=TABLE3_TEXT_PROB, seed=WORKLOAD_SEED
    )
    stream = workload.generate(N_QUERIES, ArrivalProcess("uniform", rate=RATE))
    return HybridSystem(config).run(stream)


def snapshot(report):
    return {
        "completed": report.completed,
        "rejected": report.rejected,
        "translated": sum(1 for r in report.records if r.translated),
        "queries_per_second": report.queries_per_second,
        "deadline_hit_rate": report.deadline_hit_rate,
        "mean_response_time": report.mean_response_time,
        "overall_bias_ratio": report.overall_bias_ratio,
        "by_class": dict(sorted(report.by_class().items())),
        "by_target": dict(sorted(report.by_target().items())),
    }


def assert_matches(got, want, scheduler_name):
    assert sorted(got) == sorted(want), (
        f"{scheduler_name}: golden fixture metric set changed"
    )
    for key, expected in want.items():
        actual = got[key]
        if isinstance(expected, dict):
            assert actual == expected, f"{scheduler_name}: {key} changed"
        elif isinstance(expected, float):
            assert actual == pytest.approx(expected, rel=REL_TOL), (
                f"{scheduler_name}: {key} drifted: "
                f"{actual!r} != golden {expected!r}"
            )
        else:
            assert actual == expected, (
                f"{scheduler_name}: {key} changed: "
                f"{actual!r} != golden {expected!r}"
            )


@pytest.mark.parametrize("scheduler_name", sorted(SCHEDULERS))
def test_scheduler_matches_golden_master(scheduler_name, request):
    path = GOLDEN_DIR / f"{scheduler_name}.json"
    got = snapshot(run_pinned_experiment(scheduler_name))
    if request.config.getoption("--regen-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(got, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {path.name}")
    if not path.exists():
        pytest.fail(
            f"missing golden fixture {path}; generate it with:\n"
            "  PYTHONPATH=src python -m pytest tests/regression -q "
            "--regen-golden"
        )
    assert_matches(got, json.loads(path.read_text()), scheduler_name)


def test_golden_run_is_deterministic():
    """Two in-process runs must agree bit-for-bit, not just to tolerance."""
    a = snapshot(run_pinned_experiment("hybrid"))
    b = snapshot(run_pinned_experiment("hybrid"))
    assert a == b


# -- adaptive spike run -------------------------------------------------------
#
# The adapt plane's whole history — every controller action and every
# installed model epoch of the frozen-seed spike scenario — is pinned,
# not just the headline rates.  Any change to the recalibrator's fit
# windows, the controller's escalation ladder, the guard clamps, or the
# scenario harness's event interleaving moves this fixture.


def snapshot_adaptive():
    from repro.adapt.scenarios import spike_scenario

    kit = spike_scenario(adaptive=True)
    result = kit.run()
    report = kit.plane.report()
    return {
        "submitted": result.submitted,
        "accepted": result.accepted,
        "rejected": len(result.rejected),
        "shed": len(result.shed),
        "premium_hit_rate": result.hit_rate("premium"),
        "standard_hit_rate": result.hit_rate("standard"),
        "batch_hit_rate": result.hit_rate("batch"),
        "total_decisions": report.total_decisions,
        "samples_ingested": report.samples_ingested,
        "poisoned": report.poisoned,
        "reconfigs": [
            [r.time, r.action, r.trigger, r.value_after] for r in report.reconfigs
        ],
        "epochs": [
            [e.version, e.time, e.trigger, sorted(e.families)]
            for e in report.epochs
        ],
        "decisions_by_epoch": {
            str(k): v for k, v in sorted(report.decisions_by_epoch.items())
        },
    }


def test_adaptive_spike_matches_golden_master(request):
    path = GOLDEN_DIR / "adaptive.json"
    got = snapshot_adaptive()
    if request.config.getoption("--regen-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(got, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {path.name}")
    if not path.exists():
        pytest.fail(
            f"missing golden fixture {path}; generate it with:\n"
            "  PYTHONPATH=src python -m pytest tests/regression -q "
            "--regen-golden"
        )
    assert_matches(got, json.loads(path.read_text()), "adaptive")
