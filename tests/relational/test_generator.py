"""Unit tests for the TPC-DS-flavoured synthetic generator."""

import numpy as np
import pytest

from repro.errors import SchemaError, WorkloadError
from repro.relational.generator import (
    generate_dataset,
    make_vocabulary,
    tpcds_like_schema,
    zipf_draws,
)


class TestSchema:
    def test_default_shape(self):
        schema = tpcds_like_schema()
        assert schema.num_dimensions == 3
        assert all(d.num_levels == 4 for d in schema.dimensions)

    def test_default_text_levels(self):
        schema = tpcds_like_schema()
        names = {c.name for c in schema.text_columns}
        assert names == {"store__city", "store__store", "item__brand", "item__item"}

    def test_scale_shrinks_cardinalities(self):
        big = tpcds_like_schema(scale=1.0)
        small = tpcds_like_schema(scale=0.5)
        for b, s in zip(big.dimensions, small.dimensions):
            assert s.cardinality(3) <= b.cardinality(3)

    def test_invalid_scale(self):
        with pytest.raises(SchemaError):
            tpcds_like_schema(scale=0)

    def test_custom_text_levels(self):
        schema = tpcds_like_schema(text_levels=[("date", "month")])
        assert {c.name for c in schema.text_columns} == {"date__month"}


class TestVocabulary:
    def test_size_and_uniqueness(self, rng):
        vocab = make_vocabulary(500, rng)
        assert len(vocab) == 500
        assert len(set(vocab)) == 500

    def test_deterministic(self):
        v1 = make_vocabulary(50, np.random.default_rng(1))
        v2 = make_vocabulary(50, np.random.default_rng(1))
        assert v1 == v2

    def test_prefix(self, rng):
        vocab = make_vocabulary(5, rng, prefix="City")
        assert all(v.startswith("City ") for v in vocab)

    def test_zero_size_rejected(self, rng):
        with pytest.raises(WorkloadError):
            make_vocabulary(0, rng)


class TestZipfDraws:
    def test_range(self, rng):
        draws = zipf_draws(rng, 100, 10_000)
        assert draws.min() >= 0 and draws.max() < 100

    def test_skew_concentrates_mass(self, rng):
        draws = zipf_draws(rng, 1000, 50_000, skew=1.3)
        _, counts = np.unique(draws, return_counts=True)
        top = np.sort(counts)[::-1]
        # the most frequent value should dominate vs uniform expectation (50)
        assert top[0] > 500

    def test_zero_skew_is_uniform_like(self, rng):
        draws = zipf_draws(rng, 10, 100_000, skew=0.0)
        _, counts = np.unique(draws, return_counts=True)
        assert counts.min() > 8_000  # near 10k each

    def test_cardinality_one(self, rng):
        assert np.all(zipf_draws(rng, 1, 100) == 0)

    def test_invalid_args(self, rng):
        with pytest.raises(WorkloadError):
            zipf_draws(rng, 0, 10)
        with pytest.raises(WorkloadError):
            zipf_draws(rng, 10, -1)
        with pytest.raises(WorkloadError):
            zipf_draws(rng, 10, 10, skew=-1)


class TestDataset:
    def test_deterministic(self, small_schema):
        a = generate_dataset(small_schema, num_rows=500, seed=7)
        b = generate_dataset(small_schema, num_rows=500, seed=7)
        for name in small_schema.column_names:
            assert np.array_equal(a.table.column(name), b.table.column(name))

    def test_hierarchy_rollup_invariant(self, dataset, small_schema):
        # coarse == fine // fanout for every adjacent level pair
        for d in small_schema.dimensions:
            for r in range(1, d.num_levels):
                fine = dataset.table.column(f"{d.name}__{d.level(r).name}")
                coarse = dataset.table.column(f"{d.name}__{d.level(r - 1).name}")
                factor = d.cardinality(r) // d.cardinality(r - 1)
                assert np.array_equal(coarse, fine // factor), (d.name, r)

    def test_vocabulary_sizes_match_cardinalities(self, dataset, small_schema):
        for spec in small_schema.text_columns:
            card = small_schema.dimension(spec.dimension).cardinality(spec.resolution)
            assert len(dataset.vocabularies[spec.name]) == card

    def test_raw_value_roundtrip(self, dataset, small_schema):
        column = small_schema.text_columns[0].name
        code = int(dataset.table.column(column)[0])
        raw = dataset.raw_value(column, code)
        assert dataset.vocabularies[column][code] == raw

    def test_raw_value_out_of_range(self, dataset, small_schema):
        column = small_schema.text_columns[0].name
        with pytest.raises(SchemaError):
            dataset.raw_value(column, 10**9)

    def test_measures_realistic(self, dataset):
        qty = dataset.table.column("quantity")
        price = dataset.table.column("sales_price")
        assert qty.min() >= 1
        assert (price > 0).all()

    def test_zero_rows(self, small_schema):
        ds = generate_dataset(small_schema, num_rows=0, seed=1)
        assert len(ds.table) == 0

    def test_negative_rows_rejected(self, small_schema):
        with pytest.raises(WorkloadError):
            generate_dataset(small_schema, num_rows=-1)
