"""Unit tests for fact-table schemas."""

import numpy as np
import pytest

from repro.errors import DimensionError, SchemaError
from repro.olap.hierarchy import DimensionHierarchy
from repro.relational.schema import ColumnSpec, TableSchema


@pytest.fixture()
def dims():
    return [
        DimensionHierarchy.uniform("a", 2, 4),
        DimensionHierarchy.uniform("b", 3, 3),
    ]


class TestColumnSpec:
    def test_dimension_column_requires_binding(self):
        with pytest.raises(SchemaError):
            ColumnSpec(name="x", kind="dimension", dtype=np.int32)

    def test_measure_cannot_be_text(self):
        with pytest.raises(SchemaError):
            ColumnSpec(name="m", kind="measure", dtype=np.float64, is_text=True)

    def test_unknown_kind(self):
        with pytest.raises(SchemaError):
            ColumnSpec(name="x", kind="index", dtype=np.int32)


class TestTableSchema:
    def test_column_layout(self, dims):
        schema = TableSchema(dims, measures=("v",))
        names = schema.column_names
        # dimension columns grouped by dimension, coarse -> fine, then measures
        assert names == ("a__L0", "a__L1", "b__L0", "b__L1", "b__L2", "v")

    def test_total_columns_is_c_total(self, dims):
        schema = TableSchema(dims, measures=("v", "w"))
        assert schema.total_columns == 5 + 2

    def test_text_levels(self, dims):
        schema = TableSchema(dims, text_levels=[("a", "L1")])
        (text,) = schema.text_columns
        assert text.name == "a__L1"
        assert text.is_text

    def test_unknown_text_dimension(self, dims):
        with pytest.raises(SchemaError):
            TableSchema(dims, text_levels=[("z", "L0")])

    def test_unknown_text_level(self, dims):
        with pytest.raises(Exception):
            TableSchema(dims, text_levels=[("a", "L9")])

    def test_duplicate_dimensions(self, dims):
        with pytest.raises(SchemaError):
            TableSchema([dims[0], dims[0]])

    def test_duplicate_measures(self, dims):
        with pytest.raises(SchemaError):
            TableSchema(dims, measures=("v", "v"))

    def test_measure_name_collision(self, dims):
        with pytest.raises(SchemaError):
            TableSchema(dims, measures=("a__L0",))

    def test_no_dimensions_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema([])

    def test_dimension_lookup(self, dims):
        schema = TableSchema(dims)
        assert schema.dimension("b") is dims[1]
        with pytest.raises(DimensionError):
            schema.dimension("z")

    def test_column_lookup(self, dims):
        schema = TableSchema(dims)
        spec = schema.column("a__L1")
        assert spec.dimension == "a"
        assert spec.resolution == 1
        with pytest.raises(SchemaError):
            schema.column("missing")

    def test_contains(self, dims):
        schema = TableSchema(dims)
        assert "a__L0" in schema
        assert "nope" not in schema

    def test_row_nbytes(self, dims):
        schema = TableSchema(dims, measures=("v",), dim_dtype=np.int32)
        assert schema.row_nbytes() == 5 * 4 + 8

    def test_table_nbytes(self, dims):
        schema = TableSchema(dims, measures=("v",))
        assert schema.table_nbytes(100) == schema.row_nbytes() * 100
        with pytest.raises(SchemaError):
            schema.table_nbytes(-1)

    def test_rows_for_bytes_round_trip(self, dims):
        schema = TableSchema(dims, measures=("v",))
        rows = schema.rows_for_bytes(1_000_000)
        assert abs(schema.table_nbytes(rows) - 1_000_000) <= schema.row_nbytes()

    def test_hierarchies_mapping(self, dims):
        schema = TableSchema(dims)
        assert set(schema.hierarchies) == {"a", "b"}

    def test_custom_dim_dtype(self, dims):
        schema = TableSchema(dims, dim_dtype=np.int64)
        assert schema.column("a__L0").dtype == np.dtype(np.int64)
