"""Unit tests for the columnar fact table and its reference scan."""

import numpy as np
import pytest

from repro.errors import QueryError, SchemaError, TranslationError
from repro.olap.hierarchy import DimensionHierarchy
from repro.query.model import Condition, Query, decompose
from repro.relational.schema import TableSchema
from repro.relational.table import FactTable


@pytest.fixture()
def tiny_schema():
    return TableSchema(
        [DimensionHierarchy.uniform("d", 2, 4)], measures=("v",)
    )


@pytest.fixture()
def tiny_table(tiny_schema):
    fine = np.array([0, 1, 5, 9, 15, 3, 3, 8])
    return FactTable(
        tiny_schema,
        {
            "d__L0": fine // 4,
            "d__L1": fine,
            "v": np.arange(8, dtype=float) + 1,
        },
    )


class TestConstruction:
    def test_row_count(self, tiny_table):
        assert len(tiny_table) == 8

    def test_missing_column_rejected(self, tiny_schema):
        with pytest.raises(SchemaError, match="missing"):
            FactTable(tiny_schema, {"v": np.zeros(3)})

    def test_extra_column_rejected(self, tiny_schema):
        with pytest.raises(SchemaError, match="not in schema"):
            FactTable(
                tiny_schema,
                {
                    "d__L0": np.zeros(2, dtype=np.int32),
                    "d__L1": np.zeros(2, dtype=np.int32),
                    "v": np.zeros(2),
                    "w": np.zeros(2),
                },
            )

    def test_ragged_columns_rejected(self, tiny_schema):
        with pytest.raises(SchemaError, match="ragged"):
            FactTable(
                tiny_schema,
                {
                    "d__L0": np.zeros(2, dtype=np.int32),
                    "d__L1": np.zeros(3, dtype=np.int32),
                    "v": np.zeros(2),
                },
            )

    def test_out_of_range_coordinates_rejected(self, tiny_schema):
        with pytest.raises(SchemaError, match="outside"):
            FactTable(
                tiny_schema,
                {
                    "d__L0": np.array([0, 7]),  # L0 cardinality is 4
                    "d__L1": np.array([0, 1]),
                    "v": np.zeros(2),
                },
            )

    def test_dtype_cast(self, tiny_table, tiny_schema):
        assert tiny_table.column("d__L1").dtype == tiny_schema.column("d__L1").dtype

    def test_2d_column_rejected(self, tiny_schema):
        with pytest.raises(SchemaError, match="1-D"):
            FactTable(
                tiny_schema,
                {
                    "d__L0": np.zeros((2, 2), dtype=np.int32),
                    "d__L1": np.zeros((2, 2), dtype=np.int32),
                    "v": np.zeros((2, 2)),
                },
            )


class TestPackedLayout:
    def test_packed_size(self, tiny_table):
        assert tiny_table.packed().nbytes == tiny_table.nbytes

    def test_offsets_monotone_and_complete(self, tiny_table):
        offsets = tiny_table.column_offsets()
        values = list(offsets.values())
        assert values == sorted(values)
        assert values[0] == 0

    def test_packed_column_recoverable(self, tiny_table):
        packed = tiny_table.packed()
        offsets = tiny_table.column_offsets()
        col = tiny_table.column("v")
        start = offsets["v"]
        recovered = packed[start : start + col.nbytes].view(np.float64)
        assert np.array_equal(recovered, col)

    def test_head(self, tiny_table):
        head = tiny_table.head(3)
        assert all(len(arr) == 3 for arr in head.values())


class TestScan:
    def test_range_filter(self, tiny_table, tiny_schema):
        q = Query(conditions=(Condition("d", 1, lo=3, hi=9),), measures=("v",))
        result = tiny_table.execute(q)
        col = tiny_table.column("d__L1")
        mask = (col >= 3) & (col < 9)
        assert result.rows_matched == mask.sum()
        assert np.isclose(result.value("v"), tiny_table.column("v")[mask].sum())

    def test_codes_filter(self, tiny_table):
        q = Query(conditions=(Condition("d", 1, codes=(3, 15)),), measures=("v",))
        result = tiny_table.execute(q)
        assert result.rows_matched == 3

    def test_one_condition_per_dimension(self, tiny_table):
        # eq. 1 allows one condition per dimension; two conditions on the
        # same dimension must be rejected at Query construction
        with pytest.raises(QueryError):
            Query(
                conditions=(
                    Condition("d", 0, lo=0, hi=2),
                    Condition("d", 1, lo=0, hi=4),
                ),
                measures=("v",),
            )

    def test_count_query(self, tiny_table):
        q = Query(conditions=(), measures=(), agg="count")
        assert tiny_table.execute(q).value("count") == 8

    @pytest.mark.parametrize("agg,expected", [
        ("min", 1.0),
        ("max", 8.0),
        ("avg", 4.5),
        ("sum", 36.0),
    ])
    def test_aggregates(self, tiny_table, agg, expected):
        q = Query(conditions=(), measures=("v",), agg=agg)
        assert np.isclose(tiny_table.execute(q).value("v"), expected)

    def test_empty_match_sum(self, tiny_table):
        q = Query(conditions=(Condition("d", 1, codes=(14,)),), measures=("v",))
        result = tiny_table.execute(q)
        assert result.rows_matched == 0
        assert result.value("v") == 0.0

    def test_empty_match_avg_nan(self, tiny_table):
        q = Query(
            conditions=(Condition("d", 1, codes=(14,)),), measures=("v",), agg="avg"
        )
        assert np.isnan(tiny_table.execute(q).value("v"))

    def test_untranslated_text_rejected(self, tiny_table, tiny_schema):
        q = Query(conditions=(Condition("d", 1, text_values=("x",)),), measures=("v",))
        decomposition = decompose(q, tiny_schema.hierarchies)
        with pytest.raises(TranslationError):
            tiny_table.scan(decomposition)

    def test_bytes_read_full_columns(self, tiny_table, tiny_schema):
        q = Query(conditions=(Condition("d", 1, lo=0, hi=2),), measures=("v",))
        result = tiny_table.execute(q)
        expected = tiny_table.column_nbytes("d__L1") + tiny_table.column_nbytes("v")
        assert result.bytes_read == expected

    def test_columns_read_is_eq12(self, tiny_table):
        q = Query(conditions=(Condition("d", 1, lo=0, hi=2),), measures=("v",))
        assert tiny_table.execute(q).columns_read == 2

    def test_multi_measure(self, fact_table):
        q = Query(conditions=(), measures=("quantity", "net_profit"), agg="sum")
        result = fact_table.execute(q)
        assert set(result.values) == {"quantity", "net_profit"}
        with pytest.raises(QueryError):
            result.value()  # ambiguous without naming the measure


class TestDrillThrough:
    def test_rows_match_filter(self, tiny_table):
        q = Query(conditions=(Condition("d", 1, lo=3, hi=9),), measures=("v",))
        rows = tiny_table.drill_through(q)
        col = tiny_table.column("d__L1")
        expected = ((col >= 3) & (col < 9)).sum()
        assert all(len(arr) == expected for arr in rows.values())
        assert np.all((rows["d__L1"] >= 3) & (rows["d__L1"] < 9))

    def test_sum_of_drilled_rows_equals_aggregate(self, tiny_table):
        q = Query(conditions=(Condition("d", 0, lo=0, hi=2),), measures=("v",))
        rows = tiny_table.drill_through(q)
        assert np.isclose(rows["v"].sum(), tiny_table.execute(q).value("v"))

    def test_limit(self, tiny_table):
        q = Query(conditions=(), measures=("v",))
        rows = tiny_table.drill_through(q, limit=3)
        assert all(len(arr) == 3 for arr in rows.values())

    def test_negative_limit_rejected(self, tiny_table):
        q = Query(conditions=(), measures=("v",))
        with pytest.raises(QueryError):
            tiny_table.drill_through(q, limit=-1)

    def test_returns_copies(self, tiny_table):
        q = Query(conditions=(), measures=("v",))
        rows = tiny_table.drill_through(q, limit=2)
        rows["v"][0] = 1e9
        assert tiny_table.column("v")[0] != 1e9
