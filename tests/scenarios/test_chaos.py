"""Chaos hooks: fault injection inside the deterministic harness.

The truth-world executor can stall a specific query's service
(:meth:`~repro.adapt.scenario.TruthExecutor.stall`) and the plane's
feedback entry point can be salted with poisoned samples — both without
giving up determinism, because the "faults" are scripted against the
modelled clock like everything else.
"""

from repro.adapt.scenario import retime
from repro.adapt.scenarios import build_kit, phase_times
from repro.paper import paper_workload
from repro.sim.validate import assert_adapt_valid


def _kit(*, adaptive=True, seconds=6.0, rate=8.0, seed=21, **kwargs):
    times = phase_times([(seconds, rate)])
    stream = paper_workload(include_32gb=False, text_prob=0.2, seed=seed).generate(
        len(times)
    )
    return build_kit(
        arrivals=retime(stream, times),
        adaptive=adaptive,
        service_scale=17.0,
        time_constraint=0.4,
        slo_window=1.0,
        **kwargs,
    )


class TestWorkerStall:
    def test_stalled_query_misses_only_its_own_deadline(self):
        """One worker wedged for 2 s: that query misses, the run still
        drains, and the books reconcile."""
        kit = _kit()
        victim = kit.arrivals[3]
        kit.executor.stall(victim.query.query_id, 2.0)
        result = kit.run()
        assert result.accepted == result.submitted
        completed = sum(len(v) for v in result.outcomes.values())
        assert completed == result.accepted
        records = {r.query_id: r for r in kit.engine.records}
        assert not records[victim.query.query_id].met_deadline
        assert_adapt_valid(kit.plane.report())

    def test_stall_is_deterministic(self):
        def fingerprint():
            kit = _kit()
            kit.executor.stall(kit.arrivals[3].query.query_id, 2.0)
            result = kit.run()
            return (
                result.accepted,
                tuple(
                    (r.query_id - kit.arrivals[0].query.query_id, r.met_deadline)
                    for r in sorted(
                        kit.engine.records, key=lambda r: r.query_id
                    )
                ),
            )

        assert fingerprint() == fingerprint()

    def test_mass_stall_trips_the_controller(self):
        """Stalling a burst of early queries starves the SLO window and
        must provoke escalations — which stay inside the envelope."""
        kit = _kit(seconds=10.0, rate=10.0)
        for entry in kit.arrivals[8:16]:
            kit.executor.stall(entry.query.query_id, 1.5)
        kit.run()
        report = kit.plane.report()
        assert report.reconfigs, "a mass stall provoked no capacity action"
        assert_adapt_valid(report)


class TestPoisonedFeedback:
    def test_poison_cannot_move_the_installed_models(self):
        """A flood of absurd (but finite) feedback samples may reach the
        windows, yet every installed epoch stays max-step clamped; the
        non-finite ones never enter a window at all."""
        kit = _kit(seconds=8.0)
        plane = kit.plane

        def on_time(t):
            if 2.0 <= t < 6.0:
                plane.on_feedback("Q_CPU", 10**9, float("nan"), 0.01, 0.0, None)
                plane.on_feedback("Q_CPU", 10**9, float("-inf"), 0.01, 0.0, None)

        kit.on_time = on_time
        kit.run()
        report = plane.report()
        assert report.poisoned >= 2
        assert_adapt_valid(report)  # includes the max-step reconciliation

    def test_disabling_recalibration_isolates_the_estimator(self):
        """With recalibrate=False the estimator must end the run with
        its initial models regardless of what feedback arrives."""
        from repro.adapt.plane import AdaptivePlane

        times = phase_times([(4.0, 8.0)])
        stream = paper_workload(
            include_32gb=False, text_prob=0.2, seed=23
        ).generate(len(times))
        plane = AdaptivePlane(recalibrate=False, window=1.0)
        kit = build_kit(
            arrivals=retime(stream, times),
            adaptive=False,
            service_scale=17.0,
        )
        # attach manually so build_kit's default plane doesn't interfere
        plane.attach_serve(kit.engine)
        before = kit.engine.estimator.models()
        kit.run()
        assert kit.engine.estimator.models() is before
        assert plane.report().epochs == ()
