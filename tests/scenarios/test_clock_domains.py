"""Serve-plane spans live in the injected clock's domain, not the wall's.

The regression this file pins: a serve engine given a
:class:`~repro.serve.FakeClock` must stamp *every* span — roots opened
in ``submit`` and stage spans recorded from worker threads — from that
clock, never from ``time.monotonic()`` directly.  Two identical runs
therefore produce byte-identical span buffers, and every timestamp is
bounded by the fake clock's final reading (a ``time.monotonic`` leak
would stamp hours of machine uptime instead).
"""

import json

import pytest

from repro.obs import SpanTracer
from repro.paper import paper_system_config
from repro.query.model import Query
from repro.serve import FakeClock, NullExecutor, ServeEngine
from repro.sim.validate import assert_spans_valid

from tests.serve.conftest import CPU_FAST, GPU_TEXT, FixedEstimator

SEED = 31


@pytest.fixture(scope="module")
def serve_config():
    return paper_system_config(include_32gb=False)


def traced_run(serve_config):
    """One scripted run: fixed query ids, fixed estimates, fake clock."""
    clock = FakeClock()
    tracer = SpanTracer(1.0, seed=SEED, process="serve")
    engine = ServeEngine(
        serve_config,
        clock=clock,
        executor=NullExecutor(),
        estimator=FixedEstimator(CPU_FAST, GPU_TEXT),
        spans=tracer,
    ).start()
    try:
        for qid in (1, 2, 3, 4):
            engine.submit(Query(conditions=(), measures=("v",), query_id=qid))
            clock.advance(0.25)
        engine.drain()
    finally:
        engine.stop(finish_queued=False)
    report = engine.report()
    spans = assert_spans_valid(
        tracer.spans(),
        report=report,
        seed=SEED,
        sample_rate=1.0,
        submitted=[1, 2, 3, 4],
    )
    return spans, clock.now()


def fingerprint(spans):
    return sorted(json.dumps(s.to_dict(), sort_keys=True) for s in spans)


class TestClockDomains:
    def test_identical_runs_stamp_identical_spans(self, serve_config):
        first, _ = traced_run(serve_config)
        second, _ = traced_run(serve_config)
        assert fingerprint(first) == fingerprint(second)

    def test_timestamps_are_in_the_fake_domain(self, serve_config):
        spans, final = traced_run(serve_config)
        assert spans
        assert final < 10.0
        for span in spans:
            # a time.monotonic() leak would stamp machine uptime here
            assert 0.0 <= span.start <= final + 1e-9
            assert 0.0 <= span.end <= final + 1e-9
