"""Unit tests for the deterministic scenario harness itself.

The scenario suite's claims are only as strong as the harness they run
on: a stepped clock that parks real threads at modelled times, a truth
world that decouples realised latencies from the estimator, and a
driver that interleaves arrivals and wakeups deterministically.
"""

import threading

import pytest

from repro.adapt.scenario import SteppedClock, retime
from repro.adapt.scenarios import build_kit, phase_times, scale_bundle
from repro.errors import ServeError
from repro.paper import paper_workload


class TestSteppedClock:
    def test_starts_at_zero(self):
        assert SteppedClock().now() == 0.0

    def test_advance_moves_time(self):
        clock = SteppedClock()
        clock.advance(1.5)
        assert clock.now() == 1.5

    def test_advance_backwards_rejected(self):
        clock = SteppedClock()
        clock.advance(2.0)
        with pytest.raises(ServeError):
            clock.advance(1.0)

    def test_nonpositive_sleep_returns_immediately(self):
        clock = SteppedClock()
        clock.sleep(0.0)
        clock.sleep(-1.0)
        assert clock.sleeping() == {}

    def test_release_next_wakes_earliest_sleeper(self):
        clock = SteppedClock()
        order = []

        def sleeper(name, seconds):
            def body():
                clock.sleep(seconds)
                order.append(name)

            t = threading.Thread(target=body, name=name, daemon=True)
            t.start()
            return t

        a = sleeper("a", 2.0)
        b = sleeper("b", 1.0)
        while len(clock.sleeping()) < 2:
            pass
        assert clock.release_next() == ("b", 1.0)
        b.join(timeout=5.0)
        assert clock.now() == 1.0
        assert clock.release_next() == ("a", 2.0)
        a.join(timeout=5.0)
        assert order == ["b", "a"]
        assert clock.release_next() is None

    def test_reregistered_sleeper_not_confused_with_old_token(self):
        """A thread that wakes, finishes, and re-parks under the same
        name must not satisfy the previous registration's release."""
        clock = SteppedClock()
        done = []

        def body():
            clock.sleep(1.0)
            clock.sleep(1.0)  # re-park under the same thread name
            done.append(True)

        t = threading.Thread(target=body, name="w", daemon=True)
        t.start()
        while not clock.sleeping():
            pass
        assert clock.release_next() == ("w", 1.0)
        while not clock.sleeping():
            pass
        assert clock.release_next() == ("w", 2.0)
        t.join(timeout=5.0)
        assert done == [True]


class TestPhaseTimes:
    def test_uniform_spacing(self):
        times = phase_times([(2.0, 4.0)])
        assert times == [0.0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75]

    def test_phases_concatenate(self):
        times = phase_times([(1.0, 2.0), (1.0, 1.0)])
        assert times == [0.0, 0.5, 1.0]

    def test_zero_rate_phase_is_silence(self):
        assert phase_times([(1.0, 0.0), (1.0, 1.0)]) == [1.0]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            phase_times([(-1.0, 2.0)])


class TestTruthWorld:
    def _kit(self, **kwargs):
        times = phase_times([(1.0, 5.0)])
        stream = paper_workload(include_32gb=False, text_prob=0.0, seed=3).generate(
            len(times)
        )
        return build_kit(arrivals=retime(stream, times), adaptive=False, **kwargs)

    def test_jitter_keyed_by_submission_order_not_query_id(self):
        """Two kits built at different points in the process (different
        global query ids) must produce identical realised latencies."""
        kit_a = self._kit()
        kit_b = self._kit()
        entry_a, entry_b = kit_a.arrivals[0], kit_b.arrivals[0]
        assert entry_a.query.query_id != entry_b.query.query_id
        kit_a.truth.assign_seq(entry_a.query.query_id, 5)
        kit_b.truth.assign_seq(entry_b.query.query_id, 5)
        target = kit_a.engine.queues["Q_CPU"]
        t_a = kit_a.truth.service_time(entry_a.query, target)
        t_b = kit_b.truth.service_time(entry_b.query, target)
        assert t_a == t_b
        kit_a.engine.stop()
        kit_b.engine.stop()

    def test_drift_scales_service_times(self):
        kit = self._kit()
        entry = kit.arrivals[0]
        target = kit.engine.queues["Q_CPU"]
        base = kit.truth.service_time(entry.query, target)
        kit.truth.set_drift(cpu=2.0)
        assert kit.truth.service_time(entry.query, target) == pytest.approx(
            2.0 * base
        )
        kit.engine.stop()

    def test_scale_bundle_scales_estimates_and_truth_together(self):
        kit_1 = self._kit(service_scale=1.0)
        kit_8 = self._kit(service_scale=8.0)
        q1, q8 = kit_1.arrivals[0].query, kit_8.arrivals[0].query
        kit_1.truth.assign_seq(q1.query_id, 0)
        kit_8.truth.assign_seq(q8.query_id, 0)
        t1 = kit_1.truth.service_time(q1, kit_1.engine.queues["Q_CPU"])
        t8 = kit_8.truth.service_time(q8, kit_8.engine.queues["Q_CPU"])
        assert t8 == pytest.approx(8.0 * t1)
        e1 = kit_1.estimator.estimate(q1).t_cpu
        e8 = kit_8.estimator.estimate(q8).t_cpu
        assert e8 == pytest.approx(8.0 * e1)
        kit_1.engine.stop()
        kit_8.engine.stop()

    def test_scale_bundle_scales_dict_and_gpu(self):
        kit = self._kit()
        scaled = scale_bundle(kit.truth.bundle, 4.0)
        assert scaled.dict_model.cost_per_entry == pytest.approx(
            4.0 * kit.truth.bundle.dict_model.cost_per_entry
        )
        for n_sm, (a, b) in kit.truth.bundle.gpu.coefficients.items():
            sa, sb = scaled.gpu.coefficients[n_sm]
            assert (sa, sb) == pytest.approx((4.0 * a, 4.0 * b))
        kit.engine.stop()


class TestDriver:
    def test_small_run_completes_and_accounts(self):
        times = phase_times([(1.0, 10.0)])
        stream = paper_workload(include_32gb=False, text_prob=0.2, seed=5).generate(
            len(times)
        )
        kit = build_kit(arrivals=retime(stream, times), adaptive=False)
        result = kit.run()
        assert result.submitted == len(kit.arrivals)
        assert result.accepted + len(result.rejected) + len(result.shed) == (
            result.submitted
        )
        completed = sum(len(v) for v in result.outcomes.values())
        assert completed == result.accepted

    def test_run_is_deterministic(self):
        def fingerprint():
            times = phase_times([(2.0, 8.0)])
            stream = paper_workload(
                include_32gb=False, text_prob=0.2, seed=6
            ).generate(len(times))
            kit = build_kit(arrivals=retime(stream, times), adaptive=False)
            result = kit.run()
            return (
                result.accepted,
                tuple(result.outcomes.get("Q", ())),
                tuple(
                    sorted(
                        (r.query_id - kit.arrivals[0].query.query_id, r.target)
                        for r in kit.engine.records
                    )
                ),
            )

        assert fingerprint() == fingerprint()

    def test_modelled_time_advances_past_last_arrival(self):
        times = phase_times([(1.0, 4.0)])
        stream = paper_workload(include_32gb=False, text_prob=0.0, seed=9).generate(
            len(times)
        )
        kit = build_kit(arrivals=retime(stream, times), adaptive=False)
        kit.run()
        assert kit.clock.now() >= times[-1]
