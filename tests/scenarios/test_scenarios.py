"""The scripted scenario library beyond the headline spike.

Each test drives one :mod:`repro.adapt.scenarios` builder end to end on
the stepped clock and asserts the adaptive behaviour the script was
designed to provoke — recalibration convergence under data growth,
bounded (non-thrashing) control under a diurnal wave, clamp integrity
under an estimate-poisoning adversary, and per-class accounting under
a multi-tenant mix.  Every run's history must reconcile under
``validate_adapt``.
"""

import pytest

from repro.adapt.scenarios import (
    adversary_scenario,
    diurnal_scenario,
    multi_tenant_scenario,
    regime_shift_scenario,
)
from repro.sim.validate import assert_adapt_valid


class TestRegimeShift:
    def test_recalibrator_tracks_data_growth(self):
        """After the mid-run 1.8x growth the installed CPU model must
        predict the new truth better than the frozen initial model."""
        kit = regime_shift_scenario(adaptive=True)
        initial_cpu = kit.estimator.models().cpu
        result = kit.run()
        report = kit.plane.report()
        assert_adapt_valid(report)
        assert [e for e in report.epochs if e.trigger == "refit"], (
            "data growth provoked no refit"
        )

        adapted_cpu = kit.estimator.models().cpu
        growth = 1.8
        probe_mb = 0.1  # mid-range column size, well below the breakpoint
        truth = initial_cpu.time(probe_mb) * growth
        frozen_err = abs(initial_cpu.time(probe_mb) - truth)
        adapted_err = abs(adapted_cpu.time(probe_mb) - truth)
        assert adapted_err < frozen_err

    def test_epochs_walk_monotonically_toward_truth(self):
        """Max-step clamping spreads the correction over several epochs:
        the below-breakpoint scale coefficient must grow through the
        epoch chain, never jumping more than max_step per epoch."""
        kit = regime_shift_scenario(adaptive=True)
        kit.run()
        report = kit.plane.report()
        scales = [
            e.coefficients["cpu.below.a"]
            for e in report.epochs
            if "cpu.below.a" in e.coefficients
        ]
        assert scales[-1] > scales[0]
        for old, new in zip(scales, scales[1:]):
            assert abs(new - old) <= report.guards.max_step * abs(old) * (
                1.0 + 1e-9
            )


class TestDiurnal:
    def test_wave_does_not_thrash_the_controller(self):
        kit = diurnal_scenario(adaptive=True)
        result = kit.run()
        report = kit.plane.report()
        assert_adapt_valid(report)
        makespan = kit.clock.now()
        cooldown_budget = makespan / report.limits.cooldown
        # far fewer actions than the cooldown alone would admit
        assert len(report.reconfigs) < 0.5 * cooldown_budget
        # consecutive actions always respect the cooldown spacing
        for prev, cur in zip(report.reconfigs, report.reconfigs[1:]):
            assert cur.time - prev.time >= report.limits.cooldown - 1e-9

    def test_escalations_are_unwound_after_the_peak(self):
        kit = diurnal_scenario(adaptive=True)
        kit.run()
        report = kit.plane.report()
        ups = sum(
            1
            for r in report.reconfigs
            if r.action in ("tighten_admission", "grow_translation", "resplit_up")
        )
        downs = len(report.reconfigs) - ups
        assert downs > 0, "the quiet tail never relaxed any escalation"
        # by drain the controller holds at most one residual escalation
        assert kit.plane.controller.applied_depth <= 1


class TestAdversary:
    def test_clamps_hold_under_estimate_poisoning(self):
        """Truth decouples 8x from the models mid-run; every installed
        epoch must still move each coefficient by at most max_step."""
        kit = adversary_scenario(adaptive=True)
        kit.run()
        report = kit.plane.report()
        assert_adapt_valid(report)
        refits = [e for e in report.epochs if e.trigger == "refit"]
        assert refits, "the 8x drift provoked no refit at all"
        # an 8x true-cost jump cannot be absorbed in one clamped epoch:
        # at least one refit must have had its raw fit clipped
        assert any(e.clamped for e in refits)

    def test_poisoned_feedback_samples_are_quarantined(self):
        """Non-finite and non-positive measured latencies injected into
        the feedback channel are counted and never reach a fit window."""
        kit = adversary_scenario(adaptive=True)
        plane = kit.plane
        poison = [
            float("nan"),
            float("inf"),
            -1.0,
            0.0,
        ]

        original = kit.on_time

        def on_time(t):
            if original is not None:
                original(t)
            if 4.0 <= t < 5.0:
                for bad in poison:
                    plane.on_feedback("Q_CPU", 10**9, bad, 0.01, 0.0, None)

        kit.on_time = on_time
        kit.run()
        report = plane.report()
        assert report.poisoned > 0
        assert_adapt_valid(report)
        # quarantined samples never entered the CPU window
        for x, y in plane.recalibrator._cpu_window:
            assert y > 0.0


class TestMultiTenant:
    def test_per_class_slo_accounting(self):
        kit = multi_tenant_scenario(adaptive=True)
        result = kit.run()
        report = kit.plane.report()
        assert_adapt_valid(report)
        assert set(result.outcomes) == {"premium", "standard", "batch"}
        for query_class in ("premium", "standard", "batch"):
            rate = result.hit_rate(query_class)
            assert 0.0 <= rate <= 1.0
            assert result.outcomes[query_class], (
                f"{query_class} completed no queries"
            )

    def test_per_class_outcomes_blend_to_the_aggregate(self):
        """The plane's aggregate SLO window and the per-class books must
        describe the same completions: counts sum to accepted, and the
        blended per-class hit rate equals the overall one."""
        kit = multi_tenant_scenario(adaptive=True)
        result = kit.run()
        completed = sum(len(v) for v in result.outcomes.values())
        assert completed == result.accepted
        hits = sum(sum(v) for v in result.outcomes.values())
        overall = hits / completed
        blended = sum(
            result.hit_rate(c) * len(result.outcomes[c]) for c in result.outcomes
        ) / completed
        assert blended == pytest.approx(overall)
