"""The headline scenario: ride out a 3x load spike inside the SLO.

The claim under test: with the adapt plane attached, a 3x open-loop
arrival spike does not drop the premium class below its 0.9
deadline-hit SLO — the controller tightens admission and grows the
translation pool fast enough that *completed* premium work stays on
time — while the frozen-model baseline (same workload, same capacity,
no plane) breaches.  Everything runs on the stepped clock: zero
wall-clock sleeps (enforced suite-wide by the ``bounded_sleeps``
fixture).
"""

import pytest

from repro.adapt.scenarios import spike_scenario
from repro.sim.validate import assert_adapt_valid, validate_adapt

SLO_TARGET = 0.9


@pytest.fixture(scope="module")
def spike_arms():
    """Run both arms once; the module's tests assert different facets."""
    adaptive_kit = spike_scenario(adaptive=True)
    adaptive_result = adaptive_kit.run()
    frozen_kit = spike_scenario(adaptive=False)
    frozen_result = frozen_kit.run()
    return adaptive_kit, adaptive_result, frozen_kit, frozen_result


def test_adaptive_arm_holds_premium_slo(spike_arms):
    _, result, _, _ = spike_arms
    assert result.hit_rate("premium") >= SLO_TARGET


def test_frozen_baseline_breaches(spike_arms):
    _, _, _, frozen = spike_arms
    assert frozen.hit_rate("premium") < SLO_TARGET


def test_adaptive_beats_frozen_on_both_classes(spike_arms):
    _, adaptive, _, frozen = spike_arms
    assert adaptive.hit_rate("premium") > frozen.hit_rate("premium")
    assert adaptive.hit_rate("batch") > frozen.hit_rate("batch")


def test_controller_actually_acted(spike_arms):
    kit, _, _, _ = spike_arms
    report = kit.plane.report()
    actions = {r.action for r in report.reconfigs}
    assert "tighten_admission" in actions
    # the spike saturates the single translation worker too
    assert "grow_translation" in actions
    # and the recovery phase unwinds at least one escalation
    assert actions & {"relax_admission", "shrink_translation"}


def test_recalibrator_installed_epochs(spike_arms):
    kit, _, _, _ = spike_arms
    report = kit.plane.report()
    refits = [e for e in report.epochs if e.trigger == "refit"]
    assert refits, "no model epoch was installed during the run"
    assert report.total_decisions > 0
    assert sum(report.decisions_by_epoch.values()) == report.total_decisions


def test_adapt_history_reconciles(spike_arms):
    """Every model swap and reconfiguration passes the ninth validation
    family — the controller never acted outside its clamps."""
    kit, _, _, _ = spike_arms
    assert_adapt_valid(kit.plane.report())


def test_controller_respected_hard_ranges(spike_arms):
    kit, _, _, _ = spike_arms
    report = kit.plane.report()
    limits = report.limits
    assert len(report.reconfigs) <= limits.max_reconfigs
    for rec in report.reconfigs:
        if rec.action in ("tighten_admission", "relax_admission"):
            assert (
                limits.min_lateness_factor
                <= rec.value_after
                <= limits.max_lateness_factor
            )
        elif rec.action in ("grow_translation", "shrink_translation"):
            assert (
                limits.min_translation_workers
                <= rec.value_after
                <= limits.max_translation_workers
            )


def test_frozen_arm_has_no_plane(spike_arms):
    _, _, frozen_kit, _ = spike_arms
    assert frozen_kit.plane is None


def test_spike_run_is_deterministic():
    """Two fresh kits must replay the identical history — the golden
    adaptive fixture depends on this."""

    def fingerprint():
        kit = spike_scenario(adaptive=True)
        result = kit.run()
        report = kit.plane.report()
        return (
            result.hit_rate("premium"),
            result.hit_rate("batch"),
            result.accepted,
            tuple((r.time, r.action, r.value_after) for r in report.reconfigs),
            tuple((e.version, e.time, e.families) for e in report.epochs),
        )

    assert fingerprint() == fingerprint()


def test_seeded_violation_fails_loudly(spike_arms):
    """The validate_adapt arm of the acceptance criteria: a healthy
    history passes, and a deliberately corrupted one is caught."""
    from repro.sim.validate import SEEDABLE_ADAPT_VIOLATIONS, seed_adapt_violation

    kit, _, _, _ = spike_arms
    report = kit.plane.report()
    assert validate_adapt(report).ok
    for kind in SEEDABLE_ADAPT_VIOLATIONS:
        corrupted = seed_adapt_violation(report, kind)
        assert not validate_adapt(corrupted).ok, (
            f"seeded {kind!r} violation went undetected"
        )
