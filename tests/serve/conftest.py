"""Shared helpers for the wall-clock serving suite.

Everything here runs under a :class:`~repro.serve.FakeClock` with a
:class:`~repro.serve.NullExecutor` (or a purpose-built gated executor),
so the suite is deterministic and sleep-free: "waiting ten seconds" is
a pure counter transition and two runs of any test stamp identical
timestamps.
"""

from __future__ import annotations

import time

import pytest

from repro.core.scheduler import QueryEstimates
from repro.paper import paper_system_config
from repro.query.model import Query
from repro.serve import FakeClock, NullExecutor, ServeEngine

#: estimate archetypes driving the shared Figure-10 decision logic:
#: CPU wins outright / GPU-only (no cube) / GPU-only with translation
CPU_FAST = QueryEstimates(t_cpu=0.01, t_gpu={1: 0.2, 2: 0.1, 4: 0.05})
GPU_ONLY = QueryEstimates(t_cpu=None, t_gpu={1: 0.2, 2: 0.1, 4: 0.05})
GPU_TEXT = QueryEstimates(
    t_cpu=None, t_gpu={1: 0.2, 2: 0.1, 4: 0.05}, t_trans=0.02
)


class FixedEstimator:
    """Cycles through a fixed sequence of :class:`QueryEstimates`.

    The engine calls :meth:`estimate` under its lock, so the cursor
    needs no synchronisation of its own.
    """

    def __init__(self, *estimates: QueryEstimates):
        self._estimates = list(estimates) or [CPU_FAST]
        self._i = 0

    def estimate(self, query) -> QueryEstimates:
        est = self._estimates[self._i % len(self._estimates)]
        self._i += 1
        return est


def make_query() -> Query:
    return Query(conditions=(), measures=("v",))


def wait_until(predicate, timeout: float = 5.0, what: str = "condition"):
    """Spin (1 ms naps) until ``predicate()`` holds; real-time bounded."""
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out waiting for {what}")
        time.sleep(0.001)


@pytest.fixture(scope="module")
def serve_config():
    """The analytic paper system (scheduler wiring only; no real work)."""
    return paper_system_config(include_32gb=False)


@pytest.fixture()
def make_engine(serve_config):
    """Factory for fake-clock engines; stops all of them at teardown."""
    engines: list[ServeEngine] = []

    def factory(*estimates, config=None, executor=None, **kwargs):
        engine = ServeEngine(
            config if config is not None else serve_config,
            clock=FakeClock(),
            executor=executor if executor is not None else NullExecutor(),
            estimator=FixedEstimator(*estimates),
            **kwargs,
        )
        engines.append(engine)
        return engine

    yield factory
    for engine in engines:
        engine.stop(finish_queued=False)
