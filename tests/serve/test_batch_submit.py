"""Batched submission under a fake clock, plus the ticket-lifetime fixes.

``submit_batch`` must be observably identical to a ``submit`` loop —
same decisions, same outcomes, same audit-clean reports and traces —
while holding the engine lock once per admitted chunk.  The second half
pins the bugfixes that rode along: ``Ticket.wait`` returning ``False``
(not hanging) when the engine stops first, and drain timeouts naming
the stranded query ids.
"""

import dataclasses
import functools
import threading

import pytest

from repro.core.admission import AdmissionControlScheduler
from repro.core.scheduler import QueryEstimates
from repro.errors import BackpressureError, ServeError
from repro.query.model import Query
from repro.sim.obs import TraceCollector
from repro.sim.validate import assert_trace_valid, assert_valid

from tests.serve.conftest import CPU_FAST, GPU_ONLY, GPU_TEXT, wait_until


def make_query():
    return Query(conditions=(), measures=("v",))


class GatedExecutor:
    """NullExecutor whose processing stage blocks on a test-held gate."""

    def __init__(self):
        self.gate = threading.Event()

    def translate(self, query):
        return query

    def execute(self, target, query):
        self.gate.wait()
        return None


class TestSubmitBatch:
    def test_outcomes_align_and_audit_clean(self, make_engine):
        collector = TraceCollector()
        engine = make_engine(
            CPU_FAST, GPU_ONLY, GPU_TEXT, collector=collector
        ).start()
        queries = [make_query() for _ in range(9)]
        outcomes = engine.submit_batch(queries)
        assert [o.decision.query.query_id for o in outcomes] == [
            q.query_id for q in queries
        ]
        assert all(o.accepted for o in outcomes)
        engine.drain()
        report = engine.report()
        assert report.completed == 9
        assert_valid(report, require_drained=True)
        assert_trace_valid(report, collector)
        # one chunk fit in max_in_flight: exactly one batch announcement
        batch_events = [e for e in collector.events if e.kind == "batch"]
        assert [e.data["n"] for e in batch_events] == [9]

    def test_matches_sequential_submit_loop(self, make_engine):
        estimates = [CPU_FAST, GPU_ONLY, GPU_TEXT] * 4
        queries = [make_query() for _ in estimates]
        seq_engine = make_engine(*estimates).start()
        seq = [seq_engine.submit(q) for q in queries]
        seq_engine.drain()
        bat_engine = make_engine(*estimates).start()
        bat = bat_engine.submit_batch(queries)
        bat_engine.drain()

        def key(outcome):
            d = outcome.decision
            return (
                d.target.name,
                d.processing.estimated_start,
                d.processing.estimated_finish,
                d.estimated_response,
                d.translation is not None,
            )

        # same FakeClock instant, same estimate sequence: the decisions
        # must be identical pairwise (the per-engine query objects
        # differ, their placement must not)
        assert list(map(key, seq)) == list(map(key, bat))

    def test_per_query_classes(self, make_engine):
        engine = make_engine(CPU_FAST).start()
        queries = [make_query() for _ in range(3)]
        engine.submit_batch(queries, ["gold", "silver", "gold"])
        engine.drain()
        classes = {
            r.query_id: r.query_class for r in engine.report().records
        }
        assert classes == {
            queries[0].query_id: "gold",
            queries[1].query_id: "silver",
            queries[2].query_id: "gold",
        }
        with pytest.raises(ServeError, match="2 entries for 1"):
            engine.submit_batch([make_query()], ["a", "b"])

    def test_rejections_land_in_position(self, serve_config, make_engine):
        strict = dataclasses.replace(
            serve_config,
            scheduler_factory=functools.partial(
                AdmissionControlScheduler, lateness_factor=0.0
            ),
        )
        hopeless = QueryEstimates(t_cpu=10.0, t_gpu={1: 10.0, 2: 9.0, 4: 8.0})
        engine = make_engine(
            CPU_FAST, hopeless, CPU_FAST, config=strict
        ).start()
        outcomes = engine.submit_batch([make_query() for _ in range(3)])
        assert [o.accepted for o in outcomes] == [True, False, True]
        assert outcomes[1].ticket is None and outcomes[1].decision is None
        engine.drain()
        report = engine.report()
        assert report.rejected == 1 and report.completed == 2
        assert_valid(report, require_drained=True)

    def test_chunks_at_the_in_flight_bound(self, make_engine):
        executor = GatedExecutor()
        engine = make_engine(
            CPU_FAST, executor=executor, max_in_flight=2
        ).start()
        outcomes = []

        def client():
            outcomes.extend(engine.submit_batch([make_query() for _ in range(5)]))

        t = threading.Thread(target=client)
        t.start()
        # first chunk admitted up to the bound, the rest blocked
        wait_until(lambda: engine.in_flight == 2, what="first chunk admitted")
        assert not outcomes
        executor.gate.set()
        t.join(timeout=5.0)
        assert len(outcomes) == 5 and all(o.accepted for o in outcomes)
        engine.drain()
        assert engine.report().completed == 5

    def test_nonblocking_keeps_admitted_prefix(self, make_engine):
        executor = GatedExecutor()
        engine = make_engine(
            CPU_FAST, executor=executor, max_in_flight=2
        ).start()
        with pytest.raises(BackpressureError) as exc_info:
            engine.submit_batch(
                [make_query() for _ in range(5)], block=False
            )
        # the first chunk filled the bound and stays admitted; its
        # outcomes ride on the exception for the load generator
        partial = exc_info.value.outcomes
        assert len(partial) == 2 and all(o.accepted for o in partial)
        assert engine.in_flight == 2
        executor.gate.set()
        engine.drain()
        assert engine.report().completed == 2


class TestTicketLifetime:
    def test_wait_returns_false_after_stop(self, make_engine):
        executor = GatedExecutor()
        engine = make_engine(CPU_FAST, executor=executor).start()
        outcome = engine.submit(make_query())
        engine.stop(finish_queued=False)
        executor.gate.set()
        # the engine stopped before the query ran: the ticket is
        # abandoned — wait() unblocks with False instead of hanging
        assert outcome.ticket.wait(timeout=1.0) is False
        assert outcome.ticket.done is False

    def test_drain_timeout_names_stranded_queries(self, make_engine):
        executor = GatedExecutor()
        engine = make_engine(CPU_FAST, executor=executor).start()
        q1, q2 = make_query(), make_query()
        engine.submit(q1)
        engine.submit(q2)
        with pytest.raises(
            ServeError,
            match=f"stranded query ids: \\[{q1.query_id}, {q2.query_id}\\]",
        ):
            engine.drain(timeout=0.05)
        executor.gate.set()

    def test_completed_ticket_survives_stop(self, make_engine):
        engine = make_engine(CPU_FAST).start()
        outcome = engine.submit(make_query())
        assert outcome.ticket.wait(timeout=5.0)
        engine.stop()
        assert outcome.ticket.done
        assert outcome.ticket.record is not None
