"""Clock abstraction: fake determinism, real monotonicity."""

import threading
import time

import pytest

from repro.errors import ServeError
from repro.serve import Clock, FakeClock, RealClock


class TestFakeClock:
    def test_starts_at_origin(self):
        assert FakeClock().now() == 0.0
        assert FakeClock(start=5.0).now() == 5.0

    def test_sleep_advances_instead_of_blocking(self):
        clock = FakeClock()
        before = time.monotonic()
        clock.sleep(3600.0)
        assert clock.now() == 3600.0
        # an hour of fake sleep costs essentially no real time
        assert time.monotonic() - before < 1.0

    def test_negative_sleep_is_a_noop(self):
        clock = FakeClock(start=2.0)
        clock.sleep(-1.0)
        assert clock.now() == 2.0

    def test_advance_returns_new_time(self):
        clock = FakeClock()
        assert clock.advance(1.5) == 1.5
        assert clock.advance(0.5) == 2.0
        assert clock.now() == 2.0

    def test_advance_backwards_raises(self):
        with pytest.raises(ServeError):
            FakeClock().advance(-0.1)

    def test_satisfies_clock_protocol(self):
        assert isinstance(FakeClock(), Clock)

    def test_concurrent_readers_see_monotone_time(self):
        clock = FakeClock()
        failures = []

        def reader():
            last = clock.now()
            for _ in range(2000):
                now = clock.now()
                if now < last:
                    failures.append((last, now))
                    return
                last = now

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for t in readers:
            t.start()
        for _ in range(2000):
            clock.advance(0.001)
        for t in readers:
            t.join()
        assert not failures


class TestRealClock:
    def test_now_is_monotone(self):
        clock = RealClock()
        a = clock.now()
        b = clock.now()
        assert b >= a

    def test_nonpositive_sleep_returns_immediately(self):
        clock = RealClock()
        before = time.monotonic()
        clock.sleep(0.0)
        clock.sleep(-5.0)
        assert time.monotonic() - before < 0.05

    def test_sleep_actually_sleeps(self):
        clock = RealClock()
        before = clock.now()
        clock.sleep(0.01)
        assert clock.now() - before >= 0.009

    def test_satisfies_clock_protocol(self):
        assert isinstance(RealClock(), Clock)
