"""ServeEngine behaviour under a fake clock: dispatch, pipeline,
admission, backpressure, drain, determinism.

Every completed run is audited with the simulation invariant checker
(``require_drained=True``) — the serving engine must produce reports
indistinguishable in structure from simulated ones.
"""

import functools
import threading

import pytest

from repro.core.admission import AdmissionControlScheduler
from repro.core.scheduler import QueryEstimates
from repro.errors import BackpressureError, ServeError
from repro.query.model import Query
from repro.sim.obs import TraceCollector
from repro.sim.validate import assert_trace_valid, assert_valid

from tests.serve.conftest import CPU_FAST, GPU_ONLY, GPU_TEXT


def make_query():
    return Query(conditions=(), measures=("v",))


class GatedExecutor:
    """NullExecutor whose processing stage blocks on a test-held gate."""

    def __init__(self):
        self.gate = threading.Event()

    def translate(self, query):
        return query

    def execute(self, target, query):
        self.gate.wait()
        return None


class FailingExecutor:
    def __init__(self, fail_translation=False):
        self.fail_translation = fail_translation

    def translate(self, query):
        if self.fail_translation:
            raise RuntimeError("dictionary corrupted (simulated)")
        return query

    def execute(self, target, query):
        raise RuntimeError("kernel fault (simulated)")


class TestDispatch:
    def test_single_query_completes(self, make_engine):
        engine = make_engine(CPU_FAST).start()
        outcome = engine.submit(make_query())
        assert outcome.accepted
        engine.drain()
        assert outcome.ticket.done
        report = engine.report()
        assert report.completed == 1
        assert report.records[0].target == "Q_CPU"
        assert outcome.ticket.record == report.records[0]
        assert_valid(report, require_drained=True)

    def test_decisions_come_from_the_shared_scheduler(self, make_engine):
        # CPU-feasible fast estimate -> step-5 CPU win; GPU-only
        # estimate -> slowest GPU partition first (Q_G1)
        engine = make_engine(CPU_FAST, GPU_ONLY).start()
        cpu = engine.submit(make_query())
        gpu = engine.submit(make_query())
        engine.drain()
        assert cpu.decision.target.name == "Q_CPU"
        assert gpu.decision.target.name == "Q_G1"

    def test_translation_pipeline_lifecycle(self, serve_config, make_engine):
        collector = TraceCollector()
        engine = make_engine(GPU_TEXT, collector=collector).start()
        outcome = engine.submit(make_query())
        assert outcome.decision.translation is not None
        engine.drain()
        report = engine.report()
        record = report.records[0]
        assert record.translated
        assert record.target.startswith("Q_G")
        assert len(report.timelines["Q_TRANS"]) == 1
        assert_valid(report, require_drained=True)
        assert_trace_valid(report, collector)
        assert collector.kinds_for(record.query_id) == (
            "arrival",
            "estimated",
            "decision",
            "translation_start",
            "translation_finish",
            "feedback",
            "service_start",
            "service_finish",
            "feedback",
        )

    def test_feedback_reaches_the_books(self, make_engine):
        engine = make_engine(CPU_FAST).start()
        engine.submit(make_query())
        engine.drain()
        report = engine.report()
        # instant execution against a 10 ms estimate: feedback must have
        # recorded exactly one hugely-overestimated completion
        stats = report.feedback_stats["Q_CPU"]
        assert stats.count == 1
        assert stats.total_measured < stats.total_estimated

    def test_engine_relative_time_starts_at_zero(self, make_engine):
        engine = make_engine(CPU_FAST)
        assert engine.elapsed == 0.0
        engine.clock.advance(2.0)
        assert engine.elapsed == 2.0


class TestAdmission:
    @pytest.fixture()
    def strict_config(self, serve_config):
        from dataclasses import replace

        return replace(
            serve_config,
            scheduler_factory=functools.partial(
                AdmissionControlScheduler, lateness_factor=0.0
            ),
        )

    def test_hopeless_query_is_rejected(self, strict_config, make_engine):
        hopeless = QueryEstimates(t_cpu=10.0, t_gpu={1: 10.0, 2: 9.0, 4: 8.0})
        collector = TraceCollector()
        engine = make_engine(
            hopeless, config=strict_config, collector=collector
        ).start()
        outcome = engine.submit(make_query())
        assert not outcome.accepted
        assert outcome.ticket is None and outcome.decision is None
        assert engine.in_flight == 0
        engine.drain()
        report = engine.report()
        assert report.rejected == 1 and report.completed == 0
        assert_valid(report, require_drained=True)
        assert_trace_valid(report, collector)
        assert [e.kind for e in collector.events if e.query_id is not None] == [
            "arrival",
            "estimated",
            "rejected",
        ]

    def test_feasible_query_is_accepted(self, strict_config, make_engine):
        engine = make_engine(CPU_FAST, config=strict_config).start()
        assert engine.submit(make_query()).accepted
        engine.drain()
        assert engine.report().completed == 1


class TestBackpressure:
    def test_nonblocking_submit_raises_at_the_bound(self, make_engine):
        executor = GatedExecutor()
        engine = make_engine(
            CPU_FAST, executor=executor, max_in_flight=1
        ).start()
        engine.submit(make_query())
        with pytest.raises(BackpressureError, match="in flight"):
            engine.submit(make_query(), block=False)
        executor.gate.set()
        engine.drain()
        assert engine.report().completed == 1

    def test_blocking_submit_times_out(self, make_engine):
        executor = GatedExecutor()
        engine = make_engine(
            CPU_FAST, executor=executor, max_in_flight=1
        ).start()
        engine.submit(make_query())
        with pytest.raises(BackpressureError, match="still"):
            engine.submit(make_query(), timeout=0.02)
        executor.gate.set()
        engine.drain()

    def test_blocking_submit_resumes_when_capacity_frees(self, make_engine):
        executor = GatedExecutor()
        engine = make_engine(
            CPU_FAST, executor=executor, max_in_flight=1
        ).start()
        engine.submit(make_query())
        accepted = []

        def client():
            accepted.append(engine.submit(make_query()))

        t = threading.Thread(target=client)
        t.start()
        assert not accepted  # blocked on the in-flight bound
        executor.gate.set()
        t.join(timeout=5.0)
        assert accepted and accepted[0].accepted
        engine.drain()
        report = engine.report()
        assert report.completed == 2
        assert_valid(report, require_drained=True)

    def test_invalid_bound_rejected(self, make_engine):
        with pytest.raises(ServeError, match="max_in_flight"):
            make_engine(CPU_FAST, max_in_flight=0)


class TestDrainAndErrors:
    def test_submit_after_drain_raises(self, make_engine):
        engine = make_engine(CPU_FAST).start()
        engine.drain()
        with pytest.raises(ServeError, match="draining"):
            engine.submit(make_query())

    def test_drain_times_out_on_wedged_executor(self, make_engine):
        executor = GatedExecutor()
        engine = make_engine(CPU_FAST, executor=executor).start()
        engine.submit(make_query())
        with pytest.raises(ServeError, match="drain timed out"):
            engine.drain(timeout=0.05)
        executor.gate.set()

    def test_context_manager_drains(self, make_engine):
        engine = make_engine(CPU_FAST)
        with engine:
            engine.submit(make_query())
        assert engine.report().completed == 1

    def test_processing_failure_surfaces_in_drain(self, make_engine):
        engine = make_engine(CPU_FAST, executor=FailingExecutor()).start()
        outcome = engine.submit(make_query())
        with pytest.raises(ServeError, match="failed during execution"):
            engine.drain()
        assert isinstance(outcome.ticket.error, RuntimeError)
        report = engine.report()
        # full bookkeeping still happened: record present, no answer
        assert report.completed == 1
        assert report.records[0].answer is None
        assert_valid(report, require_drained=True)

    def test_translation_failure_skips_processing(self, make_engine):
        engine = make_engine(
            GPU_TEXT, executor=FailingExecutor(fail_translation=True)
        ).start()
        outcome = engine.submit(make_query())
        with pytest.raises(ServeError, match="failed during execution"):
            engine.drain()
        assert isinstance(outcome.ticket.error, RuntimeError)
        report = engine.report()
        assert report.completed == 0
        # the booked processing submission is stranded in flight: the
        # base families must still reconcile (it is accounted, not lost)
        assert_valid(report)
        target = outcome.decision.target.name
        assert report.outstanding[target] == 1


class TestDeterminism:
    def _fingerprint(self, report):
        return (
            tuple(
                (r.target, r.submit_time, r.finish_time, r.estimated_time,
                 r.measured_time, r.translated)
                for r in report.records
            ),
            tuple(sorted(report.timelines)),
            tuple(sorted(report.by_target().items())),
        )

    def test_batch_submit_is_repeatable_20x(self, make_engine):
        # submissions happen before workers start: decisions evolve the
        # T_Q books with zero interleaving, so 20 runs are identical
        fingerprints = set()
        for _ in range(20):
            engine = make_engine(CPU_FAST, GPU_ONLY, GPU_TEXT)
            for _ in range(30):
                engine.submit(make_query())
            engine.start()
            engine.drain()
            report = engine.report()
            assert_valid(report, require_drained=True)
            fingerprints.add(self._fingerprint(report))
        assert len(fingerprints) == 1

    def test_submit_and_wait_is_repeatable_20x(self, make_engine):
        # one query in flight at a time: every submission observes fully
        # quiesced books regardless of worker-thread scheduling
        fingerprints = set()
        for _ in range(20):
            engine = make_engine(CPU_FAST, GPU_ONLY, GPU_TEXT).start()
            for _ in range(15):
                outcome = engine.submit(make_query())
                assert outcome.ticket.wait(timeout=5.0)
            engine.drain()
            report = engine.report()
            assert_valid(report, require_drained=True)
            fingerprints.add(self._fingerprint(report))
        assert len(fingerprints) == 1
