"""ServeEngine × rollup cache tier: the hot-path integration.

The router sits inside ``submit`` — after the arrival event, before
``on_submitted`` — so cache hits never enter the scheduler books and
the existing invariant families hold unchanged while the seventh
("rollup") audits the hits themselves.
"""

import pytest

from repro.metrics import MetricsRegistry, RollupMetrics
from repro.olap import (
    ROLLUP_TARGET,
    AdmissionPolicy,
    CuboidSpec,
    RollupCatalog,
    RollupRouter,
)
from repro.query.model import Condition, Query
from repro.sim import TraceCollector
from repro.sim.validate import (
    assert_trace_valid,
    validate_report,
    validate_rollup,
)

from tests.serve.conftest import CPU_FAST


def covered_query():
    return Query(
        conditions=(Condition("date", 1, lo=0, hi=3),),
        measures=("sales_price",),
    )


def uncovered_query():
    return Query(
        conditions=(Condition("date", 3, lo=0, hi=3),),
        measures=("sales_price",),
    )


@pytest.fixture()
def router(fact_table, small_schema):
    catalog = RollupCatalog(fact_table, "sales_price")
    names = tuple(d.name for d in small_schema.dimensions)
    catalog.materialise_and_install(
        CuboidSpec(dims=names, resolutions=(2,) * len(names))
    )
    return RollupRouter(catalog, policy=AdmissionPolicy(byte_budget=1 << 30))


class TestSubmitHook:
    def test_hit_returns_finished_ticket(self, make_engine, router):
        engine = make_engine(CPU_FAST, rollup=router)
        with engine:
            outcome = engine.submit(covered_query())
        assert outcome.accepted and outcome.cache_hit
        assert outcome.decision is None
        assert outcome.ticket.done
        assert outcome.ticket.record.target == ROLLUP_TARGET
        assert outcome.ticket.record.answer is not None

    def test_hits_stay_out_of_scheduler_books(self, make_engine, router):
        collector = TraceCollector()
        engine = make_engine(CPU_FAST, rollup=router, collector=collector)
        with engine:
            hit = engine.submit(covered_query())
            miss = engine.submit(uncovered_query())
            miss.ticket.wait(timeout=5.0)
        assert hit.cache_hit and not miss.cache_hit
        report = engine.report()
        assert report.cache_hit_count == 1
        # the hit is invisible to the scheduler books: one record, no rejects
        assert len(report.records) == 1
        assert report.rejected == 0
        result = validate_report(report, require_drained=True)
        assert result.ok and "rollup" in result.checked
        assert_trace_valid(report, collector)
        assert validate_rollup(report, collector=collector).ok
        kinds = collector.kinds_for(hit.ticket.record.query_id)
        assert kinds == ("arrival", "cache-hit")

    def test_no_router_means_no_change(self, make_engine):
        engine = make_engine(CPU_FAST)
        with engine:
            outcome = engine.submit(covered_query())
            outcome.ticket.wait(timeout=5.0)
        assert not outcome.cache_hit
        assert engine.report().cache_hit_count == 0

    def test_metrics_wiring_and_reconciliation(self, make_engine, router):
        registry = MetricsRegistry()
        engine = make_engine(CPU_FAST, rollup=router, metrics=registry)
        assert isinstance(router.metrics, RollupMetrics)
        with engine:
            engine.submit(covered_query())
            engine.submit(covered_query())
            miss = engine.submit(uncovered_query())
            miss.ticket.wait(timeout=5.0)
        report = engine.report()
        snapshot = registry.collect(engine.elapsed)
        assert validate_rollup(report, snapshot=snapshot).ok
        assert snapshot.family("repro_rollup_hits_total").total() == 2
        assert snapshot.family("repro_rollup_misses_total").total() == 1

    def test_effective_rate_counts_hits(self, make_engine, router):
        engine = make_engine(CPU_FAST, rollup=router)
        with engine:
            engine.submit(covered_query())
            miss = engine.submit(uncovered_query())
            miss.ticket.wait(timeout=5.0)
        report = engine.report()
        assert report.cache_hit_rate == pytest.approx(0.5)
        assert report.effective_queries_per_second >= report.queries_per_second
        assert "cache-served" in report.summary()
