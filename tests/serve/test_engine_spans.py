"""Span tracing through the wall-clock serving engine.

The engine binds the tracer to its injected clock, so every timestamp
below lives in the FakeClock domain and the span↔books cross-checks
are exact, not approximate.
"""

import pytest

from repro.obs import SpanTracer
from repro.sim import TraceCollector
from repro.sim.validate import assert_spans_valid, validate_spans

from tests.serve.conftest import CPU_FAST, GPU_TEXT, make_query
from tests.serve.test_engine import GatedExecutor

SEED = 77


def make_tracer(rate=1.0):
    return SpanTracer(rate, seed=SEED, process="serve")


class TestServeSpans:
    def test_cpu_query_leaves_a_full_tree(self, make_engine):
        tracer = make_tracer()
        collector = TraceCollector()
        engine = make_engine(
            CPU_FAST, spans=tracer, collector=collector
        ).start()
        outcome = engine.submit(make_query(), query_class="small")
        assert outcome.accepted
        engine.drain()
        report = engine.report()
        qid = report.records[0].query_id
        spans = assert_spans_valid(
            tracer.spans(),
            report=report,
            collector=collector,
            seed=SEED,
            sample_rate=1.0,
            submitted=[qid],
        )
        by_name = {s.name: s for s in spans}
        root = by_name["serve.query"]
        assert root.parent_id is None and root.status == "ok"
        assert root.attributes["query_class"] == "small"
        assert root.attributes["branch"] == "step5-cpu"
        assert root.attributes["target"] == "Q_CPU"
        assert root.attributes["met_deadline"] is True
        for stage in (
            "scheduler.estimate",
            "scheduler.decision",
            "queue.wait",
            "pool.service",
        ):
            assert by_name[stage].parent_id == root.span_id
        assert by_name["pool.service"].attributes["pool"] == "Q_CPU"
        assert by_name["pool.service"].track == "Q_CPU"

    def test_translated_query_spans_the_translation_pool(self, make_engine):
        tracer = make_tracer()
        engine = make_engine(GPU_TEXT, spans=tracer).start()
        outcome = engine.submit(make_query())
        assert outcome.decision.translation is not None
        engine.drain()
        spans = assert_spans_valid(tracer.spans(), report=engine.report())
        services = [s for s in spans if s.name == "pool.service"]
        pools = {s.attributes["pool"] for s in services}
        assert "Q_TRANS" in pools
        assert any(p.startswith("Q_G") for p in pools - {"Q_TRANS"})
        # the translation stage precedes the processing stage
        trans = next(s for s in services if s.attributes["pool"] == "Q_TRANS")
        work = next(s for s in services if s.attributes["pool"] != "Q_TRANS")
        assert trans.end <= work.start

    def test_rate_zero_records_nothing(self, make_engine):
        tracer = make_tracer(rate=0.0)
        engine = make_engine(CPU_FAST, spans=tracer).start()
        engine.submit(make_query())
        engine.drain()
        assert len(tracer) == 0
        assert tracer.seen == 1 and tracer.sampled_count == 0
        # the report itself is unaffected by the disabled tracer
        assert engine.report().completed == 1

    def test_rejected_query_closes_its_root_rejected(
        self, strict_config, make_engine
    ):
        from repro.core.scheduler import QueryEstimates

        tracer = make_tracer()
        hopeless = QueryEstimates(t_cpu=10.0, t_gpu={1: 10.0, 2: 9.0, 4: 8.0})
        engine = make_engine(
            hopeless, config=strict_config, spans=tracer
        ).start()
        outcome = engine.submit(make_query())
        assert not outcome.accepted
        engine.drain()
        spans = assert_spans_valid(tracer.spans(), report=engine.report())
        root = next(s for s in spans if s.parent_id is None)
        assert root.status == "rejected"
        assert root.end == root.start  # rejected in the admission step
        names = {s.name for s in spans}
        assert "scheduler.estimate" in names
        assert "pool.service" not in names

    def test_stop_abandons_open_roots(self, make_engine):
        tracer = make_tracer()
        # never started: the admitted task sits queued forever, so its
        # root span is still open when stop() tears the pools down
        engine = make_engine(CPU_FAST, spans=tracer)
        assert engine.submit(make_query()).accepted
        engine.stop(finish_queued=False)
        spans = tracer.spans()
        root = next(s for s in spans if s.parent_id is None)
        assert root.status == "abandoned"
        assert validate_spans(spans).ok

    def test_in_flight_root_survives_the_gate(self, make_engine):
        executor = GatedExecutor()
        tracer = make_tracer()
        engine = make_engine(
            CPU_FAST, executor=executor, spans=tracer
        ).start()
        engine.submit(make_query())
        # while the executor holds the gate, the root is open
        assert tracer.open_count() == 1
        executor.gate.set()
        engine.drain()
        assert tracer.open_count() == 0
        root = next(s for s in tracer.spans() if s.parent_id is None)
        assert root.status == "ok"


class TestSpansAreReadOnly:
    def test_report_identical_with_and_without_tracer(self, make_engine):
        def run(tracer):
            engine = make_engine(
                CPU_FAST, GPU_TEXT, spans=tracer
            ).start()
            for _ in range(4):
                engine.submit(make_query())
            engine.drain()
            report = engine.report()
            # query ids are a process-global counter and completion
            # order is wall-clock, so compare the outcome multiset
            return sorted((r.target, r.translated) for r in report.records)

        assert run(make_tracer()) == run(None)


@pytest.fixture()
def strict_config(serve_config):
    import functools
    from dataclasses import replace

    from repro.core.admission import AdmissionControlScheduler

    return replace(
        serve_config,
        scheduler_factory=functools.partial(
            AdmissionControlScheduler, lateness_factor=0.0
        ),
    )
