"""Regression: the metrics exporter leaked its socket past engine stop.

``repro serve --metrics-port N`` started a daemonised scrape server
that nothing closed when the engine stopped through the ``drain()`` /
``stop()`` path, so the port stayed bound for the life of the process
and a second engine in the same process could not claim it.  The engine
now owns an optional exporter and closes it from ``stop()``.
"""

import socket

import pytest

from repro.errors import MetricsError
from repro.metrics import MetricsExporter, MetricsRegistry


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def port_is_listening(port: int) -> bool:
    with socket.socket() as probe:
        return probe.connect_ex(("127.0.0.1", port)) == 0


class TestExporterClose:
    def test_close_is_idempotent(self):
        exporter = MetricsExporter(MetricsRegistry(), port=0).start()
        port = exporter.port
        assert port_is_listening(port)
        exporter.close()
        assert not port_is_listening(port)
        exporter.close()  # second close: no error

    def test_close_before_start_is_a_noop(self):
        MetricsExporter(MetricsRegistry(), port=0).close()

    def test_double_start_still_rejected(self):
        exporter = MetricsExporter(MetricsRegistry(), port=0).start()
        try:
            with pytest.raises(MetricsError):
                exporter.start()
        finally:
            exporter.close()


class TestEngineOwnedExporter:
    def test_engine_stop_releases_the_port_for_rebind(self, make_engine):
        port = free_port()
        registry = MetricsRegistry()
        exporter = MetricsExporter(registry, port=port).start()
        engine = make_engine(metrics=registry, exporter=exporter)
        engine.start()
        assert port_is_listening(port)

        engine.stop()
        # regression: the fixed port must be rebindable immediately —
        # before the fix this raised EADDRINUSE because the daemonised
        # server thread still held the listener
        second = MetricsExporter(MetricsRegistry(), port=port).start()
        try:
            assert second.port == port
        finally:
            second.close()

    def test_engine_drain_also_closes_the_exporter(self, make_engine):
        registry = MetricsRegistry()
        exporter = MetricsExporter(registry, port=0).start()
        port = exporter.port
        engine = make_engine(metrics=registry, exporter=exporter)
        engine.start()
        engine.drain()
        assert not port_is_listening(port)

    def test_engine_without_exporter_unchanged(self, make_engine):
        engine = make_engine()
        engine.start()
        engine.stop()  # nothing to close; no error
