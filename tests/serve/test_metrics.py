"""Serve-engine metrics: triple audit, concurrency, no-op when unattached.

The acceptance bar for the metrics plane: one fake-clock serve run must
simultaneously pass the schedule audit (``assert_valid``), the trace
cross-check (``assert_trace_valid``), and the metrics reconciliation
(``assert_metrics_valid``) — three independent books of the same run
agreeing exactly.
"""

import threading

from repro.metrics import MetricsRegistry, SloMonitor, SnapshotWriter
from repro.sim import TraceCollector
from repro.sim.validate import (
    assert_metrics_valid,
    assert_trace_valid,
    assert_valid,
)

from tests.serve.conftest import CPU_FAST, GPU_ONLY, GPU_TEXT, make_query


class TestTripleAudit:
    def test_traced_and_metered_run_reconciles(self, make_engine):
        registry = MetricsRegistry()
        slo = SloMonitor(target=0.9, window=60.0, registry=registry)
        snapshots = SnapshotWriter(registry, interval=0.05)
        collector = TraceCollector()
        engine = make_engine(
            CPU_FAST,
            GPU_ONLY,
            GPU_TEXT,
            collector=collector,
            metrics=registry,
            slo=slo,
            snapshots=snapshots,
        )
        with engine:
            tickets = []
            for _ in range(30):
                outcome = engine.submit(make_query())
                assert outcome.accepted
                tickets.append(outcome.ticket)
            for ticket in tickets:
                assert ticket.wait(timeout=10.0)
        report = engine.report()

        assert_valid(report, require_drained=True)
        assert_trace_valid(report, collector)
        assert_metrics_valid(report, registry.collect(engine.elapsed))

    def test_drain_writes_final_snapshot(self, make_engine):
        registry = MetricsRegistry()
        snapshots = SnapshotWriter(registry, interval=1e9)  # grid never fires
        engine = make_engine(CPU_FAST, metrics=registry, snapshots=snapshots)
        with engine:
            assert engine.submit(make_query()).ticket.wait(timeout=10.0)
        # the forced drain snapshot is what validate_metrics reconciles
        final = snapshots.snapshots[-1]
        assert final.value("repro_queries_submitted_total") == 1.0
        assert_metrics_valid(engine.report(), final)

    def test_slo_sees_every_completion(self, make_engine):
        registry = MetricsRegistry()
        slo = SloMonitor(target=0.5, window=1e9, registry=registry)
        engine = make_engine(CPU_FAST, metrics=registry, slo=slo)
        with engine:
            tickets = [engine.submit(make_query()).ticket for _ in range(10)]
            for ticket in tickets:
                assert ticket.wait(timeout=10.0)
        assert slo.window_count == 10


class TestConcurrentSubmitters:
    SUBMITTERS = 8
    PER_SUBMITTER = 25

    def test_counters_exact_under_contention(self, make_engine):
        registry = MetricsRegistry()
        engine = make_engine(CPU_FAST, GPU_ONLY, metrics=registry)
        barrier = threading.Barrier(self.SUBMITTERS)
        tickets_lock = threading.Lock()
        tickets = []
        errors: list[BaseException] = []

        def submitter():
            try:
                barrier.wait(timeout=10.0)
                for _ in range(self.PER_SUBMITTER):
                    outcome = engine.submit(make_query())
                    with tickets_lock:
                        tickets.append(outcome.ticket)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        with engine:
            threads = [
                threading.Thread(target=submitter)
                for _ in range(self.SUBMITTERS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)
            assert not errors
            for ticket in tickets:
                assert ticket.wait(timeout=10.0)

        n = self.SUBMITTERS * self.PER_SUBMITTER
        snap = registry.collect(engine.elapsed)
        assert snap.value("repro_queries_submitted_total") == float(n)
        assert snap.family("repro_queries_completed_total").total() == float(n)
        assert snap.value("repro_in_flight_queries") == 0.0
        assert_metrics_valid(engine.report(), snap)


class TestUnattached:
    def test_no_registry_means_no_hooks(self, make_engine):
        engine = make_engine(CPU_FAST)
        assert engine.metrics is None
        assert engine.scheduler.metrics_observer is None
        assert engine.feedback.metrics_observer is None
        assert all(pool.metrics is None for pool in engine.pools.values())

    def test_metered_run_matches_unmetered(self, make_engine):
        """Attaching metrics must not change any scheduling outcome.

        Queries go in one at a time (each waited for) so both runs see
        identical queue states at every decision and are comparable.
        """

        def run(**kwargs):
            engine = make_engine(CPU_FAST, GPU_ONLY, GPU_TEXT, **kwargs)
            with engine:
                for _ in range(12):
                    assert engine.submit(make_query()).ticket.wait(timeout=10.0)
            return engine.report()

        plain = run()
        metered = run(metrics=MetricsRegistry())
        assert [r.target for r in plain.records] == [
            r.target for r in metered.records
        ]
