"""WorkerPool unit tests: queueing, backpressure, drain ordering.

All under a :class:`FakeClock` — timestamps are pure state, and tasks
that must "take time" are gated on real :class:`threading.Event`
objects the test controls, never on sleeps.
"""

import threading

import pytest

from repro.errors import BackpressureError, ServeError
from repro.serve import FakeClock, ServeTask, WorkerPool
from repro.serve.pool import EngineState

from tests.serve.conftest import wait_until


def make_pool(capacity=1, max_queue=None, name="Q_X"):
    state = EngineState(FakeClock())
    return state, WorkerPool(name, state, capacity=capacity, max_queue=max_queue)


def task(query_id, run=lambda: None, on_done=lambda t: None, on_start=None):
    return ServeTask(query_id=query_id, run=run, on_done=on_done, on_start=on_start)


class TestLifecycle:
    def test_start_is_idempotent(self):
        _, pool = make_pool()
        pool.start()
        pool.start()
        pool.stop()

    def test_stop_rejects_new_submissions(self):
        _, pool = make_pool()
        pool.start()
        pool.stop()
        with pytest.raises(ServeError, match="stopping"):
            pool.submit(task(1))

    def test_invalid_capacity_and_queue_bound(self):
        state = EngineState(FakeClock())
        with pytest.raises(ServeError):
            WorkerPool("Q_X", state, capacity=0)
        with pytest.raises(ServeError):
            WorkerPool("Q_X", state, max_queue=0)

    def test_unfinished_task_stamps_raise(self):
        t = task(7)
        with pytest.raises(ServeError):
            t.service_time
        with pytest.raises(ServeError):
            t.waited


class TestDrainOrdering:
    def test_queued_tasks_drain_fifo_on_stop(self):
        # submit everything before starting: the single worker must then
        # drain in exact submission order
        _, pool = make_pool(capacity=1)
        done: list[int] = []
        for i in range(10):
            pool.submit(task(i, on_done=lambda t: done.append(t.query_id)))
        assert pool.queue_length == 10
        pool.start()
        pool.stop(finish_queued=True)
        assert done == list(range(10))
        assert pool.completed == pool.submitted == 10
        assert [qid for qid, _, _ in pool.history] == list(range(10))

    def test_stop_without_finishing_discards_queue(self):
        _, pool = make_pool()
        gate = threading.Event()
        done: list[int] = []
        pool.start()
        # pin the single worker on task 0, then queue four more behind it
        pool.submit(task(0, run=gate.wait, on_done=lambda t: done.append(t.query_id)))
        wait_until(lambda: pool.in_service == 1, what="task 0 in service")
        for i in range(1, 5):
            pool.submit(task(i, on_done=lambda t: done.append(t.query_id)))
        stopper = threading.Thread(target=lambda: pool.stop(finish_queued=False))
        stopper.start()
        wait_until(lambda: pool.queue_length == 0, what="queue discarded")
        gate.set()
        stopper.join(timeout=5.0)
        assert not stopper.is_alive()
        assert done == [0]  # only the in-service task finished
        assert pool.completed == 1
        assert [qid for qid, _, _ in pool.history] == [0]


class TestCapacity:
    def test_in_service_never_exceeds_capacity(self):
        _, pool = make_pool(capacity=3)
        gate = threading.Event()
        pool.start()
        for i in range(6):
            pool.submit(task(i, run=gate.wait))
        wait_until(lambda: pool.in_service == 3, what="3 tasks in service")
        assert pool.queue_length == 3
        assert pool.in_service == 3  # never more than capacity
        gate.set()
        pool.stop(finish_queued=True)
        assert pool.completed == 6

    def test_start_stamp_order_matches_fifo_even_with_many_workers(self):
        _, pool = make_pool(capacity=4)
        gate = threading.Event()
        for i in range(12):
            pool.submit(task(i, run=gate.wait))
        gate.set()
        pool.start()
        pool.stop(finish_queued=True)
        # dequeue + start-stamp is atomic: sorting by start stamp must
        # reproduce submission order (ties broken by stamp equality are
        # impossible to distinguish, so compare sorted stability via
        # arrival order instead)
        starts = {qid: start for qid, start, _ in pool.history}
        arrivals = list(range(12))
        assert sorted(arrivals, key=lambda q: (starts[q], q)) == arrivals


class TestBackpressure:
    def test_nonblocking_submit_raises_when_full(self):
        _, pool = make_pool(capacity=1, max_queue=1)
        gate = threading.Event()
        pool.start()
        pool.submit(task(0, run=gate.wait))
        wait_until(lambda: pool.in_service == 1, what="task 0 in service")
        pool.submit(task(1))  # fills the one queue slot
        with pytest.raises(BackpressureError, match="full"):
            pool.submit(task(2), block=False)
        gate.set()
        pool.stop(finish_queued=True)
        assert pool.submitted == pool.completed == 2

    def test_blocking_submit_times_out(self):
        _, pool = make_pool(capacity=1, max_queue=1)
        gate = threading.Event()
        pool.start()
        pool.submit(task(0, run=gate.wait))
        wait_until(lambda: pool.in_service == 1, what="task 0 in service")
        pool.submit(task(1))
        with pytest.raises(BackpressureError, match="still full"):
            pool.submit(task(2), block=True, timeout=0.02)
        gate.set()
        pool.stop(finish_queued=True)

    def test_blocking_submit_resumes_when_space_frees(self):
        _, pool = make_pool(capacity=1, max_queue=1)
        gate = threading.Event()
        pool.start()
        pool.submit(task(0, run=gate.wait))
        wait_until(lambda: pool.in_service == 1, what="task 0 in service")
        pool.submit(task(1))
        unblocked = []

        def producer():
            pool.submit(task(2))
            unblocked.append(True)

        t = threading.Thread(target=producer)
        t.start()
        assert not unblocked  # producer is backpressured
        gate.set()
        t.join(timeout=5.0)
        assert unblocked
        pool.stop(finish_queued=True)
        assert pool.completed == 3


class TestFailuresAndStamps:
    def test_task_error_is_captured_and_worker_survives(self):
        _, pool = make_pool()

        def boom():
            raise RuntimeError("kernel panic (simulated)")

        failed = task(1, run=boom)
        pool.start()
        pool.submit(failed)
        ok = pool.submit(task(2))
        pool.stop(finish_queued=True)
        assert isinstance(failed.error, RuntimeError)
        assert ok.error is None
        assert pool.failed == 1
        assert pool.completed == 2  # both ran; one failed

    def test_stamps_follow_the_fake_clock(self):
        state, pool = make_pool()
        clock = state.clock
        gate = threading.Event()
        t = task(1, run=gate.wait)
        clock.advance(2.0)  # task arrives at t=2
        pool.start()
        pool.submit(t)
        wait_until(lambda: pool.in_service == 1, what="task in service")
        clock.advance(1.5)  # 1.5s of fake service
        gate.set()
        pool.stop(finish_queued=True)
        assert t.arrived == 2.0
        assert t.started == 2.0  # no queueing: started when submitted
        assert t.finished == 3.5
        assert t.waited == 0.0
        assert t.service_time == 1.5
        assert pool.history == [(1, 2.0, 3.5)]
        assert pool.busy_time == 1.5
        assert pool.utilisation(7.0) == pytest.approx(1.5 / 7.0)
