"""Race tests: many submitters, one engine, books must still balance.

A :class:`threading.Barrier` lines every submitter up behind the same
starting gun so the submission burst genuinely contends on the engine
lock.  Afterwards the submission books, pool counters, and the full
simulation invariant checker must all reconcile — under concurrency
the serving layer may reorder *between* clients, but it must never
lose, duplicate, or mis-account a query.
"""

import threading

import pytest

from repro.serve import FakeClock, ServeTask, WorkerPool
from repro.serve.pool import EngineState
from repro.sim.validate import assert_valid

from tests.serve.conftest import CPU_FAST, GPU_ONLY, GPU_TEXT, make_query

SUBMITTERS = 8
PER_SUBMITTER = 50


class TestPoolRace:
    def test_concurrent_submitters_books_reconcile(self):
        state = EngineState(FakeClock())
        pool = WorkerPool("Q_X", state, capacity=2)
        done_lock = threading.Lock()
        done: list[int] = []

        def on_done(task):
            with done_lock:
                done.append(task.query_id)

        barrier = threading.Barrier(SUBMITTERS)
        errors: list[BaseException] = []

        def submitter(worker_index):
            try:
                barrier.wait(timeout=10.0)
                for j in range(PER_SUBMITTER):
                    qid = worker_index * PER_SUBMITTER + j
                    pool.submit(
                        ServeTask(query_id=qid, run=lambda: None, on_done=on_done)
                    )
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        pool.start()
        threads = [
            threading.Thread(target=submitter, args=(i,))
            for i in range(SUBMITTERS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        pool.stop(finish_queued=True)

        assert not errors
        total = SUBMITTERS * PER_SUBMITTER
        assert pool.submitted == pool.completed == total
        assert pool.failed == 0
        assert pool.queue_length == 0 and pool.in_service == 0
        # every query id ran exactly once, none invented, none lost
        assert sorted(done) == list(range(total))
        assert sorted(qid for qid, _, _ in pool.history) == list(range(total))


class TestEngineRace:
    @pytest.mark.parametrize("clients", [6])
    def test_concurrent_clients_full_audit(self, make_engine, clients):
        per_client = 30
        # mixed archetypes: CPU wins, GPU-only, and translated queries
        # all interleave across the shared scheduler books
        engine = make_engine(CPU_FAST, GPU_ONLY, GPU_TEXT).start()
        barrier = threading.Barrier(clients)
        outcomes_lock = threading.Lock()
        outcomes = []
        errors: list[BaseException] = []

        def client():
            try:
                barrier.wait(timeout=10.0)
                for _ in range(per_client):
                    outcome = engine.submit(make_query())
                    with outcomes_lock:
                        outcomes.append(outcome)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=client) for _ in range(clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        engine.drain()

        assert not errors
        total = clients * per_client
        assert len(outcomes) == total
        assert all(o.accepted for o in outcomes)
        assert all(o.ticket.done for o in outcomes)

        report = engine.report()
        assert report.completed == total and report.rejected == 0
        # submission books vs realised history, per partition
        for name, submissions in report.submissions.items():
            assert len(submissions) == len(report.timelines[name]), name
        # the full invariant audit: dependency order, FIFO/capacity
        # discipline, and conservation must survive the contention
        assert_valid(report, require_drained=True)
