"""Stress: ten thousand queries through a fake-clock engine, fully traced.

The load generator paces against the fake clock, so the "100 second"
offered schedule runs in real milliseconds; the point is volume — the
per-event trace audit and the invariant families must hold at a scale
where any lost wakeup, dropped record, or mis-stamped transition is
overwhelmingly likely to surface.
"""

import itertools

from repro.query.workload import QueryStream, TimedQuery
from repro.sim.obs import TraceCollector
from repro.sim.validate import assert_trace_valid, assert_valid

from tests.serve.conftest import CPU_FAST, GPU_ONLY, GPU_TEXT, make_query

N_QUERIES = 10_000


def test_ten_thousand_queries_fully_audited(make_engine):
    from repro.serve import OpenLoopGenerator

    collector = TraceCollector(sample_series=False)
    engine = make_engine(
        CPU_FAST, GPU_ONLY, GPU_TEXT, collector=collector, max_in_flight=4096
    ).start()
    archetypes = itertools.cycle(["small", "mid", "fine"])
    stream = QueryStream(
        [
            TimedQuery(i * 1e-4, make_query(), next(archetypes))
            for i in range(N_QUERIES)
        ]
    )
    load = OpenLoopGenerator(engine, shed=False).run(stream)
    engine.drain()

    assert load.offered == N_QUERIES
    assert load.accepted == N_QUERIES
    assert load.rejected == 0 and load.shed == 0

    report = engine.report()
    assert report.completed == N_QUERIES
    assert sorted(report.by_class().items()) == [
        ("fine", N_QUERIES // 3),
        ("mid", N_QUERIES // 3),
        ("small", N_QUERIES // 3 + N_QUERIES % 3),
    ]
    # every third query is the translated archetype
    assert sum(1 for r in report.records if r.translated) == N_QUERIES // 3

    assert_valid(report, require_drained=True)
    assert_trace_valid(report, collector)
    # the trace holds a complete lifecycle for all 10k queries:
    # 6 events for plain queries, 9 for the translated third
    per_query = [e for e in collector.events if e.query_id is not None]
    translated = N_QUERIES // 3
    assert len(per_query) == 6 * (N_QUERIES - translated) + 9 * translated
