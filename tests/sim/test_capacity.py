"""Unit tests for the sustainable-rate bisection."""

import pytest

from repro.errors import SimulationError
from repro.paper import paper_system_config, paper_workload
from repro.sim.capacity import max_sustainable_rate


@pytest.fixture(scope="module")
def config():
    return paper_system_config(threads=8, include_32gb=True)


@pytest.fixture(scope="module")
def workload():
    return paper_workload(include_32gb=True, seed=3)


class TestBisection:
    def test_finds_rate_between_bounds(self, config, workload):
        result = max_sustainable_rate(
            config, workload, n_queries=400, lo=5.0, hi=2000.0, iterations=6
        )
        assert 5.0 <= result.rate <= 2000.0
        assert result.report.deadline_hit_rate >= 0.9

    def test_monotone_probe_history(self, config, workload):
        result = max_sustainable_rate(
            config, workload, n_queries=300, lo=5.0, hi=2000.0, iterations=5
        )
        # sustained probes always at lower rates than failed ones
        sustained = [
            p.offered_rate
            for p in result.probes
            if p.report.deadline_hit_rate >= 0.9
        ]
        failed = [
            p.offered_rate
            for p in result.probes
            if p.report.deadline_hit_rate < 0.9
        ]
        if sustained and failed:
            assert max(sustained) < max(failed)

    def test_sustainable_upper_bound_returned_directly(self, config, workload):
        result = max_sustainable_rate(
            config, workload, n_queries=200, lo=1.0, hi=2.0, iterations=3
        )
        assert result.rate == 2.0

    def test_unsustainable_lower_bound_rejected(self, config, workload):
        with pytest.raises(SimulationError, match="unsustainable"):
            max_sustainable_rate(
                config, workload, n_queries=300, lo=100_000.0, hi=200_000.0
            )

    def test_invalid_parameters(self, config, workload):
        with pytest.raises(SimulationError):
            max_sustainable_rate(config, workload, hit_target=0.0)
        with pytest.raises(SimulationError):
            max_sustainable_rate(config, workload, lo=10.0, hi=5.0)


def _fake_report(hits: int, total: int):
    """A synthetic report with an exact deadline-hit rate."""
    from repro.sim.metrics import QueryRecord, SystemReport

    records = [
        QueryRecord(
            query_id=i,
            query_class="small",
            target="Q_CPU",
            submit_time=0.0,
            finish_time=0.1 if i < hits else 1.0,
            deadline=0.5,
            estimated_time=0.1,
            measured_time=0.1,
            translated=False,
        )
        for i in range(total)
    ]
    return SystemReport.from_records(records, horizon=1.0)


class TestRateProbe:
    def test_failed_probe_is_not_sustained(self):
        # regression: `sustained` used to test `report is not None`,
        # which every probe satisfies — failures looked sustained
        from repro.sim.capacity import RateProbe

        probe = RateProbe(offered_rate=10.0, report=_fake_report(1, 2))
        assert probe.report is not None  # the old predicate holds...
        assert not probe.sustained  # ...but the probe clearly failed
        assert probe.hit_rate == 0.5

    def test_target_boundary_is_inclusive(self):
        from repro.sim.capacity import RateProbe

        assert RateProbe(10.0, _fake_report(9, 10), hit_target=0.9).sustained
        assert not RateProbe(10.0, _fake_report(8, 10), hit_target=0.9).sustained

    def test_custom_hit_target(self):
        from repro.sim.capacity import RateProbe

        assert RateProbe(10.0, _fake_report(1, 2), hit_target=0.5).sustained


class TestProbeTelemetry:
    def test_search_probes_carry_correct_verdicts(self, config, workload):
        result = max_sustainable_rate(
            config, workload, n_queries=200, lo=5.0, hi=5000.0, iterations=3
        )
        assert result.probes[0].sustained  # verified lower bound
        assert not result.probes[1].sustained  # verified upper bound
        for p in result.probes:
            assert p.hit_target == 0.9
            assert p.sustained == (p.report.deadline_hit_rate >= 0.9)

    def test_explain_lists_every_probe(self, config, workload):
        result = max_sustainable_rate(
            config, workload, n_queries=200, lo=5.0, hi=5000.0, iterations=3
        )
        text = result.explain()
        lines = text.splitlines()
        assert f"{len(result.probes)} probes" in lines[0]
        assert len(lines) == 1 + len(result.probes)
        assert any("FAILED" in line for line in lines[1:])
        assert any("sustained" in line for line in lines[1:])
