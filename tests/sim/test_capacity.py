"""Unit tests for the sustainable-rate bisection."""

import pytest

from repro.errors import SimulationError
from repro.paper import paper_system_config, paper_workload
from repro.sim.capacity import max_sustainable_rate


@pytest.fixture(scope="module")
def config():
    return paper_system_config(threads=8, include_32gb=True)


@pytest.fixture(scope="module")
def workload():
    return paper_workload(include_32gb=True, seed=3)


class TestBisection:
    def test_finds_rate_between_bounds(self, config, workload):
        result = max_sustainable_rate(
            config, workload, n_queries=400, lo=5.0, hi=2000.0, iterations=6
        )
        assert 5.0 <= result.rate <= 2000.0
        assert result.report.deadline_hit_rate >= 0.9

    def test_monotone_probe_history(self, config, workload):
        result = max_sustainable_rate(
            config, workload, n_queries=300, lo=5.0, hi=2000.0, iterations=5
        )
        # sustained probes always at lower rates than failed ones
        sustained = [
            p.offered_rate
            for p in result.probes
            if p.report.deadline_hit_rate >= 0.9
        ]
        failed = [
            p.offered_rate
            for p in result.probes
            if p.report.deadline_hit_rate < 0.9
        ]
        if sustained and failed:
            assert max(sustained) < max(failed)

    def test_sustainable_upper_bound_returned_directly(self, config, workload):
        result = max_sustainable_rate(
            config, workload, n_queries=200, lo=1.0, hi=2.0, iterations=3
        )
        assert result.rate == 2.0

    def test_unsustainable_lower_bound_rejected(self, config, workload):
        with pytest.raises(SimulationError, match="unsustainable"):
            max_sustainable_rate(
                config, workload, n_queries=300, lo=100_000.0, hi=200_000.0
            )

    def test_invalid_parameters(self, config, workload):
        with pytest.raises(SimulationError):
            max_sustainable_rate(config, workload, hit_target=0.0)
        with pytest.raises(SimulationError):
            max_sustainable_rate(config, workload, lo=10.0, hi=5.0)
