"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import SimulationEngine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = SimulationEngine()
        log = []
        engine.schedule_at(2.0, lambda: log.append("b"))
        engine.schedule_at(1.0, lambda: log.append("a"))
        engine.schedule_at(3.0, lambda: log.append("c"))
        engine.run()
        assert log == ["a", "b", "c"]
        assert engine.now == 3.0

    def test_fifo_tie_break(self):
        engine = SimulationEngine()
        log = []
        for tag in "abc":
            engine.schedule_at(1.0, lambda t=tag: log.append(t))
        engine.run()
        assert log == ["a", "b", "c"]

    def test_schedule_in_past_rejected(self):
        engine = SimulationEngine()
        engine.schedule_at(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(1.0, lambda: None)

    def test_schedule_after(self):
        engine = SimulationEngine()
        times = []
        engine.schedule_after(1.0, lambda: times.append(engine.now))
        engine.run()
        assert times == [1.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            SimulationEngine().schedule_after(-1.0, lambda: None)

    def test_cascading_events(self):
        engine = SimulationEngine()
        log = []

        def first():
            log.append(engine.now)
            engine.schedule_after(2.0, lambda: log.append(engine.now))

        engine.schedule_at(1.0, first)
        engine.run()
        assert log == [1.0, 3.0]


class TestRun:
    def test_run_until(self):
        engine = SimulationEngine()
        log = []
        engine.schedule_at(1.0, lambda: log.append(1))
        engine.schedule_at(10.0, lambda: log.append(10))
        processed = engine.run(until=5.0)
        assert processed == 1
        assert engine.now == 5.0
        assert engine.pending == 1

    def test_run_until_advances_clock_when_idle(self):
        engine = SimulationEngine()
        engine.run(until=7.0)
        assert engine.now == 7.0

    def test_max_events(self):
        engine = SimulationEngine()
        for i in range(10):
            engine.schedule_at(float(i), lambda: None)
        assert engine.run(max_events=4) == 4
        assert engine.pending == 6

    def test_step_on_empty(self):
        assert SimulationEngine().step() is False

    def test_events_processed_counter(self):
        engine = SimulationEngine()
        engine.schedule_at(0.0, lambda: None)
        engine.schedule_at(1.0, lambda: None)
        engine.run()
        assert engine.events_processed == 2

    def test_reentrant_run_rejected(self):
        engine = SimulationEngine()

        def evil():
            engine.run()

        engine.schedule_at(0.0, evil)
        with pytest.raises(SimulationError, match="re-entered"):
            engine.run()
