"""Unit tests for SystemEstimator and noise/bias realisation."""

from dataclasses import replace

import pytest

from repro.core.perfmodel import PAPER_DICT_MODEL
from repro.errors import TranslationError
from repro.paper import (
    PAPER_DICT_LENGTH,
    paper_dict_lengths,
    paper_system_config,
    paper_workload,
)
from repro.query.model import Condition, Query
from repro.sim.system import HybridSystem, SystemEstimator


@pytest.fixture(scope="module")
def config():
    return paper_system_config(threads=8, include_32gb=True)


@pytest.fixture(scope="module")
def estimator(config):
    return SystemEstimator(config)


class TestCPUEstimates:
    def test_small_query_uses_small_cube(self, estimator, config):
        q = Query(conditions=(Condition("d1", 1, lo=0, hi=10),), measures=("m1",))
        est = estimator.estimate(q)
        sc_mb = config.pyramid.subcube_size_mb(q)
        assert est.t_cpu == pytest.approx(config.cpu_model.time(sc_mb))

    def test_customer_query_has_no_cpu_estimate(self, estimator):
        q = Query(
            conditions=(Condition("cust", 1, text_values=("cust__name#0",)),),
            measures=("m1",),
        )
        est = estimator.estimate(q)
        assert est.t_cpu is None

    def test_finer_query_costs_more(self, estimator):
        coarse = Query(conditions=(Condition("d1", 1, lo=0, hi=20),), measures=("m1",))
        fine = Query(conditions=(Condition("d1", 3, lo=0, hi=800),), measures=("m1",))
        assert estimator.estimate(fine).t_cpu > estimator.estimate(coarse).t_cpu


class TestGPUEstimates:
    def test_one_estimate_per_sm_class(self, estimator, config):
        q = Query(conditions=(Condition("d1", 0, lo=0, hi=2),), measures=("m1",))
        est = estimator.estimate(q)
        assert set(est.t_gpu) == set(config.scheme.distinct_sm_counts)

    def test_matches_device_timing(self, estimator, config):
        from repro.query.model import decompose

        q = Query(conditions=(Condition("d2", 2, lo=0, hi=5),), measures=("m1", "m2"))
        est = estimator.estimate(q)
        d = decompose(q, config.device.descriptor.schema.hierarchies)
        for n_sm, t in est.t_gpu.items():
            assert t == pytest.approx(config.device.estimate_time(d, n_sm))


class TestTranslationEstimates:
    def test_eq18_with_paper_lengths(self, estimator):
        q = Query(
            conditions=(Condition("cust", 1, text_values=("cust__name#0",)),),
            measures=("m1",),
        )
        est = estimator.estimate(q)
        assert est.t_trans == pytest.approx(
            PAPER_DICT_MODEL.time(PAPER_DICT_LENGTH)
        )

    def test_numeric_query_needs_no_translation(self, estimator):
        q = Query(conditions=(Condition("d1", 1, lo=0, hi=5),), measures=("m1",))
        assert estimator.estimate(q).t_trans == 0.0

    def test_workers_do_not_change_single_job_estimate(self, config):
        """Parallel workers add translation *throughput*, not speed.

        One translation still takes the full eq. 18 time regardless of
        worker count — extra workers become extra service units on the
        translation Server and a faster-draining Q_TRANS backlog, never
        a shorter single-job service time.
        """
        q = Query(
            conditions=(Condition("cust", 1, text_values=("cust__name#0",)),),
            measures=("m1",),
        )
        base = SystemEstimator(config).estimate(q).t_trans
        doubled = SystemEstimator(
            replace(config, translation_workers=2)
        ).estimate(q).t_trans
        assert base > 0.0
        assert doubled == pytest.approx(base)

    def test_unknown_dictionary_column(self, config):
        partial = dict(paper_dict_lengths())
        del partial["cust__name"]
        estimator = SystemEstimator(replace(config, dict_lengths=partial))
        q = Query(
            conditions=(Condition("cust", 1, text_values=("x",)),), measures=("m1",)
        )
        with pytest.raises(TranslationError, match="cust__name"):
            estimator.estimate(q)


class TestNoiseBias:
    def test_bias_shifts_measured_times(self, config):
        biased = replace(config, noise_bias=1.5)
        workload = paper_workload(include_32gb=True, seed=7)
        stream = workload.generate(200)
        report = HybridSystem(biased).run(stream)
        ratio = sum(r.measured_time for r in report.records) / sum(
            r.estimated_time for r in report.records
        )
        assert ratio == pytest.approx(1.5, rel=1e-6)

    def test_bias_with_jitter_mean(self, config):
        noisy = replace(config, noise_bias=1.3, noise_sigma=0.2, seed=11)
        workload = paper_workload(include_32gb=True, seed=7)
        report = HybridSystem(noisy).run(workload.generate(500))
        ratio = sum(r.measured_time for r in report.records) / sum(
            r.estimated_time for r in report.records
        )
        assert 1.15 < ratio < 1.45

    def test_invalid_bias(self, config):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            replace(config, noise_bias=0.0)
