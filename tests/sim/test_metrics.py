"""Unit tests for query records and system reports."""

import numpy as np

from repro.sim.metrics import QueryRecord, SystemReport


def rec(qid, submit, finish, deadline=None, target="Q_CPU", cls="c", translated=False):
    return QueryRecord(
        query_id=qid,
        query_class=cls,
        target=target,
        submit_time=submit,
        finish_time=finish,
        deadline=deadline if deadline is not None else submit + 0.5,
        estimated_time=0.1,
        measured_time=0.12,
        translated=translated,
    )


class TestQueryRecord:
    def test_response_time(self):
        assert rec(1, 1.0, 3.0).response_time == 2.0

    def test_deadline_check(self):
        assert rec(1, 0.0, 0.4).met_deadline
        assert not rec(1, 0.0, 0.6).met_deadline

    def test_estimation_error(self):
        assert np.isclose(rec(1, 0, 1).estimation_error, 0.02)


class TestSystemReport:
    def test_empty(self):
        report = SystemReport.from_records([])
        assert report.completed == 0
        assert report.queries_per_second == 0.0
        assert report.deadline_hit_rate == 0.0
        assert report.mean_response_time == 0.0

    def test_throughput(self):
        records = [rec(i, 0.0, (i + 1) * 0.1) for i in range(10)]
        report = SystemReport.from_records(records)
        assert np.isclose(report.makespan, 1.0)
        assert np.isclose(report.queries_per_second, 10.0)

    def test_makespan_uses_earliest_submit(self):
        records = [rec(1, 1.0, 2.0), rec(2, 0.5, 3.0)]
        report = SystemReport.from_records(records)
        assert np.isclose(report.makespan, 2.5)

    def test_deadline_counts(self):
        records = [rec(1, 0.0, 0.1), rec(2, 0.0, 0.9), rec(3, 0.0, 0.2)]
        report = SystemReport.from_records(records)
        assert report.met_deadline == 2
        assert report.missed_deadline == 1
        assert np.isclose(report.deadline_hit_rate, 2 / 3)

    def test_by_target(self):
        records = [
            rec(1, 0, 1, target="Q_CPU"),
            rec(2, 0, 1, target="Q_G1"),
            rec(3, 0, 2, target="Q_G1"),
        ]
        report = SystemReport.from_records(records)
        assert report.by_target() == {"Q_CPU": 1, "Q_G1": 2}

    def test_target_rate_prefix(self):
        records = [
            rec(1, 0, 1, target="Q_G1"),
            rec(2, 0, 2, target="Q_G2"),
            rec(3, 0, 2, target="Q_CPU"),
        ]
        report = SystemReport.from_records(records)
        assert np.isclose(report.target_rate("Q_G"), 1.0)

    def test_by_class(self):
        records = [rec(1, 0, 1, cls="a"), rec(2, 0, 1, cls="b"), rec(3, 0, 1, cls="a")]
        report = SystemReport.from_records(records)
        assert report.by_class() == {"a": 2, "b": 1}

    def test_translated_count(self):
        records = [rec(1, 0, 1, translated=True), rec(2, 0, 1)]
        assert SystemReport.from_records(records).translated_count == 1

    def test_mean_response(self):
        records = [rec(1, 0.0, 1.0), rec(2, 0.0, 3.0)]
        assert SystemReport.from_records(records).mean_response_time == 2.0

    def test_records_sorted_by_finish(self):
        records = [rec(1, 0, 5.0), rec(2, 0, 1.0)]
        report = SystemReport.from_records(records)
        assert [r.query_id for r in report.records] == [2, 1]

    def test_summary_renders(self):
        records = [rec(1, 0, 1, target="Q_CPU")]
        report = SystemReport.from_records(records, utilisations={"Q_CPU": 0.5})
        text = report.summary()
        assert "throughput" in text
        assert "Q_CPU" in text
