"""Unit tests for multi-capacity servers and parallel translation."""

from dataclasses import replace

import pytest

from repro.errors import SimulationError
from repro.sim.engine import SimulationEngine
from repro.sim.resources import Job, Server


def make_job(qid, service, log):
    return Job(
        query_id=qid,
        service_time=service,
        on_complete=lambda t, job: log.append((qid, t)),
    )


class TestMultiCapacityServer:
    def test_two_units_serve_concurrently(self):
        engine = SimulationEngine()
        server = Server(engine, "S", capacity=2)
        log = []
        server.submit(make_job(1, 1.0, log))
        server.submit(make_job(2, 1.0, log))
        engine.run()
        # both finish at t=1 (parallel), not t=1 and t=2
        assert [t for _, t in log] == [1.0, 1.0]

    def test_third_job_waits(self):
        engine = SimulationEngine()
        server = Server(engine, "S", capacity=2)
        log = []
        for i in range(3):
            server.submit(make_job(i, 1.0, log))
        engine.run()
        assert sorted(t for _, t in log) == [1.0, 1.0, 2.0]

    def test_makespan_scales_with_capacity(self):
        def makespan(capacity, n=12, service=0.5):
            engine = SimulationEngine()
            server = Server(engine, "S", capacity=capacity)
            log = []
            for i in range(n):
                server.submit(make_job(i, service, log))
            engine.run()
            return max(t for _, t in log)

        assert makespan(1) == pytest.approx(6.0)
        assert makespan(3) == pytest.approx(2.0)
        assert makespan(12) == pytest.approx(0.5)

    def test_fifo_start_order_preserved(self):
        engine = SimulationEngine()
        server = Server(engine, "S", capacity=2)
        jobs = []
        for i, s in enumerate([2.0, 2.0, 0.1, 0.1]):
            job = Job(query_id=i, service_time=s, on_complete=lambda t, j: None)
            jobs.append(job)
            server.submit(job)
        engine.run()
        # jobs 2 and 3 start only after 0 or 1 finishes at t=2
        assert jobs[2].started_at == pytest.approx(2.0)
        assert jobs[3].started_at == pytest.approx(2.0)

    def test_utilisation_normalised_by_capacity(self):
        engine = SimulationEngine()
        server = Server(engine, "S", capacity=2)
        log = []
        server.submit(make_job(1, 1.0, log))
        server.submit(make_job(2, 1.0, log))
        engine.run(until=2.0)
        # 2 unit-seconds of work over 2 units x 2 s horizon = 0.5
        assert server.utilisation(2.0) == pytest.approx(0.5)

    def test_in_service_counter(self):
        engine = SimulationEngine()
        server = Server(engine, "S", capacity=3)
        for i in range(2):
            server.submit(make_job(i, 1.0, []))
        assert server.in_service == 2
        engine.run()
        assert server.in_service == 0

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            Server(SimulationEngine(), "S", capacity=0)


class TestParallelTranslationSystem:
    """The future-work ablation: parallel translation removes the 7%."""

    @pytest.fixture(scope="class")
    def rates(self):
        from repro.paper import gpu_only_config, paper_workload
        from repro.sim import HybridSystem

        workload = paper_workload(include_32gb=True, text_prob=1.0, seed=42)
        stream = workload.generate(1200)
        out = {}
        for workers in (1, 2):
            config = replace(gpu_only_config(), translation_workers=workers)
            out[workers] = HybridSystem(config).run(stream).queries_per_second
        config = gpu_only_config()
        no_trans = paper_workload(
            include_32gb=True, text_prob=1.0, text_as_codes=True, seed=42
        )
        out["no_translation"] = (
            HybridSystem(config).run(no_trans.generate(1200)).queries_per_second
        )
        return out

    def test_one_worker_is_translation_bound(self, rates):
        assert rates[1] < rates["no_translation"]

    def test_two_workers_recover_gpu_rate(self, rates):
        # doubling translation capacity lifts the bottleneck: the rate
        # comes within 2% of the no-translation ceiling
        assert rates[2] == pytest.approx(rates["no_translation"], rel=0.02)

    def test_workers_validation(self):
        from repro.paper import gpu_only_config

        with pytest.raises(SimulationError):
            replace(gpu_only_config(), translation_workers=0)
