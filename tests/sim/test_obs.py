"""Tests for the observability layer (repro.sim.obs).

Acceptance criteria of the tracing PR: (a) every completed query's
event stream is well-ordered, (b) trace events reconcile with the
queues' Submission books via repro.sim.validate, (c) the SystemReport
is identical with tracing enabled vs disabled.
"""

import functools
import json

import pytest

from repro.core.admission import AdmissionControlScheduler
from repro.core.partitions import PartitionQueue, QueueKind
from repro.errors import ReproError, SimulationError
from repro.paper import TABLE3_TEXT_PROB, paper_system_config, paper_workload
from repro.query.workload import ArrivalProcess
from repro.report import render_dashboard, sparkline
from repro.sim import (
    HybridSystem,
    TraceCollector,
    assert_trace_valid,
    validate_trace,
)
from repro.sim.obs import EVENT_KINDS, TraceEvent, classify_branch


@pytest.fixture(scope="module")
def traced_run():
    """One Table-3-preset run, traced, plus the identical untraced run."""
    config = paper_system_config(threads=8, include_32gb=True)
    workload = paper_workload(include_32gb=True, text_prob=TABLE3_TEXT_PROB, seed=5)
    stream = workload.generate(250, ArrivalProcess("uniform", rate=150.0))
    collector = TraceCollector()
    report = HybridSystem(config).run(stream, collector=collector)
    untraced = HybridSystem(config).run(stream)
    return report, collector, untraced


class TestLifecycleOrdering:
    def test_untranslated_stream_well_ordered(self, traced_run):
        report, collector, _ = traced_run
        record = next(r for r in report.records if not r.translated)
        assert collector.kinds_for(record.query_id) == (
            "arrival",
            "estimated",
            "decision",
            "service_start",
            "service_finish",
            "feedback",
        )

    def test_translated_stream_includes_translation_stage(self, traced_run):
        report, collector, _ = traced_run
        record = next(r for r in report.records if r.translated)
        assert collector.kinds_for(record.query_id) == (
            "arrival",
            "estimated",
            "decision",
            "translation_start",
            "translation_finish",
            "feedback",
            "service_start",
            "service_finish",
            "feedback",
        )

    def test_every_completed_query_well_ordered(self, traced_run):
        # acceptance (a): validate_trace checks order + timestamps for
        # every completed record
        report, collector, _ = traced_run
        result = validate_trace(report, collector)
        assert result.ok, result.summary()
        assert result.checked == ("trace",)

    def test_event_times_non_decreasing_per_query(self, traced_run):
        report, collector, _ = traced_run
        for record in report.records[:50]:
            times = [e.time for e in collector.events_for(record.query_id)]
            assert times == sorted(times)

    def test_decision_carries_candidates_and_branch(self, traced_run):
        report, collector, _ = traced_run
        decisions = [e for e in collector.events if e.kind == "decision"]
        assert len(decisions) == len(report.records)
        for event in decisions[:20]:
            names = [name for name, _ in event.data["candidates"]]
            # Table-3 preset: CPU + six GPU partitions when the cube
            # reaches the query, six GPU partitions otherwise
            assert set(names) <= {
                "Q_CPU", "Q_G1", "Q_G2", "Q_G3", "Q_G4", "Q_G5", "Q_G6"
            }
            assert event.data["branch"].startswith("step")
            assert event.data["target"] in names

    def test_feedback_events_carry_bias_ratio(self, traced_run):
        _, collector, _ = traced_run
        feedback = [e for e in collector.events if e.kind == "feedback"]
        assert feedback
        for event in feedback[:20]:
            assert event.data["bias_ratio"] == pytest.approx(1.0)  # exact models
            assert event.data["applied"] == pytest.approx(0.0)


class TestBookReconciliation:
    def test_trace_reconciles_with_submission_books(self, traced_run):
        # acceptance (b)
        report, collector, _ = traced_run
        assert assert_trace_valid(report, collector) is report

    def test_validation_fails_on_dropped_decision(self, traced_run):
        report, collector, _ = traced_run
        corrupted = TraceCollector()
        dropped = next(e for e in collector.events if e.kind == "decision")
        corrupted.events = [e for e in collector.events if e is not dropped]
        result = validate_trace(report, corrupted)
        assert not result.ok
        assert any(v.invariant == "trace" for v in result.violations)

    def test_validation_fails_on_tampered_estimate(self, traced_run):
        report, collector, _ = traced_run
        corrupted = TraceCollector()
        corrupted.events = list(collector.events)
        i = next(
            idx for idx, e in enumerate(corrupted.events) if e.kind == "decision"
        )
        event = corrupted.events[i]
        corrupted.events[i] = TraceEvent(
            kind="decision",
            time=event.time,
            query_id=event.query_id,
            data={**event.data, "estimated_time": event.data["estimated_time"] + 1.0},
        )
        result = validate_trace(report, corrupted)
        assert not result.ok
        assert "disagrees with its submission" in result.summary()

    def test_validation_fails_on_phantom_rejection(self, traced_run):
        report, collector, _ = traced_run
        corrupted = TraceCollector()
        corrupted.events = list(collector.events)
        corrupted.emit("rejected", report.horizon, 10**6, reason="phantom")
        result = validate_trace(report, corrupted)
        assert not result.ok
        assert "rejected" in result.summary()


class TestDecisionIdentical:
    def test_report_identical_with_tracing_on_and_off(self, traced_run):
        # acceptance (c): tracing must not perturb the run
        report, _, untraced = traced_run
        assert report == untraced
        assert repr(report) == repr(untraced)
        assert report.summary() == untraced.summary()

    def test_hooks_default_to_none(self):
        from repro.core.scheduler import HybridScheduler
        from repro.sim.engine import SimulationEngine
        from repro.sim.resources import Server

        engine = SimulationEngine()
        assert engine.observer is None
        server = Server(engine, "S")
        assert server.on_start is None and server.on_finish is None
        cpu_q = PartitionQueue("Q_CPU", QueueKind.CPU)
        trans_q = PartitionQueue("Q_TRANS", QueueKind.TRANSLATION)
        gpu_q = PartitionQueue("Q_G1", QueueKind.GPU, n_sm=1)

        class _Est:
            def estimate(self, q):
                raise NotImplementedError

        sched = HybridScheduler(cpu_q, [gpu_q], trans_q, _Est(), 0.5)
        assert sched.observer is None

    def test_collector_is_single_run(self, traced_run):
        _, collector, _ = traced_run
        config = paper_system_config(threads=8, include_32gb=True)
        workload = paper_workload(include_32gb=True, seed=6)
        with pytest.raises(SimulationError, match="single-run"):
            HybridSystem(config).run(
                workload.generate(5), collector=collector
            )


class TestPartitionTelemetry:
    def test_series_cover_all_partitions(self, traced_run):
        report, collector, _ = traced_run
        assert set(collector.series) == set(report.utilisations)

    def test_samples_monotone_and_sane(self, traced_run):
        _, collector, _ = traced_run
        for name, samples in collector.series.items():
            times = [s.time for s in samples]
            assert times == sorted(times)
            for s in samples:
                assert s.queue == name
                assert s.backlog >= 0.0
                assert s.outstanding >= 0
                assert s.queue_depth >= 0
                assert s.in_service >= 0

    def test_booked_vs_realised_signal_present(self, traced_run):
        # under 150 q/s the slow GPU partitions queue up: both the
        # booked T_Q backlog and the realised depth must register it
        _, collector, _ = traced_run
        samples = collector.partition_series("Q_G1")
        assert max(s.backlog for s in samples) > 0.0
        assert max(s.queue_depth + s.in_service for s in samples) > 1

    def test_sample_series_disabled(self):
        config = paper_system_config(threads=8, include_32gb=True)
        workload = paper_workload(include_32gb=True, seed=6)
        collector = TraceCollector(sample_series=False)
        HybridSystem(config).run(workload.generate(20), collector=collector)
        assert collector.events
        assert collector.series == {}


class TestRejections:
    def test_rejected_queries_emit_rejected_events(self):
        factory = functools.partial(
            AdmissionControlScheduler, lateness_factor=0.0
        )
        config = paper_system_config(
            threads=8, include_32gb=True, scheduler_factory=factory
        )
        workload = paper_workload(
            include_32gb=True, text_prob=TABLE3_TEXT_PROB, seed=7
        )
        stream = workload.generate(300, ArrivalProcess("uniform", rate=2000.0))
        collector = TraceCollector()
        report = HybridSystem(config).run(stream, collector=collector)
        assert report.rejected > 0
        rejected = [e for e in collector.events if e.kind == "rejected"]
        assert len(rejected) == report.rejected
        assert validate_trace(report, collector).ok
        # a rejected query's stream stops at the rejection
        kinds = collector.kinds_for(rejected[0].query_id)
        assert kinds == ("arrival", "estimated", "rejected")


class TestBranchClassification:
    def _queues(self):
        cpu = PartitionQueue("Q_CPU", QueueKind.CPU)
        gpu = PartitionQueue("Q_G1", QueueKind.GPU, n_sm=1)
        return cpu, gpu

    def test_step5_branches(self):
        cpu, gpu = self._queues()
        candidates = [(cpu, 0.1), (gpu, 0.2)]
        assert classify_branch(candidates, 0.5, cpu) == "step5-cpu"
        assert classify_branch(candidates, 0.5, gpu) == "step5-gpu"

    def test_boundary_is_inclusive(self):
        cpu, gpu = self._queues()
        assert classify_branch([(cpu, 0.5), (gpu, 9.0)], 0.5, cpu) == "step5-cpu"

    def test_step6_when_nobody_makes_it(self):
        cpu, gpu = self._queues()
        candidates = [(cpu, 1.0), (gpu, 2.0)]
        assert classify_branch(candidates, 0.5, cpu) == "step6-min-lateness"

    def test_outside_pbd_flags_deadline_blind_placement(self):
        cpu, gpu = self._queues()
        candidates = [(cpu, 0.1), (gpu, 2.0)]
        assert classify_branch(candidates, 0.5, gpu) == "step5-outside-pbd"

    def test_paper_scheduler_never_places_outside_pbd(self, traced_run):
        _, collector, _ = traced_run
        branches = {
            e.data["branch"] for e in collector.events if e.kind == "decision"
        }
        assert "step5-outside-pbd" not in branches
        assert branches & {"step5-cpu", "step5-gpu"}

    def test_unknown_event_kind_rejected(self):
        with pytest.raises(SimulationError, match="unknown trace event"):
            TraceEvent(kind="teleport", time=0.0, query_id=1)
        assert "decision" in EVENT_KINDS


class TestExports:
    def test_jsonl_roundtrip(self, traced_run, tmp_path):
        _, collector, _ = traced_run
        path = tmp_path / "trace.jsonl"
        n = collector.write_jsonl(path)
        lines = path.read_text().splitlines()
        assert len(lines) == n
        records = [json.loads(line) for line in lines]
        events = [r for r in records if r["record"] == "event"]
        samples = [r for r in records if r["record"] == "sample"]
        assert len(events) == len(collector.events)
        assert len(samples) == sum(len(s) for s in collector.series.values())
        # events keep emission order and are self-describing
        assert events[0]["kind"] == "arrival"
        kinds = {e["kind"] for e in events}
        assert kinds <= set(EVENT_KINDS)
        assert {s["queue"] for s in samples} == set(collector.series)

    def test_dashboard_renders(self, traced_run):
        report, collector, _ = traced_run
        dashboard = render_dashboard(report, collector, width=40)
        assert "booked T_Q backlog" in dashboard
        assert "realised jobs" in dashboard
        for name in report.utilisations:
            assert name in dashboard

    def test_dashboard_needs_telemetry(self, traced_run):
        report, _, _ = traced_run
        with pytest.raises(ReproError, match="telemetry"):
            render_dashboard(report, TraceCollector(sample_series=False))

    def test_sparkline_basics(self):
        assert sparkline([]) == ""
        assert sparkline([0.0, 0.0]) == "  "
        line = sparkline([0.0, 0.5, 1.0])
        assert line[0] == " " and line[2] == "#"
        # tiny non-zero values remain visible
        assert sparkline([0.001, 1.0])[0] != " "


class TestCalibrationSurface:
    def test_biased_models_reported_on_system_report(self):
        config = paper_system_config(threads=8, include_32gb=True)
        from dataclasses import replace

        config = replace(config, noise_bias=1.5)
        workload = paper_workload(include_32gb=True, seed=8)
        report = HybridSystem(config).run(workload.generate(60))
        assert report.feedback_stats
        assert report.overall_bias_ratio == pytest.approx(1.5)
        for name, stats in report.feedback_stats.items():
            assert stats.bias_ratio == pytest.approx(1.5)
            assert report.bias_ratio(name) == pytest.approx(1.5)

    def test_unseen_queue_bias_is_nan(self):
        import math

        from repro.sim.metrics import SystemReport

        report = SystemReport.from_records([])
        assert math.isnan(report.overall_bias_ratio)
        assert math.isnan(report.bias_ratio("Q_CPU"))
