"""Unit tests for the FIFO servers."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import SimulationEngine
from repro.sim.resources import Job, Server


def make_job(qid, service, log):
    return Job(
        query_id=qid,
        service_time=service,
        on_complete=lambda t, job: log.append((qid, t)),
    )


class TestFIFO:
    def test_sequential_service(self):
        engine = SimulationEngine()
        server = Server(engine, "S")
        log = []
        server.submit(make_job(1, 1.0, log))
        server.submit(make_job(2, 2.0, log))
        engine.run()
        assert log == [(1, 1.0), (2, 3.0)]

    def test_order_preserved(self):
        engine = SimulationEngine()
        server = Server(engine, "S")
        log = []
        for i in range(5):
            server.submit(make_job(i, 0.5, log))
        engine.run()
        assert [qid for qid, _ in log] == [0, 1, 2, 3, 4]

    def test_idle_gap(self):
        engine = SimulationEngine()
        server = Server(engine, "S")
        log = []
        server.submit(make_job(1, 1.0, log))
        engine.schedule_at(5.0, lambda: server.submit(make_job(2, 1.0, log)))
        engine.run()
        assert log == [(1, 1.0), (2, 6.0)]

    def test_zero_service_time(self):
        engine = SimulationEngine()
        server = Server(engine, "S")
        log = []
        server.submit(make_job(1, 0.0, log))
        engine.run()
        assert log == [(1, 0.0)]

    def test_negative_service_rejected(self):
        engine = SimulationEngine()
        server = Server(engine, "S")
        with pytest.raises(SimulationError):
            server.submit(make_job(1, -1.0, []))


class TestStatistics:
    def test_busy_time(self):
        engine = SimulationEngine()
        server = Server(engine, "S")
        log = []
        server.submit(make_job(1, 1.5, log))
        server.submit(make_job(2, 0.5, log))
        engine.run()
        assert server.busy_time == 2.0
        assert server.completed == 2

    def test_utilisation(self):
        engine = SimulationEngine()
        server = Server(engine, "S")
        server.submit(make_job(1, 1.0, []))
        engine.run(until=4.0)
        assert server.utilisation(4.0) == 0.25
        assert server.utilisation(0.0) == 0.0

    def test_waiting_time(self):
        engine = SimulationEngine()
        server = Server(engine, "S")
        log = []
        server.submit(make_job(1, 2.0, log))
        server.submit(make_job(2, 1.0, log))
        engine.run()
        assert server.total_wait == 2.0  # job 2 waited 2 s

    def test_queue_length_visible(self):
        engine = SimulationEngine()
        server = Server(engine, "S")
        server.submit(make_job(1, 1.0, []))
        server.submit(make_job(2, 1.0, []))
        assert server.busy
        assert server.queue_length == 1
        engine.run()
        assert not server.busy
        assert server.queue_length == 0


class TestCallbackChaining:
    def test_completion_can_submit_to_other_server(self):
        """The translation -> GPU pipeline pattern."""
        engine = SimulationEngine()
        trans = Server(engine, "T")
        gpu = Server(engine, "G")
        done = []

        def after_translation(t, job):
            gpu.submit(
                Job(
                    query_id=job.query_id,
                    service_time=0.5,
                    on_complete=lambda t2, j2: done.append(t2),
                )
            )

        trans.submit(Job(query_id=1, service_time=0.25, on_complete=after_translation))
        engine.run()
        assert done == [0.75]

    def test_completion_can_resubmit_same_server(self):
        engine = SimulationEngine()
        server = Server(engine, "S")
        finishes = []

        def resubmit_once(t, job):
            finishes.append(t)
            if len(finishes) == 1:
                server.submit(
                    Job(query_id=2, service_time=1.0, on_complete=resubmit_once)
                )

        server.submit(Job(query_id=1, service_time=1.0, on_complete=resubmit_once))
        engine.run()
        assert finishes == [1.0, 2.0]


class TestUtilisationInFlight:
    """Truncated runs: jobs still in service must count toward utilisation."""

    def test_in_flight_job_counts_up_to_horizon(self):
        engine = SimulationEngine()
        server = Server(engine, "S")
        server.submit(make_job(1, 2.0, []))
        # run truncated before the job finishes: busy_time is still 0,
        # but the server has been busy for the whole first second
        assert server.busy_time == 0.0
        assert server.utilisation(1.0) == pytest.approx(1.0)

    def test_in_flight_contribution_capped_at_service_time(self):
        engine = SimulationEngine()
        server = Server(engine, "S")
        server.submit(make_job(1, 0.5, []))
        # horizon far past the job's own service: it contributes 0.5 at most
        assert server.utilisation(2.0) == pytest.approx(0.25)

    def test_partial_units_on_multicapacity_server(self):
        engine = SimulationEngine()
        server = Server(engine, "S", capacity=2)
        server.submit(make_job(1, 2.0, []))
        # one of two units busy over the horizon
        assert server.utilisation(1.0) == pytest.approx(0.5)

    def test_completed_jobs_unchanged(self):
        engine = SimulationEngine()
        server = Server(engine, "S")
        log = []
        server.submit(make_job(1, 1.0, log))
        engine.run()
        assert server.utilisation(2.0) == pytest.approx(0.5)
