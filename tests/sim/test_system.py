"""Integration-style unit tests for the full HybridSystem."""

import numpy as np
import pytest

from repro.core.baselines import CPUOnlyScheduler, GPUOnlyScheduler
from repro.errors import SimulationError
from repro.gpu.device import SimulatedGPU
from repro.gpu.partitioning import paper_partition_scheme
from repro.gpu.timing import TESLA_C2070_TIMING
from repro.query.workload import ArrivalProcess, QueryClass, WorkloadSpec
from repro.sim.system import HybridSystem, SystemConfig
from repro.core.perfmodel import XEON_X5667_8T
from repro.units import GB


@pytest.fixture(scope="module")
def mat_config(fact_table, pyramid, translator):
    device = SimulatedGPU(global_memory_bytes=GB, timing=TESLA_C2070_TIMING)
    device.load_table(fact_table)
    return SystemConfig(
        cpu_model=XEON_X5667_8T.with_overhead(0.002),
        pyramid=pyramid,
        device=device,
        scheme=paper_partition_scheme(),
        translation_service=translator,
        time_constraint=0.5,
    )


@pytest.fixture(scope="module")
def workload(small_schema, dataset):
    return WorkloadSpec(
        small_schema.dimensions,
        [
            QueryClass("small", 0.6, resolution=1, coverage=(0.1, 0.5)),
            QueryClass(
                "mid",
                0.25,
                resolution=2,
                dims_constrained=(1, 2),
                coverage=(0.5, 1.0),
                text_prob=0.5,
            ),
            QueryClass("fine", 0.15, resolution=3, coverage=(0.2, 0.8)),
        ],
        measures=("sales_price",),
        text_levels=list(small_schema.text_levels),
        vocabularies=dataset.vocabularies,
        seed=31,
    )


class TestMaterialisedRun:
    def test_all_queries_complete(self, mat_config, workload):
        stream = workload.generate(200)
        report = HybridSystem(mat_config).run(stream)
        assert report.completed == 200

    def test_answers_match_reference(self, mat_config, workload, fact_table, translator):
        stream = workload.generate(150)
        report = HybridSystem(mat_config).run(stream)
        by_id = {e.query.query_id: e.query for e in stream}
        for record in report.records:
            q = by_id[record.query_id]
            if q.needs_translation:
                q = translator.translate(q).query
            expected = fact_table.execute(q).value()
            assert np.isclose(record.answer, expected, equal_nan=True), record

    def test_fine_queries_go_to_gpu(self, mat_config, workload):
        # resolution-3 queries exceed the pyramid (levels 0-2): GPU only
        stream = workload.generate(300)
        report = HybridSystem(mat_config).run(stream)
        for record in report.records:
            if record.query_class == "fine":
                assert record.target.startswith("Q_G"), record

    def test_text_queries_pass_translation(self, mat_config, workload):
        stream = workload.generate(300)
        report = HybridSystem(mat_config).run(stream)
        translated = [r for r in report.records if r.translated]
        assert translated, "workload should produce text queries"
        assert all(r.target.startswith("Q_G") for r in translated)

    def test_deterministic_given_seed(self, mat_config, workload):
        stream = workload.generate(100)
        r1 = HybridSystem(mat_config).run(stream)
        r2 = HybridSystem(mat_config).run(stream)
        assert r1.queries_per_second == r2.queries_per_second
        assert [x.finish_time for x in r1.records] == [
            x.finish_time for x in r2.records
        ]

    def test_utilisations_reported(self, mat_config, workload):
        report = HybridSystem(mat_config).run(workload.generate(100))
        assert "Q_CPU" in report.utilisations
        assert all(0.0 <= u <= 1.0 for u in report.utilisations.values())


class TestSchedulerVariants:
    def test_cpu_only(self, mat_config, small_schema):
        wl = WorkloadSpec(
            small_schema.dimensions,
            [QueryClass("small", 1.0, resolution=1)],
            measures=("sales_price",),
        )
        cfg = SystemConfig(
            **{**mat_config.__dict__, "scheduler_factory": CPUOnlyScheduler}
        )
        report = HybridSystem(cfg).run(wl.generate(100))
        assert set(report.by_target()) == {"Q_CPU"}

    def test_gpu_only(self, mat_config, workload):
        cfg = SystemConfig(
            **{**mat_config.__dict__, "scheduler_factory": GPUOnlyScheduler}
        )
        report = HybridSystem(cfg).run(workload.generate(100))
        assert all(t.startswith("Q_G") for t in report.by_target())


class TestNoiseAndFeedback:
    def test_noise_changes_realised_times(self, mat_config, workload):
        noisy = SystemConfig(**{**mat_config.__dict__, "noise_sigma": 0.3})
        stream = workload.generate(100)
        r_clean = HybridSystem(mat_config).run(stream)
        r_noisy = HybridSystem(noisy).run(stream)
        clean_err = sum(abs(r.estimation_error) for r in r_clean.records)
        noisy_err = sum(abs(r.estimation_error) for r in r_noisy.records)
        assert clean_err < 1e-12
        assert noisy_err > 0

    def test_noise_mean_preserving(self, mat_config, workload):
        noisy = SystemConfig(
            **{**mat_config.__dict__, "noise_sigma": 0.2, "seed": 5}
        )
        stream = workload.generate(300)
        report = HybridSystem(noisy).run(stream)
        measured = sum(r.measured_time for r in report.records)
        estimated = sum(r.estimated_time for r in report.records)
        assert 0.85 < measured / estimated < 1.15

    def test_feedback_off_still_completes(self, mat_config, workload):
        cfg = SystemConfig(
            **{**mat_config.__dict__, "feedback_gain": 0.0, "noise_sigma": 0.2}
        )
        report = HybridSystem(cfg).run(workload.generate(100))
        assert report.completed == 100


class TestArrivals:
    def test_open_arrivals_spread_completions(self, mat_config, workload):
        stream = workload.generate(100, ArrivalProcess("uniform", rate=50.0))
        report = HybridSystem(mat_config).run(stream)
        assert report.completed == 100
        assert report.makespan >= 99 / 50.0

    def test_closed_arrivals_saturate(self, mat_config, workload):
        stream = workload.generate(100)
        report = HybridSystem(mat_config).run(stream)
        # closed-loop throughput should exceed the 50/s open-loop rate
        assert report.queries_per_second > 50


class TestValidation:
    def test_bad_time_constraint(self, mat_config):
        with pytest.raises(SimulationError):
            SystemConfig(**{**mat_config.__dict__, "time_constraint": 0.0})

    def test_bad_noise(self, mat_config):
        with pytest.raises(SimulationError):
            SystemConfig(**{**mat_config.__dict__, "noise_sigma": -0.1})


class TestTranslationWiring:
    def test_translation_workers_reach_the_server(self):
        # regression: run() used to build every Server with the default
        # capacity, silently ignoring SystemConfig.translation_workers
        from dataclasses import replace

        from repro.paper import paper_system_config, paper_workload

        config = replace(
            paper_system_config(include_32gb=False), translation_workers=3
        )
        stream = paper_workload(text_prob=0.5, seed=3).generate(40)
        report = HybridSystem(config).run(stream)
        assert report.capacities["Q_TRANS"] == 3
        assert all(
            c == 1 for name, c in report.capacities.items() if name != "Q_TRANS"
        )

    def test_materialised_text_query_without_service_fails_fast(
        self, mat_config, workload
    ):
        from repro.errors import TranslationError

        cfg = SystemConfig(**{**mat_config.__dict__, "translation_service": None})
        stream = workload.generate(50)
        assert any(e.query.needs_translation for e in stream)
        with pytest.raises(TranslationError, match="no translation_service"):
            HybridSystem(cfg).run(stream)

    def test_materialised_text_free_workload_needs_no_service(
        self, mat_config, small_schema
    ):
        cfg = SystemConfig(**{**mat_config.__dict__, "translation_service": None})
        wl = WorkloadSpec(
            small_schema.dimensions,
            [QueryClass("small", 1.0, resolution=1)],
            measures=("sales_price",),
        )
        report = HybridSystem(cfg).run(wl.generate(50))
        assert report.completed == 50


class TestBatchedAdmission:
    """``run(batch_size=)`` buffers arrivals, decides in one pass each."""

    def test_batch_size_one_matches_sequential(self, mat_config, workload):
        stream = workload.generate(150, ArrivalProcess("uniform", rate=200.0))
        seq = HybridSystem(mat_config).run(stream)
        bat = HybridSystem(mat_config).run(stream, batch_size=1)
        assert [
            (r.query_id, r.target, r.submit_time, r.finish_time, r.answer)
            for r in seq.records
        ] == [
            (r.query_id, r.target, r.submit_time, r.finish_time, r.answer)
            for r in bat.records
        ]

    def test_batched_run_validates(self, mat_config, workload):
        from repro.sim.obs import TraceCollector
        from repro.sim.validate import assert_trace_valid, assert_valid

        collector = TraceCollector()
        stream = workload.generate(145, ArrivalProcess("uniform", rate=300.0))
        report = HybridSystem(mat_config).run(
            stream, collector=collector, batch_size=16
        )
        assert report.completed == 145
        assert_valid(report)
        assert_trace_valid(report, collector)
        # 9 full batches of 16 plus the trailing flush of 1
        batch_events = [e for e in collector.events if e.kind == "batch"]
        assert [e.data["n"] for e in batch_events] == [16] * 9 + [1]
        assert all(e.query_id is None for e in batch_events)

    def test_closed_loop_single_trailing_flush(self, mat_config, workload):
        # closed arrivals all land at t=0: one buffer, one flush
        from repro.sim.obs import TraceCollector

        collector = TraceCollector()
        report = HybridSystem(mat_config).run(
            workload.generate(20), collector=collector, batch_size=64
        )
        assert report.completed == 20
        batch_events = [e for e in collector.events if e.kind == "batch"]
        assert [e.data["n"] for e in batch_events] == [20]

    def test_invalid_batch_size(self, mat_config, workload):
        stream = workload.generate(5)
        with pytest.raises(SimulationError, match="batch_size"):
            HybridSystem(mat_config).run(stream, batch_size=0)
