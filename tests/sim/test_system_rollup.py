"""HybridSystem × rollup cache tier: simulated-time integration.

Cache hits cost zero simulated time, land in ``report.cache_hits``
(never the scheduler books), and reconcile against the trace plane and
the live metrics plane through the seventh validation family.
"""

import pytest

from repro.core.perfmodel import XEON_X5667_8T
from repro.gpu import SimulatedGPU
from repro.gpu.partitioning import paper_partition_scheme
from repro.gpu.timing import TESLA_C2070_TIMING
from repro.metrics import MetricsRegistry
from repro.olap import (
    ROLLUP_TARGET,
    AdmissionPolicy,
    CuboidSpec,
    RollupCatalog,
    RollupRouter,
)
from repro.query.workload import QueryClass, WorkloadSpec
from repro.sim import HybridSystem, SystemConfig, TraceCollector
from repro.sim.validate import seed_violation, validate_report, validate_rollup
from repro.units import GB


@pytest.fixture(scope="module")
def mat_config(fact_table, pyramid, translator):
    device = SimulatedGPU(global_memory_bytes=GB, timing=TESLA_C2070_TIMING)
    device.load_table(fact_table)
    return SystemConfig(
        cpu_model=XEON_X5667_8T.with_overhead(0.002),
        pyramid=pyramid,
        device=device,
        scheme=paper_partition_scheme(),
        translation_service=translator,
        time_constraint=0.5,
    )


@pytest.fixture(scope="module")
def workload(small_schema):
    """Integer-only small queries: every shape is resolution-1 covered."""
    return WorkloadSpec(
        small_schema.dimensions,
        [QueryClass("small", 1.0, resolution=1, coverage=(0.1, 0.6))],
        measures=("sales_price",),
        seed=7,
    )


@pytest.fixture(scope="module")
def mixed_workload(small_schema):
    """Half covered (res 1), half too fine for the res-1 catalog."""
    return WorkloadSpec(
        small_schema.dimensions,
        [
            QueryClass("small", 0.5, resolution=1, coverage=(0.1, 0.6)),
            QueryClass("fine", 0.5, resolution=2, coverage=(0.1, 0.6)),
        ],
        measures=("sales_price",),
        seed=11,
    )


def make_router(fact_table, small_schema):
    catalog = RollupCatalog(fact_table, "sales_price")
    names = tuple(d.name for d in small_schema.dimensions)
    catalog.materialise_and_install(
        CuboidSpec(dims=names, resolutions=(1,) * len(names))
    )
    return RollupRouter(catalog, policy=AdmissionPolicy(byte_budget=1 << 30))


class TestSimulatedHits:
    def test_hits_are_zero_cost_and_out_of_books(
        self, mat_config, workload, fact_table, small_schema
    ):
        router = make_router(fact_table, small_schema)
        stream = workload.generate(100)
        report = HybridSystem(mat_config).run(stream, rollup=router)
        assert report.cache_hit_count > 0
        assert report.cache_hit_count == router.hits
        hit_ids = {r.query_id for r in report.cache_hits}
        assert all(r.target == ROLLUP_TARGET for r in report.cache_hits)
        assert all(r.finish_time == r.submit_time for r in report.cache_hits)
        assert not hit_ids & {r.query_id for r in report.records}
        # the conftest autouse audit already ran assert_valid; check the
        # family list explicitly here
        result = validate_report(report)
        assert result.ok and "rollup" in result.checked

    def test_same_stream_same_answers_as_uncached(
        self, mat_config, workload, fact_table, small_schema
    ):
        stream = list(workload.generate(60))
        cached = HybridSystem(mat_config).run(
            stream, rollup=make_router(fact_table, small_schema)
        )
        uncached = HybridSystem(mat_config).run(stream)
        by_id = {r.query_id: r for r in uncached.records}
        for hit in cached.cache_hits:
            assert hit.answer == pytest.approx(
                by_id[hit.query_id].answer, rel=1e-9
            )

    def test_trace_and_metrics_reconcile(
        self, mat_config, workload, fact_table, small_schema
    ):
        router = make_router(fact_table, small_schema)
        collector = TraceCollector()
        registry = MetricsRegistry()
        report = HybridSystem(mat_config).run(
            workload.generate(80),
            collector=collector,
            metrics=registry,
            rollup=router,
        )
        assert report.cache_hit_count > 0
        result = validate_rollup(
            report, collector=collector, snapshot=registry.collect(now=1e9)
        )
        assert result.ok, result.violations
        assert (
            collector.event_counts().get("cache-hit", 0)
            == report.cache_hit_count
        )

    def test_seeded_rollup_violation_is_caught(
        self, mat_config, mixed_workload, fact_table, small_schema
    ):
        report = HybridSystem(mat_config).run(
            mixed_workload.generate(40),
            rollup=make_router(fact_table, small_schema),
        )
        assert report.cache_hit_count > 0 and len(report.records) > 0
        corrupted = seed_violation(report, "rollup")
        result = validate_report(corrupted)
        assert not result.ok
        assert any(v.invariant == "rollup" for v in result.violations)

    def test_summary_mentions_cache(
        self, mat_config, workload, fact_table, small_schema
    ):
        report = HybridSystem(mat_config).run(
            workload.generate(50),
            rollup=make_router(fact_table, small_schema),
        )
        assert "cache-served" in report.summary()
        assert (
            report.effective_queries_per_second >= report.queries_per_second
        )
