"""Tests for timeline recording and Gantt rendering."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import SimulationEngine
from repro.sim.resources import Job, Server
from repro.sim.trace import render_gantt


def run_jobs(services, capacity=1):
    engine = SimulationEngine()
    server = Server(engine, "S", capacity=capacity)
    for i, s in enumerate(services):
        server.submit(Job(query_id=i, service_time=s, on_complete=lambda t, j: None))
    engine.run()
    return server


class TestHistory:
    def test_records_in_completion_order(self):
        server = run_jobs([1.0, 0.5])
        assert server.history == [(0, 0.0, 1.0), (1, 1.0, 1.5)]

    def test_multicapacity_history(self):
        server = run_jobs([1.0, 1.0, 1.0], capacity=2)
        starts = sorted(s for _, s, _ in server.history)
        assert starts == [0.0, 0.0, 1.0]


class TestRenderGantt:
    def test_busy_fraction_shading(self):
        chart = render_gantt({"S": [(0, 0.0, 5.0)]}, horizon=10.0, width=10)
        row = chart.splitlines()[0]
        body = row.split("|")[1]
        # first half fully shaded, second half blank
        assert body[:5] == "#####"
        assert body[5:] == "     "
        assert "50%" in row

    def test_idle_partition_blank(self):
        chart = render_gantt(
            {"A": [(0, 0.0, 2.0)], "B": []}, horizon=2.0, width=12
        )
        b_row = next(l for l in chart.splitlines() if l.startswith("B"))
        assert set(b_row.split("|")[1]) == {" "}
        assert "0%" in b_row

    def test_horizon_inferred(self):
        chart = render_gantt({"S": [(0, 0.0, 4.0)]}, width=16)
        assert "4.000 s" in chart

    def test_partial_cells_shaded_lighter(self):
        # 25% busy in each cell -> light shade, not '#'
        timeline = [(i, i * 1.0, i * 1.0 + 0.25) for i in range(10)]
        chart = render_gantt({"S": timeline}, horizon=10.0, width=10)
        body = chart.splitlines()[0].split("|")[1]
        assert "#" not in body
        assert body.strip() != ""

    def test_validation(self):
        with pytest.raises(SimulationError):
            render_gantt({})
        with pytest.raises(SimulationError):
            render_gantt({"S": []})
        with pytest.raises(SimulationError):
            render_gantt({"S": [(0, 0.0, 1.0)]}, width=4)


class TestSystemReportGantt:
    def test_report_carries_timelines(self):
        from repro.paper import paper_system_config, paper_workload
        from repro.sim import HybridSystem

        config = paper_system_config(threads=8, include_32gb=True)
        workload = paper_workload(include_32gb=True, seed=5)
        report = HybridSystem(config).run(workload.generate(100))
        assert set(report.timelines) == set(report.utilisations)
        chart = report.gantt(width=40)
        assert "Q_CPU" in chart and "Q_G6" in chart

    def test_slowest_first_visible_in_timelines(self):
        from repro.paper import paper_system_config, paper_workload
        from repro.query.workload import ArrivalProcess
        from repro.sim import HybridSystem

        config = paper_system_config(threads=8, include_32gb=True)
        workload = paper_workload(include_32gb=True, seed=5)
        stream = workload.generate(200, ArrivalProcess("uniform", rate=100.0))
        report = HybridSystem(config).run(stream)
        # Figure 10's slowest-first: the 1-SM queues serve at least as
        # many GPU-bound queries as the 4-SM queues at moderate load
        g1 = len(report.timelines["Q_G1"])
        g6 = len(report.timelines["Q_G6"])
        assert g1 >= g6


class TestCapacityNormalisedGantt:
    """Regression: utilisation is busy-time over capacity x horizon.

    render_gantt used to divide by the horizon alone, so a partition
    with capacity 2 running two overlapping jobs printed 200%.
    """

    def test_fully_loaded_wide_server_is_100_percent(self):
        timelines = {"T": ((0, 0.0, 10.0), (1, 0.0, 10.0))}
        chart = render_gantt(
            timelines, horizon=10.0, width=10, capacities={"T": 2}
        )
        row = chart.splitlines()[0]
        assert "100%" in row and "200%" not in row
        assert row.split("|")[1] == "##########"

    def test_half_loaded_wide_server_is_50_percent(self):
        timelines = {"T": ((0, 0.0, 10.0),)}
        chart = render_gantt(
            timelines, horizon=10.0, width=10, capacities={"T": 2}
        )
        row = chart.splitlines()[0]
        assert "50%" in row
        assert "#" not in row.split("|")[1]  # half-full cells shade lighter

    def test_report_gantt_with_translation_workers(self):
        from dataclasses import replace

        from repro.paper import TABLE3_TEXT_PROB, paper_system_config, paper_workload
        from repro.query.workload import ArrivalProcess
        from repro.sim import HybridSystem

        config = replace(
            paper_system_config(threads=8, include_32gb=True),
            translation_workers=4,
        )
        workload = paper_workload(
            include_32gb=True, text_prob=TABLE3_TEXT_PROB, seed=11
        )
        stream = workload.generate(300, ArrivalProcess("uniform", rate=200.0))
        report = HybridSystem(config).run(stream)
        assert report.capacities["Q_TRANS"] == 4
        for row in report.gantt(width=40).splitlines():
            if not row.endswith("%"):
                continue  # axis/legend footer
            util = int(row.rsplit(" ", 1)[-1].rstrip("%"))
            assert 0 <= util <= 100
