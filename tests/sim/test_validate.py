"""Tests for the simulation invariant checker (:mod:`repro.sim.validate`).

Two directions: clean runs of the real system must pass the audit, and
every seedable corruption must make it fail loudly — including a
hand-built report reproducing the historical translated-query
:math:`T_Q` under-count, which is exactly what the drift invariant
exists to catch.
"""

from dataclasses import replace

import pytest

from repro.core.partitions import Submission
from repro.errors import InvariantViolation
from repro.paper import paper_system_config, paper_workload
from repro.sim.metrics import QueryRecord, SystemReport
from repro.sim.system import HybridSystem
from repro.sim.validate import (
    SEEDABLE_VIOLATIONS,
    assert_valid,
    seed_violation,
    validate_report,
)


@pytest.fixture(scope="module")
def clean_report():
    """One deterministic paper-scale run with plenty of text queries."""
    config = paper_system_config(include_32gb=False)
    stream = paper_workload(text_prob=0.4, seed=7).generate(150)
    return HybridSystem(config).run(stream)


class TestCleanRuns:
    def test_clean_run_passes(self, clean_report):
        result = validate_report(clean_report)
        assert result.ok, result.summary()
        # deterministic capacity-1 run: all four families audited
        assert set(result.checked) == {
            "dependency",
            "discipline",
            "conservation",
            "drift",
        }
        assert result.summary().startswith("ok")

    def test_assert_valid_returns_the_report(self, clean_report):
        assert assert_valid(clean_report) is clean_report

    def test_noise_disables_drift_only(self):
        config = paper_system_config(include_32gb=False, noise_sigma=0.3)
        stream = paper_workload(text_prob=0.3, seed=11).generate(80)
        report = HybridSystem(config).run(stream)
        result = validate_report(report)
        assert result.ok, result.summary()
        assert "drift" not in result.checked
        assert "dependency" in result.checked

    def test_parallel_workers_disable_drift_only(self):
        config = replace(
            paper_system_config(include_32gb=False), translation_workers=4
        )
        stream = paper_workload(text_prob=0.4, seed=13).generate(80)
        report = HybridSystem(config).run(stream)
        result = validate_report(report)
        assert result.ok, result.summary()
        assert "drift" not in result.checked

    def test_truncated_run_conserves_jobs(self):
        config = paper_system_config(include_32gb=False)
        stream = paper_workload(text_prob=0.4, seed=17).generate(100)
        report = HybridSystem(config).run(stream, max_events=120)
        assert report.completed < 100
        assert sum(report.outstanding.values()) > 0
        assert validate_report(report).ok


class TestSeededViolations:
    @pytest.mark.parametrize("kind", SEEDABLE_VIOLATIONS)
    def test_each_corruption_is_caught(self, clean_report, kind):
        corrupted = seed_violation(clean_report, kind)
        result = validate_report(corrupted)
        assert not result.ok
        assert any(v.invariant == kind for v in result.violations), (
            f"expected a {kind!r} violation, got: {result.summary()}"
        )
        with pytest.raises(InvariantViolation, match=kind):
            assert_valid(corrupted)

    def test_unknown_kind_rejected(self, clean_report):
        with pytest.raises(InvariantViolation, match="unknown violation kind"):
            seed_violation(clean_report, "nonsense")

    def test_empty_run_cannot_seed_conservation(self):
        empty = SystemReport.from_records([])
        with pytest.raises(InvariantViolation, match="empty"):
            seed_violation(empty, "conservation")


def _one_translated_query_report(gpu_books_pipeline: bool) -> SystemReport:
    """A minimal run: one text query, t_trans=1.0, t_gpu=0.01.

    ``gpu_books_pipeline`` selects between the corrected books (the GPU
    submission starts at the translation finish) and the historical bug
    (the GPU queue booked start=0, T_Q=0.01, while the realised job
    could not start before t=1.0).  The *realised* timeline is legal in
    both cases — only the books differ.
    """
    if gpu_books_pipeline:
        gpu_sub = Submission(
            query_id=1,
            submit_time=0.0,
            estimated_start=1.0,
            estimated_time=0.01,
            earliest_start=1.0,
        )
    else:
        gpu_sub = Submission(
            query_id=1, submit_time=0.0, estimated_start=0.0, estimated_time=0.01
        )
    record = QueryRecord(
        query_id=1,
        query_class="text",
        target="Q_G1",
        submit_time=0.0,
        finish_time=1.01,
        deadline=0.5,
        estimated_time=0.01,
        measured_time=0.01,
        translated=True,
    )
    return SystemReport.from_records(
        [record],
        horizon=1.01,
        timelines={
            "Q_TRANS": ((1, 0.0, 1.0),),
            "Q_G1": ((1, 1.0, 1.01),),
        },
        submissions={
            "Q_TRANS": (
                Submission(
                    query_id=1,
                    submit_time=0.0,
                    estimated_start=0.0,
                    estimated_time=1.0,
                ),
            ),
            "Q_G1": (gpu_sub,),
        },
        capacities={"Q_TRANS": 1, "Q_G1": 1},
        outstanding={"Q_TRANS": 0, "Q_G1": 0},
        exact_estimates=True,
    )


class TestLegacyUnderCount:
    """The checker detects the exact bug this PR fixes."""

    def test_old_books_fail_drift(self):
        report = _one_translated_query_report(gpu_books_pipeline=False)
        result = validate_report(report)
        assert any(
            v.invariant == "drift" and v.queue == "Q_G1"
            for v in result.violations
        ), result.summary()

    def test_corrected_books_pass(self):
        report = _one_translated_query_report(gpu_books_pipeline=True)
        result = validate_report(report)
        assert result.ok, result.summary()
        assert "drift" in result.checked
