"""Tests for the command-line interface (driven in-process)."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def db_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("db")
    rc = main(["generate", str(directory), "--rows", "5000", "--scale", "0.4",
               "--seed", "3"])
    assert rc == 0
    rc = main(["build", str(directory), "--measure", "sales_price",
               "--resolutions", "0,1,2"])
    assert rc == 0
    return directory


class TestGenerate:
    def test_writes_database_files(self, db_dir):
        assert (db_dir / "schema.json").exists()
        assert (db_dir / "table.npz").exists()
        assert (db_dir / "vocabularies.json").exists()

    def test_output_mentions_rows(self, tmp_path, capsys):
        main(["generate", str(tmp_path / "db2"), "--rows", "100", "--seed", "3"])
        out = capsys.readouterr().out
        assert "100 rows" in out


class TestBuild:
    def test_pyramid_files(self, db_dir):
        assert (db_dir / "pyramid_sales_price.npz").exists()
        assert (db_dir / "pyramid_sales_price.json").exists()

    def test_unknown_measure_fails(self, db_dir, capsys):
        rc = main(["build", str(db_dir), "--measure", "nope"])
        assert rc == 2
        assert "unknown measure" in capsys.readouterr().err


class TestQuery:
    def test_both_paths_agree(self, db_dir, capsys):
        rc = main([
            "query",
            str(db_dir),
            "SELECT sum(sales_price) WHERE date.year = 1",
            "--path",
            "both",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cpu-cube" in out and "gpu" in out and "reference-scan" in out

    def test_text_query_translates(self, db_dir, capsys):
        import json

        vocab = json.loads((db_dir / "vocabularies.json").read_text())
        city = vocab["store__city"][0].replace("'", r"\'")
        rc = main([
            "query",
            str(db_dir),
            f"SELECT sum(sales_price) WHERE store.city = '{city}'",
            "--path",
            "gpu",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "translated 1 text parameter" in out

    def test_parse_error_is_reported(self, db_dir, capsys):
        rc = main(["query", str(db_dir), "SELECT sum(sales_price) WHERE ???"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestSimulate:
    def test_table1(self, capsys):
        rc = main(["simulate", "table1", "--threads", "8", "--queries", "400"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "throughput" in out

    def test_gpu_only(self, capsys):
        rc = main(["simulate", "gpu-only", "--queries", "400"])
        assert rc == 0
        assert "Q_G" in capsys.readouterr().out

    def test_table3_reports_sustainable_rate(self, capsys):
        rc = main(["simulate", "table3", "--threads", "8", "--queries", "400"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "max sustainable rate" in out


class TestParser:
    def test_missing_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestGroupedQueryCLI:
    def test_grouped_query_prints_groups(self, db_dir, capsys):
        rc = main([
            "query",
            str(db_dir),
            "SELECT sum(sales_price) BY date.year",
            "--limit",
            "3",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "groups by (date@0)" in out

    def test_grouped_query_cpu_path(self, db_dir, capsys):
        rc = main([
            "query",
            str(db_dir),
            "SELECT count(*) BY store.region",
            "--path",
            "cpu",
        ])
        assert rc == 0
        assert "groups by" in capsys.readouterr().out


class TestSimulateTrace:
    def test_trace_flag_writes_jsonl_and_dashboard(self, tmp_path, capsys):
        import json

        trace = tmp_path / "run.jsonl"
        rc = main(
            ["simulate", "table2", "--queries", "120", "--trace", str(trace)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "trace:" in out
        assert "booked T_Q backlog" in out  # the dashboard rendered
        records = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        kinds = {r["kind"] for r in records if r["record"] == "event"}
        assert {"arrival", "estimated", "decision", "service_finish",
                "feedback"} <= kinds
        assert any(r["record"] == "sample" for r in records)

    def test_table3_trace_prints_probe_history(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        rc = main(
            ["simulate", "table3", "--queries", "120", "--trace", str(trace)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "max sustainable rate" in out
        assert "probes; best sustained offered rate" in out
        assert "probe  1:" in out
        assert trace.exists()

class TestSimulateMetrics:
    def test_metrics_snapshots_flag_writes_jsonl_and_dashboard(
        self, tmp_path, capsys
    ):
        import json

        path = tmp_path / "metrics.jsonl"
        rc = main(
            ["simulate", "table2", "--queries", "120",
             "--metrics-snapshots", str(path)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "live metrics @" in out  # the metrics dashboard rendered
        assert "completions q/s" in out
        snapshots = [json.loads(line) for line in path.read_text().splitlines()]
        assert snapshots, "no snapshots written"
        names = {f["name"] for f in snapshots[-1]["families"]}
        assert "repro_queries_submitted_total" in names
        assert "repro_query_latency_seconds" in names

    def test_metrics_compose_with_trace(self, tmp_path, capsys):
        rc = main(
            ["simulate", "table1", "--queries", "80",
             "--trace", str(tmp_path / "run.jsonl"),
             "--metrics-snapshots", str(tmp_path / "metrics.jsonl")]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "booked T_Q backlog" in out  # trace dashboard
        assert "live metrics @" in out  # metrics dashboard


@pytest.mark.wallclock
class TestServeMetricsCLI:
    def test_serve_with_full_metrics_plane(self, tmp_path, capsys):
        import json
        import urllib.error
        import urllib.request

        path = tmp_path / "metrics.jsonl"
        # port 0: the OS picks a free port; the URL is printed early
        rc = main(
            ["serve", "--duration", "0.5", "--rate", "30", "--rows", "2000",
             "--metrics-port", "0", "--metrics-snapshots", str(path),
             "--slo", "0.9"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "metrics: Prometheus text at http://127.0.0.1:" in out
        assert "SLO: hit rate" in out
        assert "live metrics @" in out
        snapshots = [json.loads(line) for line in path.read_text().splitlines()]
        assert snapshots
        # the endpoint is down once the run is over
        url = out.split("Prometheus text at ", 1)[1].splitlines()[0]
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(url, timeout=2.0)


@pytest.mark.wallclock
class TestFleetCommand:
    def test_fleet_serves_drains_and_audits(self, capsys):
        rc = main(
            ["fleet", "--shards", "2", "--rows", "600", "--duration", "1",
             "--cpu-threads", "1", "--port", "0"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "fleet front door: http://127.0.0.1:" in out
        assert "shards live: [0, 1]" in out
        assert "fleet audit: ok" in out
