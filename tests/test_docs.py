"""Documentation-sync checks: flags, links and runnable references.

The CLI grew flags in past PRs that the prose never learned about
(``--metrics-snapshots`` and ``--slo`` were missing from the serve help
epilog, the README and the tutorial).  These tests make that class of
drift impossible:

- every ``repro serve`` flag must appear in the parser's own epilog,
  the README CLI table and the tutorial;
- every relative markdown link in README/DESIGN.md/docs/ must resolve
  to a real file;
- every ``benchmarks/``, ``examples/`` and ``docs/`` path the docs
  mention must exist on disk.
"""

import re
from pathlib import Path

import pytest

from repro.cli import build_parser

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = sorted(
    [REPO / "README.md", REPO / "DESIGN.md", *(REPO / "docs").glob("*.md")]
)


def serve_option_strings():
    parser = build_parser()
    subparsers = next(
        a for a in parser._actions
        if isinstance(a, type(parser._subparsers._group_actions[0]))
    )
    serve = subparsers.choices["serve"]
    flags = []
    for action in serve._actions:
        flags.extend(s for s in action.option_strings if s.startswith("--"))
    return serve, sorted(set(flags) - {"--help"})


class TestServeFlagSync:
    def test_epilog_lists_every_flag(self):
        serve, flags = serve_option_strings()
        assert serve.epilog, "serve subparser must carry a flag epilog"
        missing = [f for f in flags if f not in serve.epilog]
        assert not missing, f"serve --help epilog omits {missing}"

    @pytest.mark.parametrize("doc", ["README.md", "docs/tutorial.md"])
    def test_docs_list_every_flag(self, doc):
        _, flags = serve_option_strings()
        text = (REPO / doc).read_text()
        missing = [f for f in flags if f not in text]
        assert not missing, f"{doc} omits serve flags {missing}"

    def test_epilog_flags_all_exist(self):
        # the reverse direction: no stale flags lingering in the epilog
        serve, flags = serve_option_strings()
        documented = set(re.findall(r"--[a-z-]+", serve.epilog))
        assert documented <= set(flags)


LINK_RE = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(?:#[^)]*)?\)")


class TestMarkdownLinks:
    @pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
    def test_relative_links_resolve(self, doc):
        broken = []
        for target in LINK_RE.findall(doc.read_text()):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if not (doc.parent / target).exists():
                broken.append(target)
        assert not broken, f"{doc.relative_to(REPO)} has broken links: {broken}"

    def test_mentioned_repo_paths_exist(self):
        pattern = re.compile(
            r"`((?:benchmarks|examples|docs)/[A-Za-z0-9_./-]+\.(?:py|md|txt))`"
        )
        missing = []
        for doc in DOC_FILES:
            for path in pattern.findall(doc.read_text()):
                if not (REPO / path).exists():
                    missing.append(f"{doc.name}: {path}")
        assert not missing, f"docs reference nonexistent paths: {missing}"
