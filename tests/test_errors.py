"""Tests for the exception hierarchy."""

import pytest

import repro.errors as errors
from repro.errors import (
    CubeNotAvailableError,
    DictionaryError,
    QueryError,
    ReproError,
    UnknownTokenError,
)


class TestHierarchy:
    def test_every_error_derives_from_repro_error(self):
        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, ReproError), name
            assert issubclass(cls, Exception), name

    def test_dimension_and_resolution_are_query_errors(self):
        assert issubclass(errors.DimensionError, QueryError)
        assert issubclass(errors.ResolutionError, QueryError)
        assert issubclass(errors.ParseError, QueryError)

    def test_cube_not_available_is_cube_error(self):
        assert issubclass(CubeNotAvailableError, errors.CubeError)

    def test_unknown_token_carries_context(self):
        exc = UnknownTokenError("store__city", "Atlantis")
        assert exc.column == "store__city"
        assert exc.token == "Atlantis"
        assert "Atlantis" in str(exc)
        assert isinstance(exc, DictionaryError)

    def test_single_except_catches_all(self):
        # the library contract: one except clause suffices
        with pytest.raises(ReproError):
            raise errors.SchedulingError("x")
        with pytest.raises(ReproError):
            raise UnknownTokenError("c", "t")

    def test_all_list_is_complete(self):
        public = {
            name
            for name in dir(errors)
            if isinstance(getattr(errors, name), type)
            and issubclass(getattr(errors, name), ReproError)
        }
        assert public == set(errors.__all__)
