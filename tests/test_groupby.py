"""Tests for grouped (multi-cell) query execution across all paths."""

import numpy as np
import pytest

from repro.errors import CubeError, QueryError, TranslationError
from repro.groupby import (
    GroupedResult,
    groupby_from_table,
    groupby_with_cube,
    run_groupby_kernel,
)
from repro.olap.cube import OLAPCube
from repro.query.model import Condition, Query, decompose
from repro.query.parser import parse_query


@pytest.fixture(scope="module")
def cube(fact_table):
    return OLAPCube.from_fact_table(
        fact_table, "sales_price", resolutions=[2, 2, 2], with_minmax=True
    )


def grouped_query(agg="sum", group_by=(("date", 1),), conditions=()):
    measures = () if agg == "count" else ("sales_price",)
    return Query(
        conditions=tuple(conditions),
        measures=measures,
        agg=agg,
        group_by=tuple(group_by),
    )


class TestQueryModel:
    def test_group_by_raises_required_resolution(self):
        q = grouped_query(group_by=(("date", 3),))
        assert q.required_resolution == 3

    def test_duplicate_group_dims_rejected(self):
        with pytest.raises(QueryError):
            grouped_query(group_by=(("date", 1), ("date", 2)))

    def test_group_columns_in_decomposition(self, small_schema):
        q = grouped_query(group_by=(("date", 1), ("store", 0)))
        d = decompose(q, small_schema.hierarchies)
        assert d.group_columns == ("date__quarter", "store__region")

    def test_shared_column_counted_once(self, small_schema):
        q = grouped_query(
            group_by=(("date", 1),),
            conditions=(Condition("date", 1, lo=0, hi=8),),
        )
        d = decompose(q, small_schema.hierarchies)
        # date__quarter is both filter and group: 1 column + 1 measure
        assert d.columns_accessed == 2

    def test_distinct_columns_counted(self, small_schema):
        q = grouped_query(
            group_by=(("store", 0),),
            conditions=(Condition("date", 1, lo=0, hi=8),),
        )
        d = decompose(q, small_schema.hierarchies)
        assert d.columns_accessed == 3


class TestReferencePath:
    def test_cells_match_manual_bincount(self, fact_table, small_schema):
        q = grouped_query(group_by=(("date", 0),))
        result = groupby_from_table(fact_table, q)
        col = fact_table.column("date__year")
        vals = fact_table.column("sales_price")
        for year in np.unique(col):
            assert np.isclose(
                result.cells[(int(year),)], vals[col == year].sum()
            )

    def test_total_matches_ungrouped_sum(self, fact_table):
        q = grouped_query(group_by=(("store", 1),))
        result = groupby_from_table(fact_table, q)
        assert np.isclose(result.total(), fact_table.column("sales_price").sum())

    @pytest.mark.parametrize("agg", ["sum", "count", "avg", "min", "max"])
    def test_all_aggregates(self, fact_table, agg):
        q = grouped_query(agg=agg, group_by=(("date", 0),))
        result = groupby_from_table(fact_table, q)
        col = fact_table.column("date__year")
        vals = fact_table.column("sales_price")
        for (year,), value in result.cells.items():
            sel = vals[col == year]
            expected = {
                "sum": sel.sum(),
                "count": float(len(sel)),
                "avg": sel.mean(),
                "min": sel.min(),
                "max": sel.max(),
            }[agg]
            assert np.isclose(value, expected), (agg, year)

    def test_conditions_filter_groups(self, fact_table):
        q = grouped_query(
            group_by=(("date", 1),),
            conditions=(Condition("date", 1, lo=2, hi=5),),
        )
        result = groupby_from_table(fact_table, q)
        assert set(result.cells) <= {(2,), (3,), (4,)}

    def test_no_group_by_rejected(self, fact_table):
        q = Query(conditions=(), measures=("sales_price",))
        with pytest.raises(QueryError, match="no group_by"):
            groupby_from_table(fact_table, q)

    def test_untranslated_text_rejected(self, fact_table):
        q = grouped_query(
            group_by=(("date", 0),),
            conditions=(Condition("store", 2, text_values=("x",)),),
        )
        with pytest.raises(TranslationError):
            groupby_from_table(fact_table, q)

    def test_group_space_budget(self, fact_table, monkeypatch):
        import repro.groupby as gb

        monkeypatch.setattr(gb, "MAX_GROUP_CELLS", 4)
        q = grouped_query(group_by=(("date", 2),))
        with pytest.raises(CubeError, match="budget"):
            groupby_from_table(fact_table, q)

    def test_empty_match(self, fact_table, small_schema):
        card = small_schema.dimension("date").cardinality(3)
        q = grouped_query(
            group_by=(("store", 0),),
            conditions=(Condition("date", 3, lo=card - 1, hi=card),),
        )
        result = groupby_from_table(fact_table, q)
        if result.rows_matched == 0:
            assert result.num_groups == 0


class TestCubePath:
    @pytest.mark.parametrize("agg", ["sum", "count", "avg", "min", "max"])
    def test_matches_reference(self, fact_table, cube, agg):
        q = grouped_query(
            agg=agg,
            group_by=(("date", 1), ("item", 0)),
            conditions=(Condition("store", 1, lo=0, hi=12),),
        )
        ref = groupby_from_table(fact_table, q)
        got = groupby_with_cube(cube, q)
        assert set(got.cells) == set(ref.cells)
        for k, v in ref.cells.items():
            assert np.isclose(got.cells[k], v), (agg, k)

    def test_coarsening_groups(self, fact_table, cube):
        # group at a coarser resolution than the cube's materialisation
        q = grouped_query(group_by=(("date", 0),))
        ref = groupby_from_table(fact_table, q)
        got = groupby_with_cube(cube, q)
        assert got.cells == pytest.approx(ref.cells)

    def test_group_finer_than_cube_rejected(self, fact_table):
        coarse = OLAPCube.from_fact_table(fact_table, "sales_price", [0, 0, 0])
        q = grouped_query(group_by=(("date", 2),))
        with pytest.raises(QueryError, match="materialised"):
            groupby_with_cube(coarse, q)

    def test_wrong_measure_rejected(self, cube):
        q = Query(
            conditions=(), measures=("quantity",), group_by=(("date", 0),)
        )
        with pytest.raises(QueryError, match="aggregates"):
            groupby_with_cube(cube, q)

    def test_rows_matched_consistent(self, fact_table, cube):
        q = grouped_query(
            group_by=(("date", 0),),
            conditions=(Condition("item", 1, lo=0, hi=20),),
        )
        ref = groupby_from_table(fact_table, q)
        got = groupby_with_cube(cube, q)
        assert got.rows_matched == ref.rows_matched


class TestGPUPath:
    @pytest.mark.parametrize("n_sm", [1, 4, 14])
    def test_matches_reference(self, fact_table, small_schema, n_sm):
        q = grouped_query(
            group_by=(("store", 0), ("date", 1)),
            conditions=(Condition("item", 1, lo=0, hi=30),),
        )
        d = decompose(q, small_schema.hierarchies)
        ref = groupby_from_table(fact_table, q)
        got = run_groupby_kernel(fact_table, d, n_sm)
        assert set(got.cells) == set(ref.cells)
        for k, v in ref.cells.items():
            assert np.isclose(got.cells[k], v)

    def test_min_max_across_shards(self, fact_table, small_schema):
        q = grouped_query(agg="min", group_by=(("date", 0),))
        d = decompose(q, small_schema.hierarchies)
        ref = groupby_from_table(fact_table, q)
        got = run_groupby_kernel(fact_table, d, 7)
        assert got.cells == pytest.approx(ref.cells)

    def test_device_entry_point(self, fact_table):
        from repro.gpu.device import SimulatedGPU
        from repro.units import GB

        device = SimulatedGPU(global_memory_bytes=GB)
        device.load_table(fact_table)
        q = grouped_query(group_by=(("date", 1),))
        result, elapsed = device.execute_groupby(q, 4)
        assert elapsed > 0
        assert result.num_groups > 0
        ref = groupby_from_table(fact_table, q)
        assert result.cells == pytest.approx(ref.cells)

    def test_device_rejects_ungrouped(self, fact_table):
        from repro.errors import DeviceError
        from repro.gpu.device import SimulatedGPU
        from repro.units import GB

        device = SimulatedGPU(global_memory_bytes=GB)
        device.load_table(fact_table)
        with pytest.raises(DeviceError):
            device.execute_groupby(Query(conditions=(), measures=("quantity",)), 4)


class TestPyramidPath:
    def test_answer_grouped(self, pyramid, fact_table):
        q = grouped_query(group_by=(("date", 1),))
        ref = groupby_from_table(fact_table, q)
        got = pyramid.answer_grouped(q)
        assert got.cells == pytest.approx(ref.cells)

    def test_level_selection_honours_groups(self, pyramid):
        # grouping by resolution 2 forces at least the resolution-2 level
        q = grouped_query(group_by=(("date", 2),))
        level = pyramid.select_level(q)
        assert max(level.resolutions) >= 2

    def test_group_deeper_than_pyramid(self, pyramid):
        from repro.errors import CubeNotAvailableError

        q = grouped_query(group_by=(("date", 3),))
        with pytest.raises(CubeNotAvailableError):
            pyramid.select_level(q)


class TestParser:
    def test_by_clause(self, small_schema):
        q = parse_query(
            "SELECT sum(sales_price) BY date.quarter, store.region "
            "WHERE item.category IN [0, 4)",
            small_schema.hierarchies,
        )
        assert q.group_by == (("date", 1), ("store", 0))
        assert len(q.conditions) == 1

    def test_by_without_where(self, small_schema):
        q = parse_query("SELECT count(*) BY date.year", small_schema.hierarchies)
        assert q.group_by == (("date", 0),)
        assert q.agg == "count"

    def test_parsed_grouped_query_runs(self, fact_table, small_schema):
        q = parse_query(
            "SELECT avg(sales_price) BY store.region", small_schema.hierarchies
        )
        result = groupby_from_table(fact_table, q)
        assert result.num_groups > 0


class TestGroupedResult:
    def test_value_at(self, fact_table):
        result = groupby_from_table(fact_table, grouped_query(group_by=(("date", 0),)))
        (coords, value), *_ = list(result.cells.items())
        assert result.value_at(*coords) == value
        with pytest.raises(QueryError):
            result.value_at(10**6)

    def test_top_ordering(self, fact_table):
        result = groupby_from_table(
            fact_table, grouped_query(group_by=(("item", 1),))
        )
        top = result.top(5)
        values = [v for _, v in top]
        assert values == sorted(values, reverse=True)
