"""Unit tests for persistence (save/load round-trips)."""

import json

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.io import (
    load_dataset,
    load_pyramid,
    load_table,
    save_dataset,
    save_pyramid,
    save_table,
    schema_from_dict,
    schema_to_dict,
)
from repro.olap import CubePyramid


class TestSchemaRoundTrip:
    def test_roundtrip(self, small_schema):
        doc = schema_to_dict(small_schema)
        restored = schema_from_dict(doc)
        assert restored.column_names == small_schema.column_names
        assert restored.text_levels == small_schema.text_levels
        assert restored.measures == small_schema.measures
        for d1, d2 in zip(restored.dimensions, small_schema.dimensions):
            assert d1 == d2

    def test_json_serialisable(self, small_schema):
        json.dumps(schema_to_dict(small_schema))  # must not raise

    def test_malformed_document(self):
        with pytest.raises(SchemaError):
            schema_from_dict({"dimensions": "nope"})


class TestTableRoundTrip:
    def test_exact_columns(self, fact_table, tmp_path):
        save_table(fact_table, tmp_path)
        restored = load_table(tmp_path)
        assert restored.num_rows == fact_table.num_rows
        for spec in fact_table.schema.columns:
            a = fact_table.column(spec.name)
            b = restored.column(spec.name)
            assert a.dtype == b.dtype
            assert np.array_equal(a, b)

    def test_queries_agree_after_reload(self, fact_table, tmp_path, small_schema):
        from repro.query.model import Condition, Query

        save_table(fact_table, tmp_path)
        restored = load_table(tmp_path)
        q = Query(
            conditions=(Condition("date", 1, lo=2, hi=9),), measures=("quantity",)
        )
        assert restored.execute(q).value() == fact_table.execute(q).value()


class TestDatasetRoundTrip:
    def test_vocabularies_preserved(self, dataset, tmp_path):
        save_dataset(dataset, tmp_path)
        restored = load_dataset(tmp_path)
        assert set(restored.vocabularies) == set(dataset.vocabularies)
        for col in dataset.vocabularies:
            assert list(restored.vocabularies[col]) == list(dataset.vocabularies[col])

    def test_dictionaries_rebuild_identically(self, dataset, tmp_path):
        from repro.text import build_dictionaries

        save_dataset(dataset, tmp_path)
        restored = load_dataset(tmp_path)
        orig = build_dictionaries(dataset.vocabularies)
        redo = build_dictionaries(restored.vocabularies)
        col = next(iter(orig))
        token = dataset.vocabularies[col][3]
        assert orig[col].encode(token) == redo[col].encode(token)

    def test_load_without_vocabularies(self, fact_table, tmp_path):
        save_table(fact_table, tmp_path)
        restored = load_dataset(tmp_path)
        assert restored.vocabularies == {}


class TestPyramidRoundTrip:
    def test_components_exact(self, pyramid, tmp_path):
        save_pyramid(pyramid, tmp_path)
        restored = load_pyramid(tmp_path, pyramid.measure)
        assert len(restored.levels) == len(pyramid.levels)
        for l1, l2 in zip(restored.levels, pyramid.levels):
            assert l1.resolutions == l2.resolutions
            for comp in l2.cube.components:
                assert np.array_equal(
                    l1.cube.component(comp), l2.cube.component(comp)
                )

    def test_answers_agree_after_reload(self, pyramid, tmp_path, small_schema):
        from repro.query.model import Condition, Query

        save_pyramid(pyramid, tmp_path)
        restored = load_pyramid(tmp_path, pyramid.measure)
        q = Query(
            conditions=(Condition("store", 1, lo=0, hi=10),),
            measures=("sales_price",),
        )
        assert restored.answer(q) == pyramid.answer(q)

    def test_analytic_pyramid_rejected(self, small_schema, tmp_path):
        pyr = CubePyramid.analytic(small_schema.dimensions, [0, 1])
        with pytest.raises(SchemaError, match="analytic"):
            save_pyramid(pyr, tmp_path)
