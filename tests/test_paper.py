"""Tests for the Section-IV evaluation presets (repro.paper)."""

import numpy as np
import pytest

from repro import paper
from repro.units import GB, KB, MB


class TestGeometry:
    def test_three_cube_dimensions_four_levels(self):
        dims = paper.paper_dimensions()
        assert len(dims) == 3
        assert all(d.num_levels == 4 for d in dims)
        assert [dims[0].cardinality(r) for r in range(4)] == [8, 40, 400, 1600]

    def test_pyramid_sizes_match_paper(self):
        pyr = paper.paper_pyramid(include_32gb=True)
        sizes = [pyr.level_nbytes(l) for l in pyr.levels]
        assert np.isclose(sizes[0], 4 * KB)  # ~4 KB
        assert np.isclose(sizes[1], 500 * KB)  # ~500 KB
        assert np.isclose(sizes[2], 488.28125 * MB)  # ~500 MB
        assert np.isclose(sizes[3], 30.517578125 * GB)  # ~32 GB

    def test_pyramid_without_32gb(self):
        pyr = paper.paper_pyramid(include_32gb=False)
        assert len(pyr.levels) == 3

    def test_fact_table_about_4gb(self):
        device = paper.paper_device()
        assert 3.9 * GB < device.descriptor.nbytes < 4.1 * GB

    def test_device_is_c2070_shaped(self):
        device = paper.paper_device()
        assert device.num_sms == 14
        assert device.is_analytic

    def test_dictionary_lengths_tied_to_cardinalities(self):
        lengths = paper.paper_dict_lengths()
        assert lengths["cust__name"] == paper.PAPER_DICT_LENGTH
        assert lengths["d3__L3"] == 1600


class TestWorkloads:
    def test_table1_mix(self):
        wl = paper.paper_workload(include_32gb=False)
        counts = wl.generate(1000).class_counts()
        assert set(counts) == {"small", "mid"}
        assert counts["small"] > counts["mid"]

    def test_table2_mix_includes_fine(self):
        wl = paper.paper_workload(include_32gb=True)
        counts = wl.generate(1000).class_counts()
        assert set(counts) == {"small", "mid", "fine"}

    def test_text_prob_produces_translations(self):
        wl = paper.paper_workload(include_32gb=True, text_prob=0.5, seed=1)
        stream = wl.generate(500)
        frac = sum(1 for e in stream if e.query.needs_translation) / 500
        assert 0.35 < frac < 0.65

    def test_text_as_codes_has_no_translations(self):
        wl = paper.paper_workload(include_32gb=True, text_prob=1.0, text_as_codes=True)
        stream = wl.generate(200)
        assert not any(e.query.needs_translation for e in stream)

    def test_text_targets_customer_dictionary(self):
        wl = paper.paper_workload(include_32gb=True, text_prob=1.0, seed=2)
        stream = wl.generate(100)
        for entry in stream:
            for cond in entry.query.text_conditions:
                assert cond.dimension == "cust"


class TestConfigs:
    def test_cpu_models_for_all_thread_counts(self):
        assert set(paper.CPU_MODELS) == {1, 4, 8}
        for threads, model in paper.CPU_MODELS.items():
            assert model.threads == threads
            assert model.dispatch_overhead == paper.CPU_DISPATCH_OVERHEAD[threads]

    def test_unknown_thread_count_rejected(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            paper.paper_system_config(threads=2)

    def test_config_construction(self):
        cfg = paper.paper_system_config(threads=8)
        assert cfg.cpu_model.threads == 8
        assert cfg.scheme.total_sms == 14
        assert cfg.dict_lengths is not None

    def test_cpu_only_and_gpu_only_factories(self):
        from repro.core.baselines import CPUOnlyScheduler, GPUOnlyScheduler

        assert paper.cpu_only_config(4).scheduler_factory is CPUOnlyScheduler
        assert paper.gpu_only_config().scheduler_factory is GPUOnlyScheduler
