"""Tests for the ASCII chart renderer."""

import pytest

from repro.errors import ReproError
from repro.report import ascii_plot


class TestAsciiPlot:
    @staticmethod
    def _grid(chart, height):
        return [r.split("|", 1)[1] for r in chart.splitlines()[:height]]

    def test_renders_markers(self):
        chart = ascii_plot({"f": [(0, 0), (1, 1), (2, 2)]}, width=20, height=6)
        grid = "".join(self._grid(chart, 6))
        assert grid.count("o") == 3

    def test_multiple_series_get_distinct_markers(self):
        chart = ascii_plot(
            {"a": [(0, 0)], "b": [(1, 1)]}, width=20, height=6
        )
        assert "o a" in chart and "+ b" in chart
        assert "o" in chart and "+" in chart

    def test_extremes_map_to_corners(self):
        chart = ascii_plot({"f": [(0, 0), (10, 10)]}, width=20, height=6)
        rows = chart.splitlines()
        # max y on the first grid row, min y on the last
        assert "o" in rows[0]
        assert "o" in rows[5]
        # leftmost and rightmost columns used
        grid_rows = [r.split("|", 1)[1] for r in rows[:6]]
        assert grid_rows[5][0] == "o"
        assert grid_rows[0].rstrip().endswith("o")

    def test_monotone_series_is_monotone_in_grid(self):
        pts = [(x, x * x) for x in range(1, 9)]
        chart = ascii_plot({"f": pts}, width=32, height=10)
        rows = [r.split("|", 1)[1] for r in chart.splitlines()[:10]]
        cols = sorted(
            (line.index("o"), 10 - r) for r, line in enumerate(rows) if "o" in line
        )
        heights = [h for _, h in cols]
        assert heights == sorted(heights)

    def test_log_axes(self):
        pts = [(10**i, 10 ** (2 * i)) for i in range(4)]
        chart = ascii_plot({"f": pts}, logx=True, logy=True, width=30, height=8)
        assert "log x" in chart and "log y" in chart

    def test_log_axis_rejects_nonpositive(self):
        with pytest.raises(ReproError):
            ascii_plot({"f": [(0.0, 1.0)]}, logx=True)

    def test_constant_series(self):
        chart = ascii_plot({"f": [(0, 5), (1, 5), (2, 5)]}, width=12, height=4)
        grid = "".join(self._grid(chart, 4))
        assert grid.count("o") == 3

    def test_axis_labels_present(self):
        chart = ascii_plot(
            {"f": [(1, 2)]}, xlabel="size [MB]", ylabel="time [s]", width=12, height=4
        )
        assert "size [MB] vs time [s]" in chart

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            ascii_plot({})
        with pytest.raises(ReproError):
            ascii_plot({"f": []})

    def test_too_small_rejected(self):
        with pytest.raises(ReproError):
            ascii_plot({"f": [(0, 0)]}, width=2, height=2)

    def test_duplicate_points_overlap(self):
        chart = ascii_plot({"a": [(1, 1)], "b": [(1, 1)]}, width=12, height=4)
        # later series wins the cell
        assert "+" in chart.splitlines()[3] or "+" in chart
