"""Unit tests for size/time/rate helpers."""

import pytest

from repro.units import (
    GB,
    KB,
    MB,
    Rate,
    TB,
    bandwidth_gbps,
    bytes_to_gb,
    bytes_to_mb,
    fmt_bytes,
    fmt_seconds,
    gb_to_bytes,
    mb_to_bytes,
)


class TestConversions:
    def test_constants_binary(self):
        assert KB == 1024
        assert MB == 1024**2
        assert GB == 1024**3
        assert TB == 1024**4

    def test_roundtrips(self):
        assert mb_to_bytes(bytes_to_mb(123456789)) == pytest.approx(123456789)
        assert gb_to_bytes(bytes_to_gb(987654321)) == pytest.approx(987654321)

    def test_eq3_scale(self):
        # eq. 3 divides a byte count by 1024^2
        assert bytes_to_mb(512 * MB) == 512.0

    def test_bandwidth(self):
        assert bandwidth_gbps(2 * GB, 2.0) == 1.0


class TestFormatting:
    @pytest.mark.parametrize(
        "n,expected",
        [
            (500, "500 B"),
            (4 * KB, "4.00 KB"),
            (500 * MB, "500.00 MB"),
            (32 * GB, "32.00 GB"),
            (2 * TB, "2.00 TB"),
        ],
    )
    def test_fmt_bytes(self, n, expected):
        assert fmt_bytes(n) == expected

    @pytest.mark.parametrize(
        "t,expected",
        [
            (5e-7, "0.5 us"),
            (0.0138, "13.80 ms"),
            (1.5, "1.500 s"),
        ],
    )
    def test_fmt_seconds(self, t, expected):
        assert fmt_seconds(t) == expected

    def test_fmt_negative_seconds(self):
        assert fmt_seconds(-0.5).startswith("-")


class TestRate:
    def test_per_second(self):
        assert Rate(228, 1.0).per_second == 228.0

    def test_zero_interval(self):
        assert Rate(10, 0.0).per_second == 0.0

    def test_addition_same_interval(self):
        combined = Rate(100, 2.0) + Rate(56, 2.0)
        assert combined.count == 156
        assert combined.per_second == 78.0

    def test_addition_mismatched_interval_rejected(self):
        with pytest.raises(ValueError):
            Rate(1, 1.0) + Rate(1, 2.0)

    def test_str(self):
        assert "/s" in str(Rate(10, 1.0))
