"""Unit tests for the Aho-Corasick automaton."""

import pytest

from repro.errors import DictionaryError
from repro.text.ahocorasick import AhoCorasick, Match


class TestConstruction:
    def test_classic_example_states(self):
        ac = AhoCorasick(["he", "she", "his", "hers"])
        # the canonical automaton from the 1975 paper has 10 states
        assert ac.num_states == 10

    def test_empty_keyword_rejected(self):
        with pytest.raises(DictionaryError):
            AhoCorasick(["a", ""])

    def test_no_keywords_rejected(self):
        with pytest.raises(DictionaryError):
            AhoCorasick([])

    def test_duplicates_rejected(self):
        with pytest.raises(DictionaryError):
            AhoCorasick(["x", "x"])

    def test_len(self):
        assert len(AhoCorasick(["a", "b", "c"])) == 3


class TestSearch:
    def test_classic_example_matches(self):
        ac = AhoCorasick(["he", "she", "his", "hers"])
        found = [(m.start, m.keyword) for m in ac.search("ushers")]
        assert found == [(1, "she"), (2, "he"), (2, "hers")]

    def test_overlapping_matches(self):
        ac = AhoCorasick(["aa"])
        assert [(m.start, m.end) for m in ac.search("aaaa")] == [
            (0, 2),
            (1, 3),
            (2, 4),
        ]

    def test_keyword_inside_keyword(self):
        ac = AhoCorasick(["ab", "abcd"])
        found = {m.keyword for m in ac.search("abcd")}
        assert found == {"ab", "abcd"}

    def test_no_match(self):
        ac = AhoCorasick(["xyz"])
        assert ac.search("hello world") == []

    def test_match_positions_are_exact(self):
        ac = AhoCorasick(["lo wo"])
        (m,) = ac.search("hello world")
        assert "hello world"[m.start : m.end] == "lo wo"

    def test_pattern_index(self):
        ac = AhoCorasick(["b", "a"])
        matches = ac.search("ab")
        assert {(m.keyword, m.pattern_index) for m in matches} == {("a", 1), ("b", 0)}

    def test_single_char_patterns(self):
        ac = AhoCorasick(list("abc"))
        assert len(ac.search("aabbcc")) == 6

    def test_empty_text(self):
        ac = AhoCorasick(["x"])
        assert ac.search("") == []

    def test_unicode(self):
        ac = AhoCorasick(["naïve", "café"])
        found = {m.keyword for m in ac.search("a naïve café patron")}
        assert found == {"naïve", "café"}


class TestContainsAny:
    def test_true_with_early_exit(self):
        ac = AhoCorasick(["lo"])
        assert ac.contains_any("hello" + "x" * 1000)

    def test_false(self):
        ac = AhoCorasick(["zz"])
        assert not ac.contains_any("hello")


class TestLongestMatches:
    def test_prefers_longest_at_same_start(self):
        ac = AhoCorasick(["new", "new york", "new york city"])
        (m,) = ac.longest_matches("in new york city today")
        assert m.keyword == "new york city"

    def test_non_overlapping(self):
        ac = AhoCorasick(["ab", "bc"])
        found = [m.keyword for m in ac.longest_matches("abc")]
        assert found == ["ab"]

    def test_multiple_disjoint(self):
        ac = AhoCorasick(["cat", "dog"])
        found = [m.keyword for m in ac.longest_matches("cat and dog")]
        assert found == ["cat", "dog"]


class TestAgainstNaive:
    def test_matches_naive_substring_search(self, rng):
        import itertools

        alphabet = "ab"
        keywords = [
            "".join(p)
            for n in (1, 2, 3)
            for p in itertools.product(alphabet, repeat=n)
        ]
        ac = AhoCorasick(keywords)
        text = "".join(rng.choice(list(alphabet), size=200))
        expected = set()
        for kw in keywords:
            start = 0
            while True:
                pos = text.find(kw, start)
                if pos == -1:
                    break
                expected.add((pos, kw))
                start = pos + 1
        got = {(m.start, m.keyword) for m in ac.search(text)}
        assert got == expected
