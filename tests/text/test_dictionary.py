"""Unit tests for per-column dictionaries and their backends."""

import pytest

from repro.errors import DictionaryError, UnknownTokenError
from repro.text.dictionary import (
    BACKENDS,
    ColumnDictionary,
    HashBackend,
    LinearScanBackend,
    SortedArrayBackend,
    TrieBackend,
    build_dictionaries,
)

VOCAB = ["rome", "paris", "london", "berlin", "madrid", "oslo"]

ALL_BACKENDS = ["hash", "sorted", "trie", "linear"]


class TestBackends:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_find_every_token(self, backend):
        d = ColumnDictionary("city", VOCAB, backend=backend)
        for code, token in enumerate(VOCAB):
            assert d.encode(token) == code

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_missing_token(self, backend):
        d = ColumnDictionary("city", VOCAB, backend=backend)
        with pytest.raises(UnknownTokenError) as exc:
            d.encode("atlantis")
        assert exc.value.column == "city"
        assert exc.value.token == "atlantis"

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_prefix_is_not_member(self, backend):
        # "oslo" is present; its prefix "os" must not match
        d = ColumnDictionary("city", VOCAB, backend=backend)
        assert "os" not in d
        assert "oslo" in d

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_token_extending_member(self, backend):
        d = ColumnDictionary("city", VOCAB, backend=backend)
        assert "romeo" not in d

    def test_probe_counts_reflect_complexity(self):
        vocab = [f"token{i:05d}" for i in range(1000)]
        linear = LinearScanBackend(vocab)
        hashb = HashBackend(vocab)
        linear.find(vocab[-1])
        hashb.find(vocab[-1])
        assert linear.probes == 1000
        assert hashb.probes == 1

    def test_sorted_backend_returns_positional_codes(self):
        # vocabulary deliberately unsorted: codes must stay positional
        vocab = ["zeta", "alpha", "mid"]
        backend = SortedArrayBackend(vocab)
        assert backend.find("zeta") == 0
        assert backend.find("alpha") == 1

    def test_trie_shares_prefixes(self):
        backend = TrieBackend(["car", "cart", "care"])
        assert backend.find("car") == 0
        assert backend.find("cart") == 1
        assert backend.find("care") == 2
        assert backend.find("ca") is None

    def test_duplicate_vocabulary_rejected(self):
        with pytest.raises(DictionaryError):
            HashBackend(["a", "a"])

    def test_registry_complete(self):
        assert set(BACKENDS) == {"hash", "sorted", "trie", "linear"}


class TestColumnDictionary:
    def test_length_is_d_l(self):
        d = ColumnDictionary("c", VOCAB)
        assert len(d) == len(VOCAB)
        assert d.length == len(VOCAB)

    def test_decode(self):
        d = ColumnDictionary("c", VOCAB)
        assert d.decode(2) == "london"

    def test_decode_out_of_range(self):
        d = ColumnDictionary("c", VOCAB)
        with pytest.raises(DictionaryError):
            d.decode(99)
        with pytest.raises(DictionaryError):
            d.decode(-1)

    def test_encode_many(self):
        d = ColumnDictionary("c", VOCAB)
        assert d.encode_many(["oslo", "rome"]) == [5, 0]

    def test_roundtrip_all(self):
        d = ColumnDictionary("c", VOCAB, backend="trie")
        for code in range(len(VOCAB)):
            assert d.encode(d.decode(code)) == code

    def test_empty_vocabulary_rejected(self):
        with pytest.raises(DictionaryError):
            ColumnDictionary("c", [])

    def test_empty_column_name_rejected(self):
        with pytest.raises(DictionaryError):
            ColumnDictionary("", VOCAB)

    def test_unknown_backend_name(self):
        with pytest.raises(DictionaryError):
            ColumnDictionary("c", VOCAB, backend="btree")

    def test_backend_instance_injection(self):
        backend = HashBackend(VOCAB)
        d = ColumnDictionary("c", VOCAB, backend=backend)
        assert d.backend_name == "hash"

    def test_backend_instance_size_mismatch(self):
        backend = HashBackend(VOCAB[:3])
        with pytest.raises(DictionaryError):
            ColumnDictionary("c", VOCAB, backend=backend)

    def test_backend_class_injection(self):
        d = ColumnDictionary("c", VOCAB, backend=TrieBackend)
        assert d.backend_name == "trie"

    def test_probes_accumulate(self):
        d = ColumnDictionary("c", VOCAB, backend="linear")
        before = d.probes
        d.encode("madrid")
        assert d.probes > before


class TestBuildDictionaries:
    def test_from_dataset_vocabularies(self, dataset):
        dicts = build_dictionaries(dataset.vocabularies, backend="sorted")
        assert set(dicts) == set(dataset.vocabularies)
        for column, d in dicts.items():
            assert d.column == column
            assert d.backend_name == "sorted"

    def test_encoding_matches_table_codes(self, dataset):
        # the dictionary must map raw strings back to the stored codes
        dicts = build_dictionaries(dataset.vocabularies)
        column = next(iter(dicts))
        codes = dataset.table.column(column)[:50]
        for code in codes:
            raw = dataset.raw_value(column, int(code))
            assert dicts[column].encode(raw) == int(code)
