"""Unit tests for the query translation service (Section III-F)."""

import numpy as np
import pytest

from repro.errors import TranslationError, UnknownTokenError
from repro.query.model import Condition, Query
from repro.text.dictionary import ColumnDictionary
from repro.text.translator import TranslationService


@pytest.fixture(scope="module")
def text_column(small_schema):
    return small_schema.text_columns[0]  # store__city


@pytest.fixture(scope="module")
def city_query(dataset, text_column, small_schema):
    vocab = dataset.vocabularies[text_column.name]
    cond = Condition(
        text_column.dimension,
        text_column.resolution,
        text_values=(vocab[3], vocab[7]),
    )
    return Query(conditions=(cond,), measures=("quantity",))


class TestTranslate:
    def test_text_replaced_by_codes(self, translator, city_query):
        result = translator.translate(city_query)
        (cond,) = result.query.conditions
        assert not cond.is_text
        assert cond.codes == (3, 7)

    def test_query_identity_preserved(self, translator, city_query):
        result = translator.translate(city_query)
        assert result.query.query_id == city_query.query_id

    def test_lookup_records(self, translator, city_query, text_column):
        result = translator.translate(city_query)
        assert result.parameters_translated == 2
        assert all(col == text_column.name for col, _, _ in result.lookups)

    def test_numeric_query_passthrough(self, translator, small_schema):
        d = small_schema.dimensions[0].name
        q = Query(conditions=(Condition(d, 1, lo=0, hi=4),), measures=("quantity",))
        result = translator.translate(q)
        assert result.query is q
        assert result.parameters_translated == 0
        assert result.estimated_time == 0.0

    def test_unknown_literal_raises(self, translator, text_column):
        cond = Condition(
            text_column.dimension, text_column.resolution, text_values=("Atlantis!",)
        )
        q = Query(conditions=(cond,), measures=("quantity",))
        with pytest.raises(UnknownTokenError):
            translator.translate(q)

    def test_mixed_conditions(self, translator, dataset, text_column, small_schema):
        vocab = dataset.vocabularies[text_column.name]
        other_dim = next(
            d.name for d in small_schema.dimensions if d.name != text_column.dimension
        )
        q = Query(
            conditions=(
                Condition(other_dim, 1, lo=2, hi=5),
                Condition(
                    text_column.dimension,
                    text_column.resolution,
                    text_values=(vocab[0],),
                ),
            ),
            measures=("quantity",),
        )
        result = translator.translate(q)
        numeric, coded = result.query.conditions
        assert numeric.is_range
        assert coded.codes == (0,)

    def test_translated_answers_match_raw_codes(
        self, translator, dataset, fact_table, text_column
    ):
        vocab = dataset.vocabularies[text_column.name]
        q_text = Query(
            conditions=(
                Condition(
                    text_column.dimension,
                    text_column.resolution,
                    text_values=(vocab[5],),
                ),
            ),
            measures=("quantity",),
        )
        q_codes = Query(
            conditions=(
                Condition(text_column.dimension, text_column.resolution, codes=(5,)),
            ),
            measures=("quantity",),
        )
        translated = translator.translate(q_text).query
        assert np.isclose(
            fact_table.execute(translated).value("quantity"),
            fact_table.execute(q_codes).value("quantity"),
        )


class TestEstimation:
    def test_eq18_sums_per_parameter(self, translator, city_query, text_column):
        d_l = translator.dictionary_length(text_column.name)
        expected = 2 * 0.0138e-6 * d_l  # two literals, paper cost model
        assert np.isclose(translator.estimate_time(city_query), expected)

    def test_custom_cost_model(self, dictionaries, small_schema, city_query):
        svc = TranslationService(
            dictionaries, small_schema.hierarchies, cost_model=lambda d_l: 1.0
        )
        assert svc.estimate_time(city_query) == 2.0

    def test_estimate_matches_result_field(self, translator, city_query):
        estimate = translator.estimate_time(city_query)
        result = translator.translate(city_query)
        assert result.estimated_time == estimate

    def test_cost_per_lookup(self, translator, text_column):
        d_l = translator.dictionary_length(text_column.name)
        assert np.isclose(
            translator.cost_per_lookup(text_column.name), 0.0138e-6 * d_l
        )


class TestValidation:
    def test_mismatched_registration(self, small_schema):
        wrong = ColumnDictionary("other", ["a", "b"])
        with pytest.raises(TranslationError):
            TranslationService({"store__city": wrong}, small_schema.hierarchies)

    def test_missing_dictionary(self, dictionaries, small_schema):
        svc = TranslationService(
            {k: v for k, v in dictionaries.items() if k != "store__city"},
            small_schema.hierarchies,
        )
        with pytest.raises(TranslationError):
            svc.dictionary_for("store__city")


class TestScanText:
    def test_finds_dictionary_terms_in_free_text(self, translator, dataset):
        column = "store__city"
        city = dataset.vocabularies[column][11]
        hits = translator.scan_text(f"total sales in {city} last month")
        assert any(col == column and m.keyword == city for col, m in hits)

    def test_no_terms(self, translator):
        assert translator.scan_text("0123456789 @@@") == []


class RecordingMetrics:
    def __init__(self):
        self.translated = []
        self.misses = 0

    def on_translated(self, parameters, seconds):
        self.translated.append(parameters)

    def on_miss(self, seconds):
        self.misses += 1


class TestTranslateBatch:
    """``translate_batch`` == a ``translate`` loop, with one shared scan."""

    @pytest.fixture()
    def batch_queries(self, dataset, small_schema):
        queries = []
        for col in small_schema.text_columns[:2]:
            vocab = dataset.vocabularies[col.name]
            queries.append(
                Query(
                    conditions=(
                        Condition(
                            col.dimension,
                            col.resolution,
                            text_values=(vocab[1], vocab[0]),
                        ),
                    ),
                    measures=("quantity",),
                )
            )
        numeric_dim = small_schema.dimensions[0].name
        queries.append(
            Query(
                conditions=(Condition(numeric_dim, 1, lo=0, hi=3),),
                measures=("quantity",),
            )
        )
        return queries

    def test_results_equal_scalar_loop(self, translator, batch_queries):
        batch = translator.translate_batch(batch_queries)
        for query, via_batch in zip(batch_queries, batch):
            scalar = translator.translate(query)
            assert via_batch == scalar

    def test_unknown_token_matches_scalar_error(
        self, translator, dataset, text_column
    ):
        vocab = dataset.vocabularies[text_column.name]
        good = Query(
            conditions=(
                Condition(
                    text_column.dimension,
                    text_column.resolution,
                    text_values=(vocab[2],),
                ),
            ),
            measures=("quantity",),
        )
        bad = Query(
            conditions=(
                Condition(
                    text_column.dimension,
                    text_column.resolution,
                    text_values=("Atlantis!",),
                ),
            ),
            measures=("quantity",),
        )
        with pytest.raises(UnknownTokenError) as batch_err:
            translator.translate_batch([good, bad])
        with pytest.raises(UnknownTokenError) as scalar_err:
            translator.translate(bad)
        assert str(batch_err.value) == str(scalar_err.value)

    def test_cross_column_tokens_stay_unknown(self, dataset, small_schema):
        # a token known to column B but not column A is in the union
        # automaton's vocabulary, yet must still be rejected for A: the
        # per-column code maps are authoritative, the scan only filters
        col_a, col_b = small_schema.text_columns[:2]
        token_b = dataset.vocabularies[col_b.name][0]
        assert token_b not in dataset.vocabularies[col_a.name]
        service = TranslationService(
            {
                col_a.name: ColumnDictionary(
                    col_a.name, dataset.vocabularies[col_a.name]
                ),
                col_b.name: ColumnDictionary(
                    col_b.name, dataset.vocabularies[col_b.name]
                ),
            },
            small_schema.hierarchies,
        )
        query = Query(
            conditions=(
                Condition(
                    col_a.dimension, col_a.resolution, text_values=(token_b,)
                ),
            ),
            measures=("quantity",),
        )
        with pytest.raises(UnknownTokenError, match=col_a.name):
            service.translate_batch([query])

    def test_separator_in_vocabulary_falls_back(self, small_schema, text_column):
        # a vocabulary token containing the join separator disables the
        # shared scan; the code maps alone still translate correctly
        vocab = ("plain", "with\x00separator")
        service = TranslationService(
            {text_column.name: ColumnDictionary(text_column.name, vocab)},
            small_schema.hierarchies,
        )
        query = Query(
            conditions=(
                Condition(
                    text_column.dimension,
                    text_column.resolution,
                    text_values=("with\x00separator", "plain"),
                ),
            ),
            measures=("quantity",),
        )
        (result,) = service.translate_batch([query])
        assert result == service.translate(query)
        assert set(result.query.conditions[0].codes) == {0, 1}

    def test_metrics_events_match_scalar(
        self, dictionaries, small_schema, batch_queries
    ):
        batch_svc = TranslationService(dictionaries, small_schema.hierarchies)
        scalar_svc = TranslationService(dictionaries, small_schema.hierarchies)
        batch_svc.metrics = RecordingMetrics()
        scalar_svc.metrics = RecordingMetrics()
        batch_svc.translate_batch(batch_queries)
        for query in batch_queries:
            scalar_svc.translate(query)
        assert batch_svc.metrics.translated == scalar_svc.metrics.translated
        assert batch_svc.metrics.misses == scalar_svc.metrics.misses == 0
